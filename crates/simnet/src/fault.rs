//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is a declarative, seeded schedule of link outages,
//! bandwidth degradations, node stalls, per-operation failure probability
//! and worker crashes. The plan is attached to a
//! [`Fabric`](crate::topology::Fabric) via
//! [`Fabric::with_faults`](crate::topology::Fabric::with_faults); every
//! transfer then consults the shared [`FaultInjector`], so two runs with
//! the same plan (and the same program) observe bit-identical faults.
//!
//! Fault semantics follow the platform split the paper implies:
//!
//! * **Fallible paths** (RDMA verbs / SMB transport) *fail fast*: a
//!   transfer attempted inside a link-down window, or unlucky under the
//!   per-op failure probability, pays a detection latency and returns a
//!   [`FaultError`] for the caller's retry policy to handle.
//! * **Infallible paths** (the MPI/TCP substrate of the synchronous
//!   baselines) *ride out* outages: the transfer silently waits for the
//!   window to close, which is exactly how a reliable byte stream behaves
//!   — and why a crashed peer stalls the whole synchronous job.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::topology::NodeId;
use crate::{SimDuration, SimTime};

/// How a link misbehaves during a [`LinkFault`] window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link is unusable: fallible transfers error out, infallible ones
    /// wait for the window to close.
    Down,
    /// The link runs at the contained fraction of nominal bandwidth
    /// (`0.0 < factor < 1.0`).
    Degraded(f64),
}

/// One scheduled link fault on a node's HCA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Endpoint whose HCA is affected (either direction).
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Down or degraded.
    pub kind: LinkFaultKind,
}

/// A window during which a node makes no progress on transfers (e.g. an
/// OS-level pause or SMB server GC stall). Transfers touching the node
/// wait out the stall and then proceed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStall {
    /// The stalled endpoint.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A scheduled worker death: the worker with this rank stops training at
/// the given virtual time and never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerCrash {
    /// Global worker rank.
    pub rank: usize,
    /// Crash time; the worker checks at iteration boundaries, so death
    /// takes effect at the first boundary at or after this instant.
    pub at: SimTime,
}

/// A scheduled memory-server death: the endpoint stops serving at the
/// given virtual time and never comes back. Fallible transfers touching it
/// fail fast with [`FaultError::NodeCrashed`] so clients can fail over to
/// a standby (see `shmcaffe-smb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryServerCrash {
    /// The memory-server endpoint that dies.
    pub node: NodeId,
    /// Crash time (permanent from this instant on).
    pub at: SimTime,
}

/// A scheduled DRAM decay event: at virtual time `at`, one seeded bit
/// flips inside the data a memory server on `node` holds — *without* any
/// error being signalled. The victim (segment, element, bit) is selected
/// deterministically from the decay's seed by the server that applies it,
/// so two runs with the same plan corrupt the same bit. The corruption is
/// silent by construction: only an integrity layer (CRC-guarded pages and
/// a scrubber, see `shmcaffe-smb`) can detect it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramDecay {
    /// The memory-server endpoint whose DRAM decays.
    pub node: NodeId,
    /// The virtual time at which the bit flips (applied lazily by the
    /// first server-side scan at or after this instant).
    pub at: SimTime,
}

/// A scheduled network partition: the listed node groups lose connectivity
/// to each other for the duration of the window, while intra-group links
/// (and links to nodes not listed in any group) stay healthy.
///
/// Symmetric partitions sever traffic in both directions across the group
/// boundary. A *one-way* partition severs only traffic from an
/// earlier-indexed group toward a later-indexed group — the asymmetric
/// case where, say, the old primary can still be reached by some clients
/// while its own replication traffic toward the standby black-holes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionFault {
    /// Disjoint, non-empty node groups. Traffic *between* groups is
    /// severed; nodes absent from every group are unaffected.
    pub groups: Vec<Vec<NodeId>>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Heal instant (exclusive end of the window); `None` means the
    /// partition never heals.
    pub heal_at: Option<SimTime>,
    /// When true, only traffic from a lower-indexed group toward a
    /// higher-indexed group is severed; the reverse direction flows.
    pub one_way: bool,
}

impl PartitionFault {
    fn group_of(&self, node: NodeId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&node))
    }

    /// Whether the partition is in effect at `now`.
    pub fn active(&self, now: SimTime) -> bool {
        self.from <= now && self.heal_at.is_none_or(|h| now < h)
    }

    /// Whether traffic from `from` toward `to` crosses a severed boundary
    /// (ignores the time window — combine with [`PartitionFault::active`]).
    pub fn severs(&self, from: NodeId, to: NodeId) -> bool {
        match (self.group_of(from), self.group_of(to)) {
            (Some(gf), Some(gt)) if gf != gt => !self.one_way || gf < gt,
            _ => false,
        }
    }
}

/// A declarative, seeded fault schedule.
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::fault::FaultPlan;
/// use shmcaffe_simnet::topology::NodeId;
/// use shmcaffe_simnet::{SimDuration, SimTime};
///
/// let plan = FaultPlan::new(42)
///     .with_op_failure_prob(0.01)
///     .link_down(NodeId(1), SimTime::from_millis(10), SimTime::from_millis(12))
///     .crash_worker(2, SimTime::from_millis(50));
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-operation failure draw stream.
    pub seed: u64,
    /// Probability that any single fallible fabric operation fails.
    pub op_failure_prob: f64,
    /// Virtual time a fallible operation spends detecting a fault before
    /// returning an error (models RDMA completion-queue timeout).
    pub detection_latency: SimDuration,
    /// Scheduled link outages and degradations.
    pub link_faults: Vec<LinkFault>,
    /// Scheduled node stalls.
    pub node_stalls: Vec<NodeStall>,
    /// Scheduled worker deaths.
    pub worker_crashes: Vec<WorkerCrash>,
    /// Scheduled memory-server deaths (permanent; clients must fail over).
    #[serde(default)]
    pub memory_server_crashes: Vec<MemoryServerCrash>,
    /// Scheduled network partitions (symmetric or one-way, with optional
    /// heal events).
    #[serde(default)]
    pub partitions: Vec<PartitionFault>,
    /// Probability that a fallible data transfer is corrupted by a wire
    /// bit flip (one seeded bit of the payload inverted in flight). The
    /// flip itself is silent at the transport level; detection is up to
    /// the end-to-end checksum layer.
    #[serde(default)]
    pub wire_flip_prob: f64,
    /// Probability that a fallible write is torn: only a seeded prefix of
    /// the payload is delivered, and no error is reported to the writer.
    #[serde(default)]
    pub torn_write_prob: f64,
    /// Scheduled silent DRAM decay events on memory-server nodes.
    #[serde(default)]
    pub dram_decays: Vec<DramDecay>,
}

impl FaultPlan {
    /// An empty plan with the given seed (no faults until configured).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            op_failure_prob: 0.0,
            detection_latency: SimDuration::from_micros(500),
            link_faults: Vec::new(),
            node_stalls: Vec::new(),
            worker_crashes: Vec::new(),
            memory_server_crashes: Vec::new(),
            partitions: Vec::new(),
            wire_flip_prob: 0.0,
            torn_write_prob: 0.0,
            dram_decays: Vec::new(),
        }
    }

    /// Sets the per-operation failure probability (`0.0..=1.0`).
    pub fn with_op_failure_prob(mut self, p: f64) -> Self {
        self.op_failure_prob = p;
        self
    }

    /// Sets the fault-detection latency charged before an error returns.
    pub fn with_detection_latency(mut self, d: SimDuration) -> Self {
        self.detection_latency = d;
        self
    }

    /// Schedules a link-down window on a node's HCA.
    pub fn link_down(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.link_faults.push(LinkFault { node, from, until, kind: LinkFaultKind::Down });
        self
    }

    /// Schedules a degraded-bandwidth window (`factor` of nominal).
    pub fn link_degraded(
        mut self,
        node: NodeId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        self.link_faults.push(LinkFault {
            node,
            from,
            until,
            kind: LinkFaultKind::Degraded(factor),
        });
        self
    }

    /// Schedules a node stall window.
    pub fn stall(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.node_stalls.push(NodeStall { node, from, until });
        self
    }

    /// Schedules a worker crash.
    pub fn crash_worker(mut self, rank: usize, at: SimTime) -> Self {
        self.worker_crashes.push(WorkerCrash { rank, at });
        self
    }

    /// Schedules a permanent memory-server crash.
    pub fn crash_memory_server(mut self, node: NodeId, at: SimTime) -> Self {
        self.memory_server_crashes.push(MemoryServerCrash { node, at });
        self
    }

    /// Schedules a symmetric partition: traffic between any two of the
    /// `groups` is severed from `from` until `heal_at` (or forever when
    /// `heal_at` is `None`).
    pub fn partition(
        mut self,
        groups: Vec<Vec<NodeId>>,
        from: SimTime,
        heal_at: Option<SimTime>,
    ) -> Self {
        self.partitions.push(PartitionFault { groups, from, heal_at, one_way: false });
        self
    }

    /// Schedules a one-way partition: only traffic from a lower-indexed
    /// group toward a higher-indexed group is severed; the reverse
    /// direction keeps flowing for the window.
    pub fn partition_one_way(
        mut self,
        groups: Vec<Vec<NodeId>>,
        from: SimTime,
        heal_at: Option<SimTime>,
    ) -> Self {
        self.partitions.push(PartitionFault { groups, from, heal_at, one_way: true });
        self
    }

    /// Sets the wire bit-flip probability of fallible data transfers
    /// (`0.0..=1.0`).
    pub fn with_wire_flip_prob(mut self, p: f64) -> Self {
        self.wire_flip_prob = p;
        self
    }

    /// Sets the torn-write probability of fallible writes (`0.0..=1.0`).
    pub fn with_torn_write_prob(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// Schedules a silent DRAM decay on a memory-server node.
    pub fn decay_dram(mut self, node: NodeId, at: SimTime) -> Self {
        self.dram_decays.push(DramDecay { node, at });
        self
    }

    /// Whether the plan can corrupt data (as opposed to merely delaying or
    /// failing transfers). Integrity machinery (checksums, scrubbing) only
    /// needs to run when this is true.
    pub fn has_corruption_faults(&self) -> bool {
        self.wire_flip_prob > 0.0 || self.torn_write_prob > 0.0 || !self.dram_decays.is_empty()
    }

    /// Checks internal consistency (window ordering, probability and
    /// degradation factors in range).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid entry.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.op_failure_prob) {
            return Err(format!("op_failure_prob {} out of [0, 1]", self.op_failure_prob));
        }
        if !(0.0..=1.0).contains(&self.wire_flip_prob) {
            return Err(format!("wire_flip_prob {} out of [0, 1]", self.wire_flip_prob));
        }
        if !(0.0..=1.0).contains(&self.torn_write_prob) {
            return Err(format!("torn_write_prob {} out of [0, 1]", self.torn_write_prob));
        }
        for lf in &self.link_faults {
            if lf.from >= lf.until {
                return Err(format!("link fault on {} has empty window", lf.node));
            }
            if let LinkFaultKind::Degraded(f) = lf.kind {
                if !(f > 0.0 && f < 1.0) {
                    return Err(format!("degrade factor {f} out of (0, 1)"));
                }
            }
        }
        for st in &self.node_stalls {
            if st.from >= st.until {
                return Err(format!("stall on {} has empty window", st.node));
            }
        }
        for p in &self.partitions {
            if p.groups.len() < 2 {
                return Err("partition needs at least two groups".to_string());
            }
            if p.groups.iter().any(|g| g.is_empty()) {
                return Err("partition group is empty".to_string());
            }
            let mut seen = std::collections::BTreeSet::new();
            for node in p.groups.iter().flatten() {
                if !seen.insert(*node) {
                    return Err(format!("partition groups overlap on {node}"));
                }
            }
            if let Some(heal) = p.heal_at {
                if heal <= p.from {
                    return Err("partition heals before it starts".to_string());
                }
            }
        }
        Ok(())
    }

    /// Ranks scheduled to crash, in plan order.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.worker_crashes.iter().map(|c| c.rank).collect()
    }
}

/// Counters of faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fallible operations failed by the per-op probability draw.
    pub injected_op_failures: u64,
    /// Fallible operations that hit a link-down window.
    pub link_down_hits: u64,
    /// Transfers that ran at degraded bandwidth.
    pub degraded_transfers: u64,
    /// Transfers delayed by a node stall window.
    pub stall_delays: u64,
    /// Fallible operations that touched a crashed memory server.
    pub memory_server_crash_hits: u64,
    /// Fallible operations severed by an active network partition.
    pub partition_hits: u64,
    /// Wire bit flips injected into transfer payloads.
    pub wire_flips: u64,
    /// Torn writes injected (prefix-only delivery, no error signalled).
    pub torn_writes: u64,
    /// DRAM decay events claimed by a server-side scan.
    pub dram_decays_applied: u64,
}

struct InjectorInner {
    plan: FaultPlan,
    rng: parking_lot::Mutex<ChaCha8Rng>,
    /// Dedicated stream for corruption draws: keeping it apart from the
    /// op-failure stream means enabling corruption faults never shifts the
    /// timeline of a plan's other seeded faults.
    corrupt_rng: parking_lot::Mutex<ChaCha8Rng>,
    /// One claim flag per scheduled DRAM decay, so whichever server-side
    /// scan observes a due event first applies it exactly once.
    decays_claimed: parking_lot::Mutex<Vec<bool>>,
    stats: parking_lot::Mutex<FaultStats>,
}

/// Stream separator between the op-failure RNG and the corruption RNG.
const CORRUPTION_STREAM_SALT: u64 = 0xC0FF_EE00_DA7A_F11F;

/// SplitMix64: derives the per-event victim seed of a DRAM decay.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared handle that answers "is this operation faulted right now?"
/// deterministically from a [`FaultPlan`].
///
/// Cloning shares the underlying RNG and statistics, so all users of one
/// fabric consume a single failure-draw stream. Because the simulation
/// scheduler is deterministic, the draw order — and hence every injected
/// fault — is identical across runs with the same seed.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.inner.plan)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjector {
    /// Builds an injector from a plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan) -> Self {
        if let Err(msg) = plan.validate() {
            panic!("invalid fault plan: {msg}");
        }
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        let corrupt_rng = ChaCha8Rng::seed_from_u64(plan.seed ^ CORRUPTION_STREAM_SALT);
        let decays_claimed = vec![false; plan.dram_decays.len()];
        FaultInjector {
            inner: Arc::new(InjectorInner {
                plan,
                rng: parking_lot::Mutex::new(rng),
                corrupt_rng: parking_lot::Mutex::new(corrupt_rng),
                decays_claimed: parking_lot::Mutex::new(decays_claimed),
                stats: parking_lot::Mutex::new(FaultStats::default()),
            }),
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        *self.inner.stats.lock()
    }

    /// If `node` is inside a stall window at `now`, the window's end.
    pub fn stall_until(&self, node: NodeId, now: SimTime) -> Option<SimTime> {
        self.inner
            .plan
            .node_stalls
            .iter()
            .filter(|s| s.node == node && s.from <= now && now < s.until)
            .map(|s| s.until)
            .max()
    }

    /// If `node`'s link is down at `now`, the outage's end.
    pub fn down_until(&self, node: NodeId, now: SimTime) -> Option<SimTime> {
        self.inner
            .plan
            .link_faults
            .iter()
            .filter(|l| {
                l.kind == LinkFaultKind::Down && l.node == node && l.from <= now && now < l.until
            })
            .map(|l| l.until)
            .max()
    }

    /// The strongest (smallest) degradation factor active on `node` at
    /// `now`, if any.
    pub fn degrade_factor(&self, node: NodeId, now: SimTime) -> Option<f64> {
        self.inner
            .plan
            .link_faults
            .iter()
            .filter_map(|l| match l.kind {
                LinkFaultKind::Degraded(f) if l.node == node && l.from <= now && now < l.until => {
                    Some(f)
                }
                _ => None,
            })
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.min(f))))
    }

    /// Draws the per-operation failure coin. Always consumes exactly one
    /// draw from the stream so call sites stay aligned across runs.
    pub fn draw_op_failure(&self) -> bool {
        let p = self.inner.plan.op_failure_prob;
        let roll: f64 = self.inner.rng.lock().gen_range(0.0..1.0);
        let hit = roll < p;
        if hit {
            self.inner.stats.lock().injected_op_failures += 1;
        }
        hit
    }

    /// Draws the wire bit-flip coin for a fallible data transfer of
    /// `elems` f32 elements. Always consumes exactly three draws from the
    /// dedicated corruption stream so call sites stay aligned across runs.
    /// On a hit, returns the payload element and bit (`0..32` of the f32
    /// bit pattern) to invert.
    pub fn draw_wire_flip(&self, elems: usize) -> Option<(usize, u32)> {
        let p = self.inner.plan.wire_flip_prob;
        let mut rng = self.inner.corrupt_rng.lock();
        let roll: f64 = rng.gen_range(0.0..1.0);
        let elem = rng.gen_range(0..elems.max(1) as u64) as usize;
        let bit: u32 = rng.gen_range(0..32);
        drop(rng);
        if roll < p && elems > 0 {
            self.inner.stats.lock().wire_flips += 1;
            Some((elem, bit))
        } else {
            None
        }
    }

    /// Draws the torn-write coin for a fallible write of `elems` f32
    /// elements. Always consumes exactly two draws from the corruption
    /// stream. On a hit, returns the delivered prefix length (`0..elems`);
    /// the tail of the payload never lands and no error is signalled.
    pub fn draw_torn_write(&self, elems: usize) -> Option<usize> {
        let p = self.inner.plan.torn_write_prob;
        let mut rng = self.inner.corrupt_rng.lock();
        let roll: f64 = rng.gen_range(0.0..1.0);
        let prefix = rng.gen_range(0..elems.max(1) as u64) as usize;
        drop(rng);
        if roll < p && elems > 0 {
            self.inner.stats.lock().torn_writes += 1;
            Some(prefix)
        } else {
            None
        }
    }

    /// Claims every DRAM decay event scheduled on `node` that is due at
    /// `now` and not yet applied, returning one victim-selection seed per
    /// event. Each event is handed out exactly once: whichever server-side
    /// scan (read-path verify or scrubber pass) observes it first applies
    /// the bit flip. The seeds are pure functions of the plan seed and the
    /// event index, so claim order does not affect which bit decays.
    pub fn take_due_decays(&self, node: NodeId, now: SimTime) -> Vec<u64> {
        let plan = &self.inner.plan;
        if plan.dram_decays.is_empty() {
            return Vec::new();
        }
        let mut claimed = self.inner.decays_claimed.lock();
        let mut seeds = Vec::new();
        for (i, d) in plan.dram_decays.iter().enumerate() {
            if !claimed[i] && d.node == node && d.at <= now {
                claimed[i] = true;
                seeds.push(splitmix64(plan.seed ^ CORRUPTION_STREAM_SALT ^ (i as u64)));
            }
        }
        if !seeds.is_empty() {
            self.inner.stats.lock().dram_decays_applied += seeds.len() as u64;
        }
        seeds
    }

    /// The scheduled crash time for a worker rank, if any (earliest wins).
    pub fn crash_time(&self, rank: usize) -> Option<SimTime> {
        self.inner.plan.worker_crashes.iter().filter(|c| c.rank == rank).map(|c| c.at).min()
    }

    /// The scheduled crash time for a memory-server endpoint, if any
    /// (earliest wins).
    pub fn memory_server_crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.inner.plan.memory_server_crashes.iter().filter(|c| c.node == node).map(|c| c.at).min()
    }

    /// Whether `node` is a crashed memory server at `now` (crashes are
    /// permanent: true from the crash instant on).
    pub fn memory_server_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.memory_server_crash_time(node).is_some_and(|at| at <= now)
    }

    /// If traffic from `from` toward `to` is severed by an active
    /// partition at `now`, returns `Some(heal)` where `heal` is the
    /// instant the *last* severing partition heals, or `Some(None)` when
    /// one of them never heals. Returns `None` when the path is clear.
    pub fn partitioned_until(
        &self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
    ) -> Option<Option<SimTime>> {
        let mut severed = false;
        let mut heal: Option<SimTime> = Some(SimTime::ZERO);
        for p in &self.inner.plan.partitions {
            if p.active(now) && p.severs(from, to) {
                severed = true;
                heal = match (heal, p.heal_at) {
                    (Some(h), Some(ph)) => Some(h.max(ph)),
                    _ => None,
                };
            }
        }
        severed.then_some(heal)
    }

    /// Whether traffic from `from` toward `to` is severed at `now`.
    pub fn partitioned(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        self.partitioned_until(from, to, now).is_some()
    }

    pub(crate) fn record_link_down_hit(&self) {
        self.inner.stats.lock().link_down_hits += 1;
    }

    pub(crate) fn record_degraded(&self) {
        self.inner.stats.lock().degraded_transfers += 1;
    }

    pub(crate) fn record_stall(&self) {
        self.inner.stats.lock().stall_delays += 1;
    }

    pub(crate) fn record_memory_server_crash_hit(&self) {
        self.inner.stats.lock().memory_server_crash_hits += 1;
    }

    pub(crate) fn record_partition_hit(&self) {
        self.inner.stats.lock().partition_hits += 1;
    }
}

/// Why a fallible fabric operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// The transfer touched a node whose link was down.
    LinkDown {
        /// The node whose HCA was down.
        node: NodeId,
        /// Virtual time the failure was detected.
        at: SimTime,
    },
    /// The per-operation failure draw fired for this transfer.
    Injected {
        /// Transfer source.
        from: NodeId,
        /// Transfer destination.
        to: NodeId,
        /// Virtual time the failure was detected.
        at: SimTime,
    },
    /// The transfer touched a permanently crashed endpoint (a memory
    /// server). Unlike [`FaultError::LinkDown`], retrying against the same
    /// endpoint can never succeed — the caller should fail over.
    NodeCrashed {
        /// The crashed endpoint.
        node: NodeId,
        /// Virtual time the failure was detected.
        at: SimTime,
    },
    /// The transfer's source and destination sit on opposite sides of an
    /// active network partition. Retrying against the same endpoint fails
    /// until the partition heals — callers should fail over (and the SMB
    /// fencing layer turns this into an epoch change).
    Partitioned {
        /// Transfer source.
        from: NodeId,
        /// Transfer destination (unreachable from `from`).
        to: NodeId,
        /// Virtual time the failure was detected.
        at: SimTime,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::LinkDown { node, at } => {
                write!(f, "link down at {} (t={} ns)", node, at.as_nanos())
            }
            FaultError::Injected { from, to, at } => {
                write!(f, "injected fault on {from}->{to} (t={} ns)", at.as_nanos())
            }
            FaultError::NodeCrashed { node, at } => {
                write!(f, "endpoint {} crashed (detected t={} ns)", node, at.as_nanos())
            }
            FaultError::Partitioned { from, to, at } => {
                write!(f, "partition severs {from}->{to} (t={} ns)", at.as_nanos())
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_and_validation() {
        let plan = FaultPlan::new(7)
            .with_op_failure_prob(0.25)
            .link_down(NodeId(0), SimTime::from_millis(1), SimTime::from_millis(2))
            .link_degraded(NodeId(1), SimTime::from_millis(3), SimTime::from_millis(9), 0.5)
            .stall(NodeId(2), SimTime::from_millis(4), SimTime::from_millis(5))
            .crash_worker(3, SimTime::from_millis(6));
        assert!(plan.validate().is_ok());
        assert_eq!(plan.crashed_ranks(), vec![3]);

        let bad = FaultPlan::new(0).with_op_failure_prob(1.5);
        assert!(bad.validate().is_err());
        let empty_window = FaultPlan::new(0).link_down(
            NodeId(0),
            SimTime::from_millis(2),
            SimTime::from_millis(2),
        );
        assert!(empty_window.validate().is_err());
        let bad_factor = FaultPlan::new(0).link_degraded(
            NodeId(0),
            SimTime::from_millis(1),
            SimTime::from_millis(2),
            1.5,
        );
        assert!(bad_factor.validate().is_err());
    }

    #[test]
    fn windows_are_half_open() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .link_down(NodeId(0), SimTime::from_millis(10), SimTime::from_millis(20))
                .stall(NodeId(1), SimTime::from_millis(5), SimTime::from_millis(6)),
        );
        assert_eq!(inj.down_until(NodeId(0), SimTime::from_millis(9)), None);
        assert_eq!(
            inj.down_until(NodeId(0), SimTime::from_millis(10)),
            Some(SimTime::from_millis(20))
        );
        assert_eq!(inj.down_until(NodeId(0), SimTime::from_millis(20)), None);
        assert_eq!(inj.down_until(NodeId(1), SimTime::from_millis(15)), None);
        assert_eq!(
            inj.stall_until(NodeId(1), SimTime::from_millis(5)),
            Some(SimTime::from_millis(6))
        );
    }

    #[test]
    fn strongest_degradation_wins() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .link_degraded(NodeId(0), SimTime::ZERO, SimTime::from_millis(10), 0.5)
                .link_degraded(NodeId(0), SimTime::ZERO, SimTime::from_millis(10), 0.25),
        );
        assert_eq!(inj.degrade_factor(NodeId(0), SimTime::from_millis(1)), Some(0.25));
        assert_eq!(inj.degrade_factor(NodeId(0), SimTime::from_millis(11)), None);
    }

    #[test]
    fn op_failure_draws_are_seed_deterministic() {
        let draws = |seed: u64| {
            let inj = FaultInjector::new(FaultPlan::new(seed).with_op_failure_prob(0.3));
            (0..64).map(|_| inj.draw_op_failure()).collect::<Vec<bool>>()
        };
        let a = draws(99);
        assert_eq!(a, draws(99));
        assert_ne!(a, draws(100));
        assert!(a.iter().any(|&b| b), "0.3 over 64 draws should hit at least once");
        assert!(a.iter().any(|&b| !b));
        let inj = FaultInjector::new(FaultPlan::new(99).with_op_failure_prob(0.3));
        for _ in 0..64 {
            inj.draw_op_failure();
        }
        let hits = a.iter().filter(|&&b| b).count() as u64;
        assert_eq!(inj.stats().injected_op_failures, hits);
    }

    #[test]
    fn zero_probability_never_fails() {
        let inj = FaultInjector::new(FaultPlan::new(5));
        assert!((0..100).all(|_| !inj.draw_op_failure()));
        assert_eq!(inj.stats().injected_op_failures, 0);
    }

    #[test]
    fn crash_time_takes_earliest() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .crash_worker(2, SimTime::from_millis(50))
                .crash_worker(2, SimTime::from_millis(30)),
        );
        assert_eq!(inj.crash_time(2), Some(SimTime::from_millis(30)));
        assert_eq!(inj.crash_time(0), None);
    }

    #[test]
    fn memory_server_crash_is_permanent_and_takes_earliest() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .crash_memory_server(NodeId(8), SimTime::from_millis(40))
                .crash_memory_server(NodeId(8), SimTime::from_millis(20)),
        );
        assert_eq!(inj.memory_server_crash_time(NodeId(8)), Some(SimTime::from_millis(20)));
        assert_eq!(inj.memory_server_crash_time(NodeId(9)), None);
        assert!(!inj.memory_server_crashed(NodeId(8), SimTime::from_millis(19)));
        assert!(inj.memory_server_crashed(NodeId(8), SimTime::from_millis(20)));
        assert!(inj.memory_server_crashed(NodeId(8), SimTime::from_secs(100)));
        assert!(!inj.memory_server_crashed(NodeId(9), SimTime::from_secs(100)));
    }

    #[test]
    fn partition_validation() {
        let ok = FaultPlan::new(1).partition(
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]],
            SimTime::from_millis(5),
            Some(SimTime::from_millis(10)),
        );
        assert!(ok.validate().is_ok());

        let one_group = FaultPlan::new(1).partition(vec![vec![NodeId(0)]], SimTime::ZERO, None);
        assert!(one_group.validate().is_err());
        let empty_group =
            FaultPlan::new(1).partition(vec![vec![NodeId(0)], vec![]], SimTime::ZERO, None);
        assert!(empty_group.validate().is_err());
        let overlap = FaultPlan::new(1).partition(
            vec![vec![NodeId(0)], vec![NodeId(0)]],
            SimTime::ZERO,
            None,
        );
        assert!(overlap.validate().is_err());
        let heals_early = FaultPlan::new(1).partition(
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            SimTime::from_millis(5),
            Some(SimTime::from_millis(5)),
        );
        assert!(heals_early.validate().is_err());
    }

    #[test]
    fn symmetric_partition_severs_both_ways_within_window() {
        let inj = FaultInjector::new(FaultPlan::new(1).partition(
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(4)]],
            SimTime::from_millis(10),
            Some(SimTime::from_millis(20)),
        ));
        let t = SimTime::from_millis(15);
        assert!(inj.partitioned(NodeId(0), NodeId(4), t));
        assert!(inj.partitioned(NodeId(4), NodeId(1), t));
        assert_eq!(
            inj.partitioned_until(NodeId(0), NodeId(4), t),
            Some(Some(SimTime::from_millis(20)))
        );
        // Intra-group and unlisted nodes are unaffected.
        assert!(!inj.partitioned(NodeId(0), NodeId(1), t));
        assert!(!inj.partitioned(NodeId(0), NodeId(9), t));
        assert!(!inj.partitioned(NodeId(9), NodeId(4), t));
        // Half-open window: healed exactly at heal_at, untouched before.
        assert!(!inj.partitioned(NodeId(0), NodeId(4), SimTime::from_millis(9)));
        assert!(inj.partitioned(NodeId(0), NodeId(4), SimTime::from_millis(10)));
        assert!(!inj.partitioned(NodeId(0), NodeId(4), SimTime::from_millis(20)));
    }

    #[test]
    fn one_way_partition_severs_forward_direction_only() {
        let inj = FaultInjector::new(FaultPlan::new(1).partition_one_way(
            vec![vec![NodeId(8)], vec![NodeId(9)]],
            SimTime::from_millis(1),
            None,
        ));
        let t = SimTime::from_millis(2);
        assert!(inj.partitioned(NodeId(8), NodeId(9), t));
        assert!(!inj.partitioned(NodeId(9), NodeId(8), t));
        // heal_at None: never heals.
        assert_eq!(inj.partitioned_until(NodeId(8), NodeId(9), t), Some(None));
        assert!(inj.partitioned(NodeId(8), NodeId(9), SimTime::from_secs(100)));
    }

    #[test]
    fn overlapping_partitions_wait_for_the_last_heal() {
        let groups = vec![vec![NodeId(0)], vec![NodeId(1)]];
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .partition(groups.clone(), SimTime::from_millis(1), Some(SimTime::from_millis(5)))
                .partition(groups, SimTime::from_millis(2), Some(SimTime::from_millis(9))),
        );
        assert_eq!(
            inj.partitioned_until(NodeId(0), NodeId(1), SimTime::from_millis(3)),
            Some(Some(SimTime::from_millis(9)))
        );
    }

    #[test]
    fn corruption_plan_builders_and_validation() {
        let plan = FaultPlan::new(3)
            .with_wire_flip_prob(0.1)
            .with_torn_write_prob(0.05)
            .decay_dram(NodeId(8), SimTime::from_millis(40));
        assert!(plan.validate().is_ok());
        assert!(plan.has_corruption_faults());
        assert!(!FaultPlan::new(3).has_corruption_faults());
        assert!(FaultPlan::new(3).with_wire_flip_prob(1.5).validate().is_err());
        assert!(FaultPlan::new(3).with_torn_write_prob(-0.1).validate().is_err());
    }

    #[test]
    fn wire_flip_draws_are_seed_deterministic_and_bounded() {
        let draws = |seed: u64| {
            let inj = FaultInjector::new(FaultPlan::new(seed).with_wire_flip_prob(0.4));
            (0..64).map(|_| inj.draw_wire_flip(10)).collect::<Vec<_>>()
        };
        let a = draws(11);
        assert_eq!(a, draws(11));
        assert_ne!(a, draws(12));
        let hits: Vec<_> = a.iter().flatten().collect();
        assert!(!hits.is_empty() && hits.len() < 64);
        for &&(elem, bit) in &hits {
            assert!(elem < 10);
            assert!(bit < 32);
        }
        let inj = FaultInjector::new(FaultPlan::new(11).with_wire_flip_prob(0.4));
        for _ in 0..64 {
            inj.draw_wire_flip(10);
        }
        assert_eq!(inj.stats().wire_flips, hits.len() as u64);
    }

    #[test]
    fn corruption_stream_is_independent_of_op_failure_stream() {
        // Interleaving op-failure draws must not shift the corruption
        // stream (and vice versa): enabling integrity faults on an
        // existing plan leaves its other seeded faults bit-identical.
        let plan = FaultPlan::new(21).with_op_failure_prob(0.3).with_wire_flip_prob(0.3);
        let pure = {
            let inj = FaultInjector::new(plan.clone());
            (0..32).map(|_| inj.draw_wire_flip(8)).collect::<Vec<_>>()
        };
        let interleaved = {
            let inj = FaultInjector::new(plan.clone());
            (0..32)
                .map(|_| {
                    inj.draw_op_failure();
                    inj.draw_wire_flip(8)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(pure, interleaved);
        let ops_pure = {
            let inj = FaultInjector::new(plan.clone());
            (0..32).map(|_| inj.draw_op_failure()).collect::<Vec<_>>()
        };
        let ops_interleaved = {
            let inj = FaultInjector::new(plan);
            (0..32)
                .map(|_| {
                    inj.draw_wire_flip(8);
                    inj.draw_torn_write(8);
                    inj.draw_op_failure()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(ops_pure, ops_interleaved);
    }

    #[test]
    fn torn_write_prefix_is_strictly_shorter_than_the_payload() {
        let inj = FaultInjector::new(FaultPlan::new(5).with_torn_write_prob(1.0));
        for _ in 0..64 {
            let p = inj.draw_torn_write(6).expect("probability 1 always tears");
            assert!(p < 6);
        }
        assert_eq!(inj.stats().torn_writes, 64);
        let never = FaultInjector::new(FaultPlan::new(5));
        assert!((0..32).all(|_| never.draw_torn_write(6).is_none()));
    }

    #[test]
    fn dram_decays_are_claimed_exactly_once_per_event() {
        let inj = FaultInjector::new(
            FaultPlan::new(17)
                .decay_dram(NodeId(8), SimTime::from_millis(10))
                .decay_dram(NodeId(8), SimTime::from_millis(30))
                .decay_dram(NodeId(9), SimTime::from_millis(10)),
        );
        assert!(inj.take_due_decays(NodeId(8), SimTime::from_millis(5)).is_empty());
        let first = inj.take_due_decays(NodeId(8), SimTime::from_millis(10));
        assert_eq!(first.len(), 1);
        // Already claimed: a second scan at the same instant gets nothing.
        assert!(inj.take_due_decays(NodeId(8), SimTime::from_millis(10)).is_empty());
        let second = inj.take_due_decays(NodeId(8), SimTime::from_millis(35));
        assert_eq!(second.len(), 1);
        assert_ne!(first[0], second[0], "per-event victim seeds differ");
        assert_eq!(inj.take_due_decays(NodeId(9), SimTime::from_millis(10)).len(), 1);
        assert_eq!(inj.stats().dram_decays_applied, 3);
        // Determinism: a fresh injector over the same plan yields the same
        // victim seeds.
        let again = FaultInjector::new(
            FaultPlan::new(17)
                .decay_dram(NodeId(8), SimTime::from_millis(10))
                .decay_dram(NodeId(8), SimTime::from_millis(30))
                .decay_dram(NodeId(9), SimTime::from_millis(10)),
        );
        assert_eq!(
            again.take_due_decays(NodeId(8), SimTime::from_millis(40)),
            vec![first[0], second[0]]
        );
    }

    #[test]
    fn fault_error_display_and_source() {
        let e = FaultError::LinkDown { node: NodeId(3), at: SimTime::from_millis(1) };
        assert!(e.to_string().contains("node3"));
        let e2 = FaultError::Injected { from: NodeId(0), to: NodeId(4), at: SimTime::ZERO };
        assert!(e2.to_string().contains("node0->node4"));
        let e3 = FaultError::NodeCrashed { node: NodeId(8), at: SimTime::from_millis(2) };
        assert!(e3.to_string().contains("node8 crashed"));
        let e4 = FaultError::Partitioned { from: NodeId(1), to: NodeId(8), at: SimTime::ZERO };
        assert!(e4.to_string().contains("partition severs node1->node8"));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_none());
    }
}
