//! SEASGD vs Downpour ASGD — the §II claim made runnable: "\[EASGD\]
//! performs better than the Downpour SGD by reducing the delay time of
//! global weight updating between the parameter server and local workers."
//!
//! Both platforms train the same real MLP on the same shards with the
//! same total epochs; we compare the final held-out accuracy/loss and the
//! per-iteration communication cost as the worker count grows.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin asgd_vs_easgd`.

use shmcaffe::config::ShmCaffeConfig;
use shmcaffe::platforms::{DownpourAsgd, DownpourConfig, ShmCaffeA};
use shmcaffe_bench::convergence::ConvergenceTask;
use shmcaffe_bench::table::{pct, Table};
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::ClusterSpec;

fn main() {
    let task = ConvergenceTask::default();
    println!("SEASGD (ShmCaffe-A) vs Downpour ASGD, same data and epochs\n");

    let mut table = Table::new(
        "Convergence and per-iteration communication",
        &[
            "workers",
            "SEASGD top-1",
            "SEASGD loss",
            "ASGD top-1",
            "ASGD loss",
            "SEASGD comm",
            "ASGD comm",
        ],
    );
    for workers in [4usize, 8, 16] {
        let iters = task.iters_for(workers);
        let factory = task.factory(0.1, (iters * 2).div_ceil(3), 2);
        let nodes = workers.div_ceil(4).max(1);

        let seasgd = ShmCaffeA::new(
            ClusterSpec::paper_testbed(nodes),
            workers,
            ShmCaffeConfig {
                max_iters: iters,
                eval_every: iters,
                progress_every: 25,
                jitter: JitterModel::NONE,
                ..Default::default()
            },
        )
        .run(factory)
        .expect("seasgd runs");

        // The Downpour server applies raw gradients: match the solver's
        // base lr so the comparison is about *asynchrony*, not step size.
        let factory = task.factory(0.1, (iters * 2).div_ceil(3), 2);
        // One extra node hosts the dedicated parameter server.
        let asgd = DownpourAsgd::new(
            ClusterSpec::paper_testbed(nodes + 1),
            workers,
            DownpourConfig {
                max_iters: iters,
                eval_every: iters,
                ps_lr: 0.1,
                ..Default::default()
            },
        )
        .run(factory)
        .expect("asgd runs");

        let se = seasgd.final_eval().expect("evals");
        let ae = asgd.final_eval().expect("evals");
        table.row_owned(vec![
            workers.to_string(),
            pct(se.top1 as f64),
            format!("{:.3}", se.loss),
            pct(ae.top1 as f64),
            format!("{:.3}", ae.loss),
            format!("{:.3} ms", seasgd.mean_comm_ms()),
            format!("{:.3} ms", asgd.mean_comm_ms()),
        ]);
    }
    table.print();
    println!("paper §II: EASGD beats Downpour by cutting the global-update delay;");
    println!("Downpour additionally pays a blocking pull+push round trip per iteration.");
}
