//! The BVLC Caffe (v1.0.0) baseline: single-process multi-GPU SSGD.
//!
//! "It is a standalone library, which runs over single-GPU and multi-GPU
//! systems. If a multi-GPU setting is used, SSGD is implemented using NCCL
//! Allreduce library" (paper §IV-C). All GPUs live in one process on one
//! node; besides the shared PCIe bus, the single host process is itself a
//! bottleneck (data layer, kernel launches, solver bookkeeping), which is
//! why the paper measures *degrading* scalability: 2.7× at 8 GPUs but only
//! 2.3× at 16. We model that host bottleneck as a serialised per-GPU
//! service whose cost grows with the GPU count (see
//! [`crate::config::BaselineConfig`]).

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_collectives::IntraNodeGroup;
use shmcaffe_simnet::resource::{BandwidthResource, LinkModel};
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{SimDuration, Simulation};

use crate::config::BaselineConfig;
use crate::report::{EvalPoint, TrainingReport, WorkerReport};
use crate::trainer::{Trainer, TrainerFactory};
use crate::PlatformError;

use super::run_sim;

/// Shared configuration of the SSGD baseline platforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsgdConfig {
    /// Synchronous iterations to run (effective batch = workers × batch).
    pub max_iters: usize,
    /// Evaluate on worker 0 every this many iterations (0 = never).
    pub eval_every: usize,
    /// Baseline calibration constants.
    pub baseline: BaselineConfig,
}

impl Default for SsgdConfig {
    fn default() -> Self {
        SsgdConfig { max_iters: 100, eval_every: 0, baseline: BaselineConfig::default() }
    }
}

/// BVLC Caffe: `gpus` GPUs in one process on one node.
#[derive(Debug, Clone)]
pub struct CaffeSsgd {
    gpus: usize,
    pcie: LinkModel,
    cfg: SsgdConfig,
}

impl CaffeSsgd {
    /// Configures the platform with `gpus` GPUs on a single node using the
    /// PCIe model of `spec`.
    pub fn new(spec: ClusterSpec, gpus: usize, cfg: SsgdConfig) -> Self {
        CaffeSsgd { gpus, pcie: spec.pcie, cfg }
    }

    /// Runs SSGD training and returns the fleet report.
    ///
    /// # Errors
    ///
    /// Returns configuration errors or any propagated worker failure.
    pub fn run<F: TrainerFactory>(&self, factory: F) -> Result<TrainingReport, PlatformError> {
        if self.gpus == 0 {
            return Err(PlatformError::BadConfig("need at least one GPU".into()));
        }
        if self.cfg.max_iters == 0 {
            return Err(PlatformError::BadConfig("max_iters must be positive".into()));
        }
        // A private single-node fabric: BVLC Caffe is a standalone process.
        let spec = ClusterSpec {
            gpu_nodes: 1,
            gpus_per_node: self.gpus,
            hca: ClusterSpec::fdr_hca(),
            pcie: self.pcie,
            memory_servers: 0,
            half_duplex_memory_server: false,
        };
        let fabric = Fabric::new(spec);
        let clique = IntraNodeGroup::new(fabric, NodeId(0), self.gpus);
        // The single host process: data layer + launch overheads serialise
        // across GPUs here.
        let host = BandwidthResource::new("caffe_host", LinkModel::new(1.0, SimDuration::ZERO));
        let host_service = SimDuration::from_millis_f64(
            self.cfg.baseline.caffe_host_ms_base
                + self.cfg.baseline.caffe_host_ms_per_gpu * self.gpus as f64,
        );

        let factory = Arc::new(factory);
        let cfg = self.cfg;
        let gpus = self.gpus;
        let report = Arc::new(Mutex::new(TrainingReport::new("Caffe", gpus)));

        let mut sim = Simulation::new();
        for gpu in 0..gpus {
            let mut comm = clique.comm(gpu);
            let host = host.clone();
            let factory = Arc::clone(&factory);
            let report = Arc::clone(&report);
            sim.spawn(&format!("caffe_gpu{gpu}"), move |ctx| {
                let ctx = &ctx;
                let mut trainer = factory.make(gpu, gpus);
                let param_len = trainer.param_len();
                let wire = trainer.wire_bytes();
                let mut grads = vec![0.0f32; param_len];
                let mut wrep = WorkerReport::new(gpu);
                let mut evals = Vec::new();
                let mut loss_ema = f32::NAN;
                let inv = 1.0 / gpus as f32;

                for iter in 1..=cfg.max_iters as u64 {
                    let comp_start = ctx.now();
                    let loss = trainer.compute_gradients(ctx);
                    let comp_grad = ctx.now() - comp_start;

                    let comm_start = ctx.now();
                    // Single-process host bottleneck (serialised per GPU).
                    if gpus > 1 {
                        host.occupy(ctx, host_service);
                    }
                    // NCCL allreduce over the shared PCIe bus.
                    trainer.read_grads(&mut grads);
                    let mut summed = if gpus > 1 {
                        comm.all_reduce_wire(ctx, std::mem::take(&mut grads), wire)
                    } else {
                        std::mem::take(&mut grads)
                    };
                    for g in summed.iter_mut() {
                        *g *= inv;
                    }
                    trainer.write_grads(&summed);
                    grads = summed;
                    let comm_time = ctx.now() - comm_start;

                    let upd_start = ctx.now();
                    trainer.apply_update(ctx);
                    wrep.comp_ms.record_duration_ms(comp_grad + (ctx.now() - upd_start));
                    wrep.comm_ms.record_duration_ms(comm_time);
                    loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };

                    if gpu == 0 && cfg.eval_every > 0 && iter % cfg.eval_every as u64 == 0 {
                        if let Some(sample) = trainer.evaluate() {
                            evals.push(EvalPoint {
                                iter,
                                time: ctx.now(),
                                loss: sample.loss,
                                top1: sample.top1,
                                topk: sample.topk,
                            });
                        }
                    }
                }

                wrep.iters = cfg.max_iters as u64;
                wrep.finished_at = ctx.now();
                wrep.final_loss = loss_ema;
                let mut report = report.lock();
                report.workers[gpu] = wrep;
                if gpu == 0 {
                    report.evals = evals;
                    let mut final_w = vec![0.0f32; param_len];
                    trainer.read_weights(&mut final_w);
                    report.final_weights = Some(final_w);
                }
            });
        }

        let wall = run_sim(sim)?;
        let mut final_report =
            Arc::try_unwrap(report).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        final_report.wall = wall;
        Ok(final_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModeledTrainerFactory;
    use shmcaffe_models::{CnnModel, WorkloadModel};
    use shmcaffe_simnet::jitter::JitterModel;

    fn factory(model: CnnModel) -> ModeledTrainerFactory {
        ModeledTrainerFactory::new(WorkloadModel::from_cnn(model), JitterModel::NONE, 5)
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let report = CaffeSsgd::new(
            ClusterSpec::paper_testbed(1),
            1,
            SsgdConfig { max_iters: 5, ..Default::default() },
        )
        .run(factory(CnnModel::InceptionV1))
        .unwrap();
        assert_eq!(report.workers.len(), 1);
        assert!((report.mean_comp_ms() - 257.0).abs() < 1.0);
        assert!(report.mean_comm_ms() < 1.0);
    }

    #[test]
    fn scalability_degrades_from_eight_to_sixteen() {
        // The paper's headline Caffe behaviour: throughput speedup 2.7x at
        // 8 GPUs and lower at 16.
        let time_per_sample = |gpus: usize| -> f64 {
            let report = CaffeSsgd::new(
                ClusterSpec::paper_testbed(1),
                gpus,
                SsgdConfig { max_iters: 10, ..Default::default() },
            )
            .run(factory(CnnModel::InceptionV1))
            .unwrap();
            report.mean_iter_ms() / gpus as f64
        };
        let t1 = time_per_sample(1);
        let speedup8 = t1 / time_per_sample(8);
        let speedup16 = t1 / time_per_sample(16);
        assert!(speedup8 > 2.0 && speedup8 < 3.5, "8-GPU speedup {speedup8}");
        assert!(speedup16 < speedup8, "16-GPU speedup {speedup16} should degrade");
    }

    #[test]
    fn rejects_zero_gpus() {
        assert!(CaffeSsgd::new(ClusterSpec::paper_testbed(1), 0, SsgdConfig::default())
            .run(factory(CnnModel::InceptionV1))
            .is_err());
    }
}
