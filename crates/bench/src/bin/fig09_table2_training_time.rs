//! Fig. 9 + Table II — Inception_v1 15-epoch training time and scalability
//! of the four platforms at 1/8/16 GPUs.
//!
//! Headline anchors from the paper's prose: Caffe(1 GPU) = 22:59 with
//! scalability 2.7 at 8 GPUs degrading to 2.3 at 16; ShmCaffe is 10.1×
//! faster than Caffe and 2.8× faster than Caffe-MPI at 16 GPUs.
//!
//! Run with
//! `cargo run --release -p shmcaffe-bench --bin fig09_table2_training_time`.

use shmcaffe_bench::experiments::{epochs_hours, measure, Platform, PAPER_EPOCHS};
use shmcaffe_bench::json::{emit_figure, Json};
use shmcaffe_bench::table::{hours_hm, Table};
use shmcaffe_models::CnnModel;

fn main() {
    let model = CnnModel::InceptionV1;
    let iters = 150;
    let gpu_counts = [1usize, 8, 16];
    println!("Table II / Fig 9 reproduction: Inception_v1, 15 epochs");
    println!("(steady-state over {iters} iterations, extrapolated to 15 epochs)\n");

    let mut hours = vec![vec![0.0f64; gpu_counts.len()]; Platform::ALL.len()];
    let mut table = Table::new(
        "Training time (h:m) and scalability vs Caffe 1 GPU",
        &["platform", "1 GPU", "8 GPUs", "16 GPUs", "scal@8", "scal@16"],
    );

    let mut caffe_1gpu_hours = f64::NAN;
    for (pi, platform) in Platform::ALL.iter().enumerate() {
        for (gi, &gpus) in gpu_counts.iter().enumerate() {
            let report = measure(*platform, model, gpus, iters, 42).expect("platform runs");
            hours[pi][gi] = epochs_hours(&report, model, gpus, PAPER_EPOCHS);
        }
        if *platform == Platform::Caffe {
            caffe_1gpu_hours = hours[pi][0];
        }
    }

    for (pi, platform) in Platform::ALL.iter().enumerate() {
        let scal = |h: f64| caffe_1gpu_hours / h;
        table.row_owned(vec![
            platform.name().to_string(),
            hours_hm(hours[pi][0]),
            hours_hm(hours[pi][1]),
            hours_hm(hours[pi][2]),
            format!("{:.1}", scal(hours[pi][1])),
            format!("{:.1}", scal(hours[pi][2])),
        ]);
    }
    emit_figure(
        "fig09_table2_training_time",
        &table,
        vec![
            ("caffe_1gpu_hours", Json::Num(caffe_1gpu_hours)),
            ("shmcaffe_h_16gpu_hours", Json::Num(hours[4][2])),
            ("speedup_vs_caffe", Json::Num(caffe_1gpu_hours / hours[4][2])),
            ("seed", Json::Int(42)),
            // No fault plan is injected in this figure.
            ("fault_seed", Json::Null),
        ],
    );

    // The paper's Table II "ShmCaffe" entry uses Hybrid SGD (§IV-C). Its
    // headline "10.1 times faster than Caffe" is against standalone Caffe
    // (the 22:59 single-GPU baseline): 22:59 / 10.1 = 2:17, which is the
    // only reading consistent with a ≥257 ms compute floor per iteration.
    let shm_h_16 = hours[4][2];
    let caffempi_16 = hours[1][2];
    println!(
        "ShmCaffe-H @16 GPUs vs standalone Caffe: {:.1}x (paper: 10.1x)",
        caffe_1gpu_hours / shm_h_16
    );
    println!(
        "ShmCaffe-H vs Caffe-MPI @16 GPUs:        {:.1}x (paper: 2.8x)",
        caffempi_16 / shm_h_16
    );
    println!(
        "Caffe 1 GPU baseline:                    {} (paper: 22:59)",
        hours_hm(caffe_1gpu_hours)
    );
}
