//! Property-based proof that the parallel kernels are schedule-independent.
//!
//! Every hot kernel in this crate decomposes work along **fixed split
//! points** derived only from the problem size, and combines partial
//! results in a fixed order on the calling thread. Consequently the output
//! must be *bit-identical* for any logical thread count. These tests
//! execute genuinely different schedules in one process via
//! [`parallel::with_threads`] and compare raw `f32::to_bits`
//! representations, so even a one-ulp reassociation difference fails.
//!
//! A separate tolerance check compares the packed gemm against a naive
//! triple loop, guarding against the parallel paths all agreeing on a
//! wrong answer.

use proptest::prelude::*;
use shmcaffe_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dGeometry};
use shmcaffe_tensor::gemm::{gemm, Transpose};
use shmcaffe_tensor::{ops, parallel};

/// The schedules under test: serial, even splits, and a count that does
/// not divide typical panel counts (forces ragged round-robin buckets).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Deterministic pseudo-random fill (LCG), independent of any crate RNG.
fn fill(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Naive O(mnk) reference gemm supporting both transpose flags.
#[allow(clippy::too_many_arguments)]
fn gemm_reference(
    trans_a: Transpose,
    trans_b: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let av = match trans_a {
                    Transpose::No => a[i * k + p],
                    Transpose::Yes => a[p * m + i],
                };
                let bv = match trans_b {
                    Transpose::No => b[p * n + j],
                    Transpose::Yes => b[j * k + p],
                };
                acc += f64::from(av) * f64::from(bv);
            }
            let old = if beta == 0.0 { 0.0 } else { f64::from(c[i * n + j]) * f64::from(beta) };
            c[i * n + j] = (f64::from(alpha) * acc + old) as f32;
        }
    }
}

fn transpose_flag() -> impl Strategy<Value = Transpose> {
    (0usize..2).prop_map(|i| if i == 0 { Transpose::No } else { Transpose::Yes })
}

fn pick(values: &'static [f32]) -> impl Strategy<Value = f32> {
    (0usize..values.len()).prop_map(move |i| values[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// gemm output is bit-identical across thread counts for all four
    /// transpose combinations and non-square shapes spanning several
    /// MC=64 row panels.
    #[test]
    fn gemm_bit_identical_across_thread_counts(
        trans_a in transpose_flag(),
        trans_b in transpose_flag(),
        m in 1usize..200,
        n in 1usize..40,
        k in 1usize..70,
        alpha in pick(&[1.0, 0.5, -2.0]),
        beta in pick(&[0.0, 1.0, 0.25]),
        seed in 0u32..1000,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xabcd);
        let c0 = fill(m * n, seed ^ 0x1234);

        let run = |threads: usize| {
            let mut c = c0.clone();
            parallel::with_threads(threads, || {
                gemm(trans_a, trans_b, m, n, k, alpha, &a, &b, beta, &mut c);
            });
            c
        };

        let serial = run(1);
        for &t in &THREAD_COUNTS[1..] {
            let par = run(t);
            prop_assert_eq!(
                bits(&serial), bits(&par),
                "gemm diverged at threads={} ({:?},{:?}) m={} n={} k={}",
                t, trans_a, trans_b, m, n, k
            );
        }

        // The schedules agreeing is not enough: check against a naive
        // reference so they cannot all agree on a wrong answer.
        let mut reference = c0.clone();
        gemm_reference(trans_a, trans_b, m, n, k, alpha, &a, &b, beta, &mut reference);
        for (got, want) in serial.iter().zip(reference.iter()) {
            prop_assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "gemm wrong vs reference: {got} vs {want}"
            );
        }
    }

    /// Convolution forward and backward (the fused im2col → packed-GEMM
    /// path) are bit-identical across thread counts, including the
    /// batch fold into dW/db inside the filter-row-block tasks.
    #[test]
    fn conv_bit_identical_across_thread_counts(
        batch in 1usize..9,
        channels in 1usize..4,
        out_channels in 1usize..6,
        hw in 3usize..10,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..1000,
    ) {
        prop_assume!(kernel <= hw + 2 * pad);
        let geom = Conv2dGeometry::square(channels, hw, kernel, stride, pad);
        prop_assume!(geom.out_h().is_ok());
        let spatial = geom.out_h().unwrap() * geom.out_w().unwrap();
        let in_total = batch * geom.in_len();
        let out_total = batch * out_channels * spatial;
        let w_len = out_channels * geom.col_rows();

        let input = fill(in_total, seed);
        let weights = fill(w_len, seed ^ 0x5555);
        let bias = fill(out_channels, seed ^ 0xaaaa);
        let d_output = fill(out_total, seed ^ 0x0f0f);

        let run = |threads: usize| {
            let mut output = vec![0.0f32; out_total];
            let mut d_weights = fill(w_len, seed ^ 0x7777); // non-zero: backward accumulates
            let mut d_bias = fill(out_channels, seed ^ 0x8888);
            let mut d_input = vec![0.0f32; in_total];
            parallel::with_threads(threads, || {
                conv2d_forward(
                    &geom, batch, out_channels, &input, &weights, &bias,
                    &mut output,
                );
                conv2d_backward(
                    &geom, batch, out_channels, &input, &weights, &d_output,
                    &mut d_weights, &mut d_bias, &mut d_input,
                );
            });
            (output, d_weights, d_bias, d_input)
        };

        let serial = run(1);
        for &t in &THREAD_COUNTS[1..] {
            let par = run(t);
            prop_assert_eq!(bits(&serial.0), bits(&par.0), "conv fwd diverged at threads={}", t);
            prop_assert_eq!(bits(&serial.1), bits(&par.1), "conv dW diverged at threads={}", t);
            prop_assert_eq!(bits(&serial.2), bits(&par.2), "conv db diverged at threads={}", t);
            prop_assert_eq!(bits(&serial.3), bits(&par.3), "conv dX diverged at threads={}", t);
        }
    }

    /// Element-wise ops and the chunked dot reduction are bit-identical
    /// across thread counts even when the length spans many chunks.
    #[test]
    fn elementwise_bit_identical_across_thread_counts(
        extra in 0usize..1000,
        seed in 0u32..1000,
    ) {
        // Straddle multiple ELEMWISE_CHUNK boundaries plus a ragged tail.
        let n = 2 * parallel::ELEMWISE_CHUNK + extra + 1;
        let x = fill(n, seed);
        let y0 = fill(n, seed ^ 0x9999);

        let run = |threads: usize| {
            let mut y = y0.clone();
            let d = parallel::with_threads(threads, || {
                ops::axpy(0.75, &x, &mut y);
                ops::dot(&x, &y)
            });
            (y, d)
        };

        let (y1, d1) = run(1);
        for &t in &THREAD_COUNTS[1..] {
            let (yt, dt) = run(t);
            prop_assert_eq!(bits(&y1), bits(&yt), "axpy diverged at threads={}", t);
            prop_assert_eq!(d1.to_bits(), dt.to_bits(), "dot diverged at threads={}", t);
        }
    }
}
