//! Fig. 10 — Per-iteration computation and communication time of the four
//! platforms at 8 and 16 GPUs (Inception_v1).
//!
//! Anchor: "ShmCaffe Communication time is 5.3 time faster than Caffe-MPI".
//!
//! Run with
//! `cargo run --release -p shmcaffe-bench --bin fig10_iteration_breakdown`.

use shmcaffe_bench::experiments::{measure, Breakdown, Platform};
use shmcaffe_bench::table::{ms, pct, Table};
use shmcaffe_models::CnnModel;

fn main() {
    let model = CnnModel::InceptionV1;
    let iters = 150;
    println!("Fig 10 reproduction: per-iteration comp/comm (Inception_v1)\n");

    let mut shm_comm_16 = f64::NAN;
    let mut caffempi_comm_16 = f64::NAN;
    let mut table = Table::new(
        "Computation vs communication per iteration",
        &["platform", "GPUs", "comp (ms)", "comm (ms)", "comm ratio"],
    );
    for platform in Platform::ALL {
        for gpus in [8usize, 16] {
            let report = measure(platform, model, gpus, iters, 42).expect("platform runs");
            let b = Breakdown::from_report(platform.name(), &report);
            if gpus == 16 {
                match platform {
                    Platform::ShmCaffeH => shm_comm_16 = b.comm_ms,
                    Platform::CaffeMpi => caffempi_comm_16 = b.comm_ms,
                    _ => {}
                }
            }
            table.row_owned(vec![
                platform.name().to_string(),
                gpus.to_string(),
                ms(b.comp_ms),
                ms(b.comm_ms),
                pct(b.comm_ratio()),
            ]);
        }
    }
    table.print();
    println!(
        "ShmCaffe-H comm vs Caffe-MPI comm @16 GPUs: {:.1}x faster (paper: 5.3x)",
        caffempi_comm_16 / shm_comm_16
    );
}
