//! Primary/standby SMB server pair with asynchronous replication.
//!
//! The paper hangs the whole platform off one dedicated memory server; this
//! module removes that single point of failure. An [`SmbPair`] runs the
//! regular server on the first memory endpoint (primary) and a mirror on
//! the second (standby). A background *replicator* process periodically
//! ships a journal of segment metadata plus the changed segment contents,
//! the lease table and the eviction tombstones to the standby. Each
//! completed pass bumps the pair's replication **epoch**; the wire time is
//! charged across both servers' DRAM buses and both HCAs, so replication
//! bandwidth contends with client traffic exactly like any other transfer.
//!
//! **Promotion rules.** When a client's retrying operation observes the
//! primary's crash ([`shmcaffe_simnet::fault::FaultError::NodeCrashed`]),
//! it calls [`SmbPair::fail_over`]: the first caller *promotes* the standby
//! (waiting out any in-flight replication pass, so a pass never straddles
//! the role flip), every caller then reconnects its queue pair to the
//! standby and re-resolves access keys through the mirrored segment table —
//! segments keep their [`crate::ShmKey`]s across failover, so client
//! handles stay valid. Promotion is permanent and idempotent.
//!
//! **Happens-before.** Under `--features race-detect` the replicator's
//! writes into standby regions are plain `Write`s: they are safe only
//! because *replicate happens-before promote happens-before every client
//! access to the standby*. The replicator stamps its clock after each pass;
//! promotion joins that stamp; and every post-promotion
//! [`SmbPair::active_server`] call joins the promotion stamp (each worker
//! and update thread is its own process, so the join must happen per
//! access, not per client). Removing any of these edges is a detectable
//! race — see `crates/smb/tests/race_detect.rs`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::{SimContext, SimDuration};

use crate::server::{ShmKey, SmbServer, SmbServerConfig};
use crate::SmbError;

/// Which member of an [`SmbPair`] currently serves client operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// The original server on the first memory endpoint.
    Primary,
    /// The mirror on the second memory endpoint (after promotion).
    Standby,
}

struct PairInner {
    primary: SmbServer,
    standby: SmbServer,
    /// Completed replication passes (the replication epoch).
    epoch: Mutex<u64>,
    /// Standby's view of each segment's version at its last copy, for
    /// delta replication (only changed segments move bytes).
    replicated_versions: Mutex<BTreeMap<ShmKey, u64>>,
    /// A replication pass is currently in flight (the promoter waits for
    /// it to drain so no pass straddles the role flip).
    in_pass: AtomicBool,
    /// A promotion has been claimed (first fail_over caller wins).
    promote_started: AtomicBool,
    /// The promotion is complete; clients route to the standby.
    promote_done: AtomicBool,
    /// Replicator shutdown flag (set by the platform at teardown).
    stop: AtomicBool,
    /// Clock stamp at the end of the last completed pass: the
    /// replicate→promote happens-before edge.
    #[cfg(feature = "race-detect")]
    repl_stamp: Mutex<Option<shmcaffe_simnet::race::VectorClock>>,
    /// Clock stamp at promotion: the promote→client-access edge, joined by
    /// every post-promotion [`SmbPair::active_server`] call.
    #[cfg(feature = "race-detect")]
    promote_stamp: Mutex<Option<shmcaffe_simnet::race::VectorClock>>,
}

/// A replicated SMB deployment: primary plus standby with asynchronous
/// mirror traffic and client-triggered failover. Cheap to clone (shared
/// handle).
#[derive(Clone)]
pub struct SmbPair {
    inner: Arc<PairInner>,
}

impl fmt::Debug for SmbPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmbPair")
            .field("primary", &self.inner.primary.node())
            .field("standby", &self.inner.standby.node())
            .field("role", &self.role())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl SmbPair {
    /// Builds a pair over the fabric's first two memory-server endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] unless the fabric has at least
    /// two memory servers (`ClusterSpec::memory_servers >= 2`).
    pub fn new(rdma: RdmaFabric, config: SmbServerConfig) -> Result<Self, SmbError> {
        let primary = SmbServer::with_config_at(rdma.clone(), config, 0)?;
        let standby = SmbServer::with_config_at(rdma, config, 1)?;
        Ok(SmbPair {
            inner: Arc::new(PairInner {
                primary,
                standby,
                epoch: Mutex::new(0),
                replicated_versions: Mutex::new(BTreeMap::new()),
                in_pass: AtomicBool::new(false),
                promote_started: AtomicBool::new(false),
                promote_done: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                #[cfg(feature = "race-detect")]
                repl_stamp: Mutex::new(None),
                #[cfg(feature = "race-detect")]
                promote_stamp: Mutex::new(None),
            }),
        })
    }

    /// The primary server (serving until promotion).
    pub fn primary(&self) -> &SmbServer {
        &self.inner.primary
    }

    /// The standby server (serving after promotion).
    pub fn standby(&self) -> &SmbServer {
        &self.inner.standby
    }

    /// Which member currently serves clients.
    pub fn role(&self) -> ServerRole {
        if self.inner.promote_done.load(Ordering::Acquire) {
            ServerRole::Standby
        } else {
            ServerRole::Primary
        }
    }

    /// Completed replication passes.
    pub fn epoch(&self) -> u64 {
        *self.inner.epoch.lock()
    }

    /// Whether the standby has been promoted.
    pub fn promoted(&self) -> bool {
        self.inner.promote_done.load(Ordering::Acquire)
    }

    /// Whether the still-serving primary's node has crashed according to
    /// the fabric's fault plan. Clients consult this to route plain
    /// (non-retrying) operations away from a dead primary proactively —
    /// those paths transfer infallibly and must never target a crashed
    /// endpoint. Always `false` once promoted (the primary no longer
    /// serves) or when the fabric has no fault plan.
    pub fn primary_crashed(&self, ctx: &SimContext) -> bool {
        !self.promoted()
            && self
                .inner
                .primary
                .rdma()
                .fabric()
                .fault_injector()
                .is_some_and(|inj| inj.memory_server_crashed(self.inner.primary.node(), ctx.now()))
    }

    /// The currently serving server. After promotion this also joins the
    /// promotion stamp into the calling process's clock, establishing the
    /// replicate→promote→access happens-before chain for *every* process
    /// that touches the standby (workers and their update threads each
    /// have their own clock, so the join happens per call).
    pub fn active_server(&self, ctx: &SimContext) -> SmbServer {
        if self.inner.promote_done.load(Ordering::Acquire) {
            #[cfg(feature = "race-detect")]
            if let Some(stamp) = self.inner.promote_stamp.lock().as_ref() {
                ctx.vc_join(stamp);
            }
            #[cfg(not(feature = "race-detect"))]
            let _ = ctx;
            self.inner.standby.clone()
        } else {
            self.inner.primary.clone()
        }
    }

    /// One asynchronous replication pass: ships the segment journal
    /// (metadata + changed contents), the lease table and the eviction
    /// tombstones to the standby, charging wire time over the path
    /// primary DRAM bus → primary HCA → standby HCA → standby DRAM bus.
    /// Bumps and returns the replication epoch on success.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::Unavailable`] when the primary↔standby path is
    /// faulted (in particular once the primary has crashed) — the pass
    /// aborts and whatever the standby already holds is what failover gets.
    pub fn replicate(&self, ctx: &SimContext) -> Result<u64, SmbError> {
        self.inner.in_pass.store(true, Ordering::Release);
        let result = self.replicate_pass(ctx);
        // Stamp the pass end even when it aborted part-way: promotion joins
        // this stamp, so every standby write the pass did manage to apply
        // happens-before the promotion.
        #[cfg(feature = "race-detect")]
        {
            *self.inner.repl_stamp.lock() = Some(ctx.vc_stamp());
        }
        self.inner.in_pass.store(false, Ordering::Release);
        result
    }

    fn replicate_pass(&self, ctx: &SimContext) -> Result<u64, SmbError> {
        let primary = &self.inner.primary;
        let standby = &self.inner.standby;
        let rdma = primary.rdma();
        let fabric = rdma.fabric();
        let cfg = primary.config();

        let catalog = primary.segment_catalog();
        // Mirror deletions first: segments evicted on the primary since the
        // last pass must not survive on the standby.
        let live: BTreeMap<ShmKey, ()> = catalog.iter().map(|m| (m.key, ())).collect();
        for meta in standby.segment_catalog() {
            if !live.contains_key(&meta.key) {
                standby.drop_replica_segment(meta.key);
                self.inner.replicated_versions.lock().remove(&meta.key);
            }
        }
        for meta in catalog {
            // The crash cuts the replication stream mid-pass: segments
            // copied before the cut stay; the rest keep their old contents.
            self.gate(ctx, fabric)?;
            let behind =
                self.inner.replicated_versions.lock().get(&meta.key) != Some(&meta.version);
            let is_new = standby.segment(meta.key).is_err();
            let standby_mr = standby.install_replica_segment(&meta)?;
            if !behind && !is_new {
                continue;
            }
            let Ok((primary_mr, _)) = primary.segment(meta.key) else {
                // Evicted while this pass slept on the wire; the next pass
                // mirrors the deletion.
                continue;
            };
            let data = rdma.with_region(&primary_mr, |buf| buf.to_vec())?;
            rdma.with_region(&standby_mr, |buf| buf.copy_from_slice(&data))?;
            #[cfg(feature = "race-detect")]
            {
                use shmcaffe_simnet::race::AccessKind;
                // The source side is deliberately *not* recorded: async
                // replication snapshots segments that clients keep
                // mutating — that concurrency is the design, not a bug
                // (a torn snapshot is healed by the next pass, and
                // checkpoint segments use the versioned protocol for
                // state whose integrity rejoin depends on). The standby
                // side *is* recorded, as a plain write: only the
                // replicate→promote→access edges make it safe, and any
                // client that reaches the standby without them races here.
                rdma.race_detector().record(
                    ctx,
                    standby_mr.rkey.0,
                    0,
                    standby_mr.len,
                    AccessKind::Write,
                    "smb::replica::apply",
                );
            }
            let wire = (meta.wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
            shmcaffe_simnet::resource::transfer_path_stream(
                ctx,
                &[
                    primary.memory_resource(),
                    fabric.hca_tx(primary.node()),
                    fabric.hca_rx(standby.node()),
                    standby.memory_resource(),
                ],
                wire,
                Some(cfg.stream_bps),
            );
            self.inner.replicated_versions.lock().insert(meta.key, meta.version);
        }
        // Control-plane mirror: lease table and tombstones ride one control
        // message once the data plane is consistent.
        self.gate(ctx, fabric)?;
        ctx.sleep(cfg.control_latency);
        standby.set_leases(primary.lease_catalog());
        standby.set_tombstones(primary.tombstone_catalog());
        let mut epoch = self.inner.epoch.lock();
        *epoch += 1;
        Ok(*epoch)
    }

    /// Fault gate on the primary→standby path.
    fn gate(
        &self,
        ctx: &SimContext,
        fabric: &shmcaffe_simnet::topology::Fabric,
    ) -> Result<(), SmbError> {
        let primary = &self.inner.primary;
        let standby = &self.inner.standby;
        fabric.fault_check(ctx, primary.node(), standby.node()).map_err(|fault| {
            SmbError::Unavailable {
                key: ShmKey(0),
                node: primary.node(),
                cause: shmcaffe_rdma::RdmaError::QpFault {
                    local: standby.node(),
                    remote: primary.node(),
                    fault,
                },
            }
        })?;
        Ok(())
    }

    /// Runs the replication loop: one pass every `interval` of virtual
    /// time, until [`SmbPair::stop_replicator`] is called, the standby is
    /// promoted, or the primary crashes. Spawn this as its own simulation
    /// process.
    pub fn run_replicator(&self, ctx: &SimContext, interval: SimDuration) {
        loop {
            ctx.sleep(interval);
            if self.inner.stop.load(Ordering::Acquire)
                || self.inner.promote_started.load(Ordering::Acquire)
            {
                return;
            }
            if self.replicate(ctx).is_err() {
                // The primary is gone; the standby serves whatever the
                // completed passes mirrored.
                return;
            }
        }
    }

    /// Asks the replicator loop to exit at its next wakeup.
    pub fn stop_replicator(&self) {
        self.inner.stop.store(true, Ordering::Release);
    }

    /// Promotes the standby. The first caller wins: it waits out any
    /// in-flight replication pass (so the pass's standby writes are ordered
    /// before the role flip), joins the replicator's last stamp, and then
    /// opens the standby for routing. Later callers (and the winner) all
    /// leave with the promotion stamp joined into their clock. Returns
    /// whether this call performed the promotion.
    pub fn promote(&self, ctx: &SimContext) -> bool {
        if self.inner.promote_started.swap(true, Ordering::AcqRel) {
            // Someone else is promoting (or already has): wait until the
            // flip is visible, then pick up the stamp.
            while !self.inner.promote_done.load(Ordering::Acquire) {
                ctx.sleep(SimDuration::from_micros(50));
            }
            #[cfg(feature = "race-detect")]
            if let Some(stamp) = self.inner.promote_stamp.lock().as_ref() {
                ctx.vc_join(stamp);
            }
            return false;
        }
        while self.inner.in_pass.load(Ordering::Acquire) {
            ctx.sleep(SimDuration::from_micros(50));
        }
        #[cfg(feature = "race-detect")]
        {
            if let Some(stamp) = self.inner.repl_stamp.lock().as_ref() {
                ctx.vc_join(stamp);
            }
            *self.inner.promote_stamp.lock() = Some(ctx.vc_stamp());
        }
        self.inner.promote_done.store(true, Ordering::Release);
        true
    }

    /// Client-side failover: promotes the standby (first caller) and moves
    /// this client's queue pair from the dead primary to the standby. The
    /// segment table was mirrored under the same keys, so rkey
    /// re-resolution happens implicitly on the caller's next operation.
    pub fn fail_over(&self, ctx: &SimContext, local: NodeId) {
        self.promote(ctx);
        self.inner.primary.rdma().reconnect_qp(
            ctx,
            local,
            self.inner.primary.node(),
            self.inner.standby.node(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;

    fn replicated_fabric(gpu_nodes: usize) -> RdmaFabric {
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(gpu_nodes) };
        RdmaFabric::new(Fabric::new(spec))
    }

    #[test]
    fn pair_requires_two_memory_servers() {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
        assert!(matches!(
            SmbPair::new(rdma, SmbServerConfig::default()),
            Err(SmbError::NoMemoryServer)
        ));
    }

    #[test]
    fn replication_mirrors_segments_under_the_same_keys() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let key = client.create(&ctx, "wg", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            assert_eq!(p.replicate(&ctx).unwrap(), 1);
            // Same ShmKey resolves on the standby, contents mirrored.
            let (mr, _) = p.standby().segment(key).unwrap();
            let copy = p.standby().rdma().with_region(&mr, |b| b.to_vec()).unwrap();
            assert_eq!(copy, vec![1.0, 2.0, 3.0, 4.0]);
            // Unchanged segments are skipped on the next pass (epoch still
            // bumps — the journal round trip happened).
            assert_eq!(p.replicate(&ctx).unwrap(), 2);
        });
        sim.run();
    }

    #[test]
    fn replication_charges_both_dram_buses() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let key = client.create(&ctx, "wg", 4, Some(100_000_000)).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0; 4]).unwrap();
            let before = p.standby().memory_bytes();
            p.replicate(&ctx).unwrap();
            assert!(
                p.standby().memory_bytes() > before + 100_000_000,
                "standby DRAM bus must carry the mirrored contents"
            );
        });
        sim.run();
    }

    #[test]
    fn replication_mirrors_deletions_leases_and_tombstones() {
        use shmcaffe_simnet::SimDuration;
        let rdma = replicated_fabric(1);
        let cfg =
            SmbServerConfig { lease_timeout: SimDuration::from_millis(50), ..Default::default() };
        let pair = SmbPair::new(rdma, cfg).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let key = client.create_owned(&ctx, "dw1", 4, None, 1).unwrap();
            p.replicate(&ctx).unwrap();
            assert!(p.standby().segment(key).is_ok());
            assert_eq!(p.standby().lease_owner(key), Some(1));
            // Owner 1 stops heartbeating; the primary evicts, and the next
            // pass mirrors both the deletion and the tombstone.
            ctx.sleep(SimDuration::from_millis(100));
            assert_eq!(p.primary().evict_stale(&ctx), vec![key]);
            p.replicate(&ctx).unwrap();
            assert!(matches!(
                p.standby().segment(key),
                Err(SmbError::LeaseExpired { owner: 1, .. })
            ));
            assert_eq!(p.standby().tombstone_count(), 1);
        });
        sim.run();
    }

    #[test]
    fn promotion_is_idempotent_and_flips_routing() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            assert_eq!(p.role(), ServerRole::Primary);
            assert_eq!(p.active_server(&ctx).node(), p.primary().node());
            assert!(p.promote(&ctx));
            assert!(!p.promote(&ctx), "second promote is a no-op");
            assert_eq!(p.role(), ServerRole::Standby);
            assert_eq!(p.active_server(&ctx).node(), p.standby().node());
        });
        sim.run();
    }

    #[test]
    fn replicator_loop_stops_after_primary_crash() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) };
        let primary_node = NodeId(spec.gpu_nodes);
        let plan = FaultPlan::new(9).crash_memory_server(primary_node, SimTime::from_millis(25));
        let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("replicator", move |ctx| {
            p.run_replicator(&ctx, SimDuration::from_millis(10));
            // Two clean passes (t=10, t=20) before the crash kills the third.
            assert_eq!(p.epoch(), 2);
        });
        // The sim terminates because the loop exits — no stop flag needed.
        sim.run();
    }
}
