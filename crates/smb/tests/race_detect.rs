//! Integration tests for the vector-clock race detector on the SMB data
//! plane (`--features race-detect`).
//!
//! The seeded test deliberately omits the synchronization edge between two
//! workers so their accesses to the shared W_g segment are concurrent; the
//! detector must produce exactly one report naming both access sites. The
//! companion test adds the missing edge and must stay silent.

#![cfg(feature = "race-detect")]

use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{RetryPolicy, ShmKey, SmbClient, SmbPair, SmbServer, SmbServerConfig};

fn setup(nodes: usize) -> SmbServer {
    let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(nodes)));
    SmbServer::new(rdma).unwrap()
}

/// Worker A plain-writes W_g while worker B accumulates into it, with no
/// happens-before edge between A and B: one write/rmw race, reported once,
/// naming both sites.
#[test]
fn seeded_unsynchronized_accumulate_races_with_write() {
    let server = setup(3);
    // Collect reports instead of failing the simulation.
    server.rdma().race_detector().set_halt_on_race(false);

    let to_a = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_a");
    let to_b = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_b");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_a, to_b) = (to_a.clone(), to_b.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw = client.create(&ctx, "dW_1", 8, None).unwrap();
            // Each worker gets a creation->use edge, but there is no edge
            // between the workers themselves.
            to_a.send(&ctx, (wg, dw));
            to_b.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        sim.spawn("worker_a", move |ctx| {
            let (wg_key, _) = to_a.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            client.write(&ctx, &wg, &[1.0; 8]).unwrap();
        });
    }
    {
        let s = server.clone();
        sim.spawn("worker_b", move |ctx| {
            let (wg_key, dw_key) = to_b.recv(&ctx);
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &dw, &[0.5; 8]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
        });
    }
    sim.run();

    let reports = server.rdma().race_detector().reports();
    assert_eq!(reports.len(), 1, "exactly one race expected, got {reports:#?}");
    let r = &reports[0];
    let mut sites = [r.earlier_site, r.later_site];
    sites.sort_unstable();
    assert_eq!(sites, ["smb::client::write", "smb::server::accumulate(dst)"]);
    assert_ne!(r.earlier_pid, r.later_pid);
    // The report formats both sites for the log line.
    let shown = r.to_string();
    assert!(shown.contains("smb::client::write"), "{shown}");
    assert!(shown.contains("smb::server::accumulate(dst)"), "{shown}");
}

/// The same workload with the missing edge restored (A notifies B after its
/// write) is data-race-free: the halting detector stays silent.
#[test]
fn synchronized_accumulate_after_write_is_race_free() {
    let server = setup(3);

    let to_a = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_a");
    let to_b = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_b");
    let a_done = SimChannel::<()>::new("a_done");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_a, to_b) = (to_a.clone(), to_b.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw = client.create(&ctx, "dW_1", 8, None).unwrap();
            to_a.send(&ctx, (wg, dw));
            to_b.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        let a_done = a_done.clone();
        sim.spawn("worker_a", move |ctx| {
            let (wg_key, _) = to_a.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            client.write(&ctx, &wg, &[1.0; 8]).unwrap();
            a_done.send(&ctx, ());
        });
    }
    {
        let s = server.clone();
        sim.spawn("worker_b", move |ctx| {
            let (wg_key, dw_key) = to_b.recv(&ctx);
            a_done.recv(&ctx);
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &dw, &[0.5; 8]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(server.rdma().race_detector().reports().is_empty());
}

/// The full failover path under the halting detector: a worker keeps
/// writing W_g while the replicator mirrors it to the standby, the primary
/// crashes mid-training, and the worker fails over and continues against
/// the standby. The replicate→promote→access happens-before chain (the
/// replicator stamps each pass, promotion joins that stamp, and every
/// post-promotion access joins the promotion stamp) keeps the replicator's
/// plain writes into standby regions ordered before every client access —
/// so the run must stay silent.
#[test]
fn failover_with_promotion_edges_is_race_free() {
    use shmcaffe_simnet::fault::FaultPlan;
    use shmcaffe_simnet::{SimDuration, SimTime};
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    let primary_node = NodeId(spec.gpu_nodes);
    let plan = FaultPlan::new(17).crash_memory_server(primary_node, SimTime::from_millis(10));
    let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
    let pair = SmbPair::new(rdma.clone(), SmbServerConfig::default()).unwrap();

    let to_worker = SimChannel::<ShmKey>::new("wg_key");
    let mut sim = Simulation::new();
    {
        let p = pair.clone();
        let to_worker = to_worker.clone();
        sim.spawn("master", move |ctx| {
            let client = SmbClient::with_failover(p, NodeId(0));
            let key = client.create(&ctx, "W_g", 8, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[0.0; 8]).unwrap();
            to_worker.send(&ctx, key);
        });
    }
    {
        let p = pair.clone();
        sim.spawn("replicator", move |ctx| {
            p.run_replicator(&ctx, SimDuration::from_millis(2));
        });
    }
    {
        let p = pair.clone();
        sim.spawn("worker", move |ctx| {
            let key = to_worker.recv(&ctx);
            let client = SmbClient::with_failover(p.clone(), NodeId(1));
            let policy = RetryPolicy::with_seed(17);
            let buf = client.alloc(&ctx, key).unwrap();
            let mut step = 0.0f32;
            while ctx.now() < SimTime::from_millis(20) {
                step += 1.0;
                client.write_retrying(&ctx, &buf, &[step; 8], &policy).unwrap();
                ctx.sleep(SimDuration::from_millis(1));
            }
            assert!(p.promoted(), "the crash must have forced failover");
            let mut out = [0.0f32; 8];
            client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
            assert_eq!(out, [step; 8]);
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(pair.primary().rdma().race_detector().reports().is_empty());
    assert!(pair.epoch() >= 1, "at least one pass replicated before the crash");
}

/// Seeded missing-edge companion: a client that reaches the standby
/// *directly* — skipping `active_server`'s promotion join, i.e. without the
/// promote→access edge — is concurrent with the replicator's plain write
/// into the mirrored region. The detector must catch exactly that pair,
/// naming the replication apply site.
#[test]
fn seeded_standby_access_without_promotion_edge_is_caught() {
    use shmcaffe_simnet::SimTime;
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    let rdma = RdmaFabric::new(Fabric::new(spec));
    let pair = SmbPair::new(rdma.clone(), SmbServerConfig::default()).unwrap();
    rdma.race_detector().set_halt_on_race(false);

    let to_repl = SimChannel::<ShmKey>::new("key_to_repl");
    let to_rogue = SimChannel::<ShmKey>::new("key_to_rogue");
    let mut sim = Simulation::new();
    {
        let p = pair.clone();
        let (to_repl, to_rogue) = (to_repl.clone(), to_rogue.clone());
        sim.spawn("master", move |ctx| {
            let client = SmbClient::with_failover(p, NodeId(0));
            let key = client.create(&ctx, "W_g", 8, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0; 8]).unwrap();
            to_repl.send(&ctx, key);
            to_rogue.send(&ctx, key);
        });
    }
    {
        let p = pair.clone();
        sim.spawn("replicator", move |ctx| {
            to_repl.recv(&ctx);
            p.replicate(&ctx).unwrap();
        });
    }
    {
        let p = pair.clone();
        sim.spawn("rogue", move |ctx| {
            let key = to_rogue.recv(&ctx);
            // Wait (in sim time only — deliberately no channel, which would
            // create the very happens-before edge this test omits) until
            // the replication pass has installed the mirror.
            ctx.sleep_until(SimTime::from_millis(50));
            // Bind straight to the standby, bypassing the pair's routing
            // and its promotion join.
            let client = SmbClient::new(p.standby().clone(), NodeId(1));
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[2.0; 8]).unwrap();
        });
    }
    sim.run();

    let reports = rdma.race_detector().reports();
    assert_eq!(reports.len(), 1, "exactly one race expected, got {reports:#?}");
    let r = &reports[0];
    let mut sites = [r.earlier_site, r.later_site];
    sites.sort_unstable();
    assert_eq!(sites, ["smb::client::write", "smb::replica::apply"]);
    assert_ne!(r.earlier_pid, r.later_pid);
}

/// Fence-based promotion (no crash): a partition isolates the primary, the
/// majority-side worker waits out the authority lease and promotes the
/// standby, and the minority-side worker is rejected `FencedEpoch`, fails
/// over, refreshes its epoch (joining the promotion winner's fence stamp)
/// and continues after the heal. The fence-acquire→first-fenced-write
/// chain orders every post-fence access after the replicator's plain
/// mirror writes — the run must stay silent under the halting detector.
#[test]
fn fence_acquire_chain_is_race_free() {
    use shmcaffe_simnet::fault::FaultPlan;
    use shmcaffe_simnet::{SimDuration, SimTime};
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    let primary = NodeId(spec.gpu_nodes);
    let standby = NodeId(spec.gpu_nodes + 1);
    // Minority: worker 0 + the primary. Majority: worker 1 + the standby.
    let plan = FaultPlan::new(31).partition(
        vec![vec![NodeId(0), primary], vec![NodeId(1), standby]],
        SimTime::from_millis(20),
        Some(SimTime::from_millis(150)),
    );
    let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
    let cfg =
        SmbServerConfig { authority_timeout: SimDuration::from_millis(40), ..Default::default() };
    let pair = SmbPair::new(rdma.clone(), cfg).unwrap();

    let to_w0 = SimChannel::<ShmKey>::new("key_to_w0");
    let to_w1 = SimChannel::<ShmKey>::new("key_to_w1");
    let mut sim = Simulation::new();
    {
        // Each worker owns its segment (the SEASGD ΔW layout): the fence
        // chain is exercised against the replicator's mirror writes, not
        // against a worker-vs-worker conflict.
        let p = pair.clone();
        let (to_w0, to_w1) = (to_w0.clone(), to_w1.clone());
        sim.spawn("master", move |ctx| {
            let client = SmbClient::with_failover(p, NodeId(0));
            let dw0 = client.create(&ctx, "dW_0", 8, None).unwrap();
            let dw1 = client.create(&ctx, "dW_1", 8, None).unwrap();
            let b0 = client.alloc(&ctx, dw0).unwrap();
            let b1 = client.alloc(&ctx, dw1).unwrap();
            client.write(&ctx, &b0, &[0.0; 8]).unwrap();
            client.write(&ctx, &b1, &[0.0; 8]).unwrap();
            to_w0.send(&ctx, dw0);
            to_w1.send(&ctx, dw1);
        });
    }
    {
        let p = pair.clone();
        sim.spawn("replicator", move |ctx| {
            p.run_replicator(&ctx, SimDuration::from_millis(10));
        });
    }
    {
        // Majority side: observes the severed path + expired lease,
        // promotes the standby (acquiring the fence) and writes there.
        let p = pair.clone();
        sim.spawn("worker_majority", move |ctx| {
            let key = to_w1.recv(&ctx);
            let client = SmbClient::with_failover(p.clone(), NodeId(1));
            let buf = client.alloc(&ctx, key).unwrap();
            ctx.sleep_until(SimTime::from_millis(70));
            let policy = RetryPolicy::with_seed(31);
            client.write_retrying(&ctx, &buf, &[1.0; 8], &policy).unwrap();
            assert!(p.promoted(), "lease expiry must have legalized promotion");
        });
    }
    {
        // Minority side: its first post-promotion mutation is fenced,
        // which routes it through fail_over + epoch refresh; it finishes
        // its write on the standby once the partition heals.
        let p = pair.clone();
        sim.spawn("worker_minority", move |ctx| {
            let key = to_w0.recv(&ctx);
            let client = SmbClient::with_failover(p.clone(), NodeId(0));
            let buf = client.alloc(&ctx, key).unwrap();
            ctx.sleep_until(SimTime::from_millis(160));
            let policy = RetryPolicy::with_seed(32);
            client.write_retrying(&ctx, &buf, &[2.0; 8], &policy).unwrap();
            assert_eq!(client.carried_epoch(), 2);
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(rdma.race_detector().reports().is_empty());
    assert!(pair.promoted());
}

/// Seeded missing-fence companion: after the fence-based promotion, a
/// rogue client binds straight to the standby and plain-writes a mirrored
/// segment without ever refreshing an epoch or joining the fence stamp —
/// concurrent with the replicator's mirror write into that region. The
/// detector must catch exactly that pair.
#[test]
fn seeded_write_without_fence_join_is_caught() {
    use shmcaffe_simnet::fault::FaultPlan;
    use shmcaffe_simnet::{SimDuration, SimTime};
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    let primary = NodeId(spec.gpu_nodes);
    let standby = NodeId(spec.gpu_nodes + 1);
    let plan = FaultPlan::new(37).partition(
        vec![vec![NodeId(0), primary], vec![NodeId(1), standby]],
        SimTime::from_millis(20),
        Some(SimTime::from_millis(150)),
    );
    let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
    let cfg =
        SmbServerConfig { authority_timeout: SimDuration::from_millis(40), ..Default::default() };
    let pair = SmbPair::new(rdma.clone(), cfg).unwrap();
    rdma.race_detector().set_halt_on_race(false);

    let to_w1 = SimChannel::<ShmKey>::new("wg_to_w1");
    let to_rogue = SimChannel::<ShmKey>::new("ckpt_to_rogue");
    let mut sim = Simulation::new();
    {
        let p = pair.clone();
        let (to_w1, to_rogue) = (to_w1.clone(), to_rogue.clone());
        sim.spawn("master", move |ctx| {
            let client = SmbClient::with_failover(p, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let ckpt = client.create(&ctx, "ckpt", 8, None).unwrap();
            let wg_buf = client.alloc(&ctx, wg).unwrap();
            let ckpt_buf = client.alloc(&ctx, ckpt).unwrap();
            client.write(&ctx, &wg_buf, &[0.0; 8]).unwrap();
            client.write(&ctx, &ckpt_buf, &[0.5; 8]).unwrap();
            to_w1.send(&ctx, wg);
            to_rogue.send(&ctx, ckpt);
        });
    }
    {
        let p = pair.clone();
        sim.spawn("replicator", move |ctx| {
            p.run_replicator(&ctx, SimDuration::from_millis(10));
        });
    }
    {
        let p = pair.clone();
        sim.spawn("worker_majority", move |ctx| {
            let key = to_w1.recv(&ctx);
            let client = SmbClient::with_failover(p.clone(), NodeId(1));
            let buf = client.alloc(&ctx, key).unwrap();
            ctx.sleep_until(SimTime::from_millis(70));
            let policy = RetryPolicy::with_seed(37);
            client.write_retrying(&ctx, &buf, &[1.0; 8], &policy).unwrap();
            assert!(p.promoted());
        });
    }
    {
        let p = pair.clone();
        sim.spawn("rogue", move |ctx| {
            let key = to_rogue.recv(&ctx);
            // Wait in sim time only — no channel from the promoter, no
            // fail_over, no epoch refresh: every fence edge is missing.
            ctx.sleep_until(SimTime::from_millis(100));
            let client = SmbClient::new(p.standby().clone(), NodeId(1));
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[7.0; 8]).unwrap();
        });
    }
    sim.run();

    let reports = rdma.race_detector().reports();
    assert_eq!(reports.len(), 1, "exactly one race expected, got {reports:#?}");
    let r = &reports[0];
    let mut sites = [r.earlier_site, r.later_site];
    sites.sort_unstable();
    assert_eq!(sites, ["smb::client::write", "smb::replica::apply"]);
    assert_ne!(r.earlier_pid, r.later_pid);
}

/// The chunked-exchange handoff pattern (DESIGN.md §5g): a mixer process
/// plain-writes ΔW one tile at a time and announces each finished tile
/// over a channel; the pusher accumulates exactly the announced tile into
/// W_g. Every per-tile channel send→recv is the happens-before edge that
/// orders the mixer's `write_range` before the pusher's range-accumulate
/// read of the same tile — the chain must be silent under the halting
/// detector, even while tile k+1 is being written concurrently with tile
/// k's accumulate.
#[test]
fn per_chunk_channel_edges_make_the_tile_chain_race_free() {
    let server = setup(3);

    let to_mixer = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_mixer");
    let to_pusher = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_pusher");
    let tile_ready = SimChannel::<usize>::new("tile_ready");
    const TILES: usize = 4;
    const TILE: usize = 2;

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_mixer, to_pusher) = (to_mixer.clone(), to_pusher.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", TILES * TILE, None).unwrap();
            let dw = client.create(&ctx, "dW", TILES * TILE, None).unwrap();
            to_mixer.send(&ctx, (wg, dw));
            to_pusher.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        let tile_ready = tile_ready.clone();
        sim.spawn("mixer", move |ctx| {
            let (_, dw_key) = to_mixer.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let policy = RetryPolicy::with_seed(41);
            for tile in 0..TILES {
                let data = [tile as f32 + 1.0; TILE];
                client.write_range_retrying(&ctx, &dw, tile * TILE, &data, &policy).unwrap();
                tile_ready.send(&ctx, tile);
            }
        });
    }
    {
        let s = server.clone();
        sim.spawn("pusher", move |ctx| {
            let (wg_key, dw_key) = to_pusher.recv(&ctx);
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let policy = RetryPolicy::with_seed(42);
            for _ in 0..TILES {
                let tile = tile_ready.recv(&ctx);
                client
                    .accumulate_range_retrying(&ctx, &dw, &wg, tile * TILE, TILE, &policy)
                    .unwrap();
            }
            let mut out = [0.0f32; TILES * TILE];
            client.read(&ctx, &wg, &mut out).unwrap();
            assert_eq!(out, [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(server.rdma().race_detector().reports().is_empty());
}

/// Seeded missing-edge companion: the pusher accumulates the tile after a
/// sim-time sleep instead of the channel recv. The mixer's plain
/// `write_range` of that tile and the accumulate's source read are now
/// concurrent — the detector must catch exactly that pair, naming the
/// range sites.
#[test]
fn seeded_missing_per_chunk_edge_is_caught() {
    let server = setup(3);
    server.rdma().race_detector().set_halt_on_race(false);

    let to_mixer = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_mixer");
    let to_pusher = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_pusher");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_mixer, to_pusher) = (to_mixer.clone(), to_pusher.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw = client.create(&ctx, "dW", 8, None).unwrap();
            to_mixer.send(&ctx, (wg, dw));
            to_pusher.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        sim.spawn("mixer", move |ctx| {
            let (_, dw_key) = to_mixer.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let policy = RetryPolicy::with_seed(43);
            client.write_range_retrying(&ctx, &dw, 0, &[1.0; 4], &policy).unwrap();
        });
    }
    {
        let s = server.clone();
        sim.spawn("pusher", move |ctx| {
            use shmcaffe_simnet::SimTime;
            let (wg_key, dw_key) = to_pusher.recv(&ctx);
            // Sleep in sim time only — deliberately no channel recv, so the
            // per-tile happens-before edge is missing.
            ctx.sleep_until(SimTime::from_millis(50));
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let policy = RetryPolicy::with_seed(44);
            client.accumulate_range_retrying(&ctx, &dw, &wg, 0, 4, &policy).unwrap();
        });
    }
    sim.run();

    let reports = server.rdma().race_detector().reports();
    assert_eq!(reports.len(), 1, "exactly one race expected, got {reports:#?}");
    let r = &reports[0];
    let mut sites = [r.earlier_site, r.later_site];
    sites.sort_unstable();
    assert_eq!(sites, ["smb::client::write_range_retrying", "smb::server::accumulate_range(src)"]);
    assert_ne!(r.earlier_pid, r.later_pid);
}

/// Disjoint tiles need no edge at all: the detector's footprints are
/// range-precise, so an un-synchronized accumulate of tile B while tile A
/// is being written is not a conflict.
#[test]
fn disjoint_tiles_without_edges_are_race_free() {
    let server = setup(3);

    let to_mixer = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_mixer");
    let to_pusher = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_pusher");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_mixer, to_pusher) = (to_mixer.clone(), to_pusher.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw = client.create(&ctx, "dW", 8, None).unwrap();
            to_mixer.send(&ctx, (wg, dw));
            to_pusher.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        sim.spawn("mixer", move |ctx| {
            let (_, dw_key) = to_mixer.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let policy = RetryPolicy::with_seed(45);
            client.write_range_retrying(&ctx, &dw, 0, &[1.0; 4], &policy).unwrap();
        });
    }
    {
        let s = server.clone();
        sim.spawn("pusher", move |ctx| {
            let (wg_key, dw_key) = to_pusher.recv(&ctx);
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let policy = RetryPolicy::with_seed(46);
            // Tile [4, 8) — disjoint from the mixer's [0, 4).
            client.accumulate_range_retrying(&ctx, &dw, &wg, 4, 4, &policy).unwrap();
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(server.rdma().race_detector().reports().is_empty());
}

/// The corruption-repair chain (DESIGN.md §5j) under the halting
/// detector: the master seeds W_g, replicates it, and poisons one page; a
/// worker's retrying read detects the bad CRC and repairs the page from
/// the standby (the repair joins the replication stamp, ordering the
/// mirror's plain write before the repair's source read, and the install
/// itself is an engine-serialized rmw); a third client plain-writes the
/// repaired segment only after the worker's channel notification. Every
/// conflicting pair is ordered — the run must stay silent.
#[test]
fn repair_chain_with_client_edges_is_race_free() {
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    let rdma = RdmaFabric::new(Fabric::new(spec));
    let cfg = SmbServerConfig { page_elems: 4, ..SmbServerConfig::default() };
    let pair = SmbPair::new(rdma.clone(), cfg).unwrap();

    let to_worker = SimChannel::<ShmKey>::new("key_to_worker");
    let to_writer = SimChannel::<ShmKey>::new("key_to_writer");
    let repaired = SimChannel::<()>::new("repaired");
    let mut sim = Simulation::new();
    {
        let p = pair.clone();
        let (to_worker, to_writer) = (to_worker.clone(), to_writer.clone());
        sim.spawn("master", move |ctx| {
            let client = SmbClient::with_failover(p.clone(), NodeId(0));
            let key = client.create(&ctx, "W_g", 8, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0; 8]).unwrap();
            p.replicate(&ctx).unwrap();
            p.primary().inject_bit_flip(key, 1, 3).unwrap();
            assert_eq!(p.primary().scrub_pass(&ctx), 1);
            to_worker.send(&ctx, key);
            to_writer.send(&ctx, key);
        });
    }
    {
        let p = pair.clone();
        let repaired = repaired.clone();
        sim.spawn("worker", move |ctx| {
            let key = to_worker.recv(&ctx);
            let client = SmbClient::with_failover(p.clone(), NodeId(1));
            let buf = client.alloc(&ctx, key).unwrap();
            let policy = RetryPolicy::with_seed(53);
            let mut out = [0.0f32; 8];
            client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
            assert_eq!(out, [1.0; 8], "the repaired read must return the mirrored bytes");
            assert_eq!(p.repairs_completed(), 1);
            let fs = client.fault_stats();
            assert_eq!((fs.corruptions_detected, fs.corruptions_repaired), (1, 1));
            repaired.send(&ctx, ());
        });
    }
    {
        let p = pair.clone();
        sim.spawn("writer", move |ctx| {
            let key = to_writer.recv(&ctx);
            // The repair's page install is an engine-serialized rmw; this
            // plain write needs (and gets) the repaired→write edge.
            repaired.recv(&ctx);
            let client = SmbClient::with_failover(p, NodeId(0));
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[2.0; 8]).unwrap();
            let mut out = [0.0f32; 8];
            client.read(&ctx, &buf, &mut out).unwrap();
            assert_eq!(out, [2.0; 8]);
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(rdma.race_detector().reports().is_empty());
    assert_eq!(pair.repairs_completed(), 1);
}

/// Seeded missing-edge companion: a rogue client plain-writes the segment
/// while a repair daemon re-installs its poisoned page, with no channel
/// edge between them. The install is recorded as an engine-serialized rmw
/// at `smb::replica::repair`, so the concurrent plain write is exactly one
/// race, naming the repair site.
#[test]
fn seeded_plain_write_concurrent_with_repair_is_caught() {
    use shmcaffe_simnet::SimTime;
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    let rdma = RdmaFabric::new(Fabric::new(spec));
    let cfg = SmbServerConfig { page_elems: 4, ..SmbServerConfig::default() };
    let pair = SmbPair::new(rdma.clone(), cfg).unwrap();
    rdma.race_detector().set_halt_on_race(false);

    let to_daemon = SimChannel::<ShmKey>::new("key_to_daemon");
    let to_rogue = SimChannel::<ShmKey>::new("key_to_rogue");
    let mut sim = Simulation::new();
    {
        let p = pair.clone();
        let (to_daemon, to_rogue) = (to_daemon.clone(), to_rogue.clone());
        sim.spawn("master", move |ctx| {
            let client = SmbClient::with_failover(p.clone(), NodeId(0));
            let key = client.create(&ctx, "W_g", 8, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0; 8]).unwrap();
            p.replicate(&ctx).unwrap();
            p.primary().inject_bit_flip(key, 1, 3).unwrap();
            assert_eq!(p.primary().scrub_pass(&ctx), 1);
            to_daemon.send(&ctx, key);
            to_rogue.send(&ctx, key);
        });
    }
    {
        let p = pair.clone();
        sim.spawn("repair_daemon", move |ctx| {
            let key = to_daemon.recv(&ctx);
            p.repair_page(&ctx, key, 0).unwrap();
        });
    }
    {
        let p = pair.clone();
        sim.spawn("rogue", move |ctx| {
            let key = to_rogue.recv(&ctx);
            // Wait in sim time only — deliberately no channel from the
            // daemon, so the repair's install and this plain write are
            // concurrent in vector-clock terms.
            ctx.sleep_until(SimTime::from_millis(50));
            let client = SmbClient::with_failover(p, NodeId(1));
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[3.0; 8]).unwrap();
        });
    }
    sim.run();

    let reports = rdma.race_detector().reports();
    assert_eq!(reports.len(), 1, "exactly one race expected, got {reports:#?}");
    let r = &reports[0];
    let mut sites = [r.earlier_site, r.later_site];
    sites.sort_unstable();
    assert_eq!(sites, ["smb::client::write", "smb::replica::repair"]);
    assert_ne!(r.earlier_pid, r.later_pid);
}

/// Two engine-serialized accumulates from unsynchronized workers are
/// atomic read-modify-writes, not a race (paper T.A3: the DRAM bus
/// processes accumulate requests exclusively).
#[test]
fn concurrent_accumulates_are_not_reported() {
    let server = setup(3);

    let to_a = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_a");
    let to_b = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_b");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_a, to_b) = (to_a.clone(), to_b.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw_a = client.create(&ctx, "dW_a", 8, None).unwrap();
            let dw_b = client.create(&ctx, "dW_b", 8, None).unwrap();
            to_a.send(&ctx, (wg, dw_a));
            to_b.send(&ctx, (wg, dw_b));
        });
    }
    for (name, node, ch) in [("worker_a", 1, to_a.clone()), ("worker_b", 2, to_b.clone())] {
        let s = server.clone();
        sim.spawn(name, move |ctx| {
            let (wg_key, dw_key) = ch.recv(&ctx);
            let client = SmbClient::new(s, NodeId(node));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &dw, &[0.25; 8]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
        });
    }
    sim.run();
    assert!(server.rdma().race_detector().reports().is_empty());
}
