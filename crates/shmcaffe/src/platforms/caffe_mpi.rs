//! The Inspur Caffe-MPI (v1.0) baseline: star-topology SSGD over MPI.
//!
//! "Master worker maintains parameter exchange threads of the number of
//! slave workers, and each slave worker maintains a single parameter
//! exchange thread (star-topology geometry). The master worker gathers the
//! computed gradients by slave workers, takes the average of them, updates
//! master weights, and finally distributes the updated master weights to
//! slave workers" (paper §IV-C).
//!
//! MPI send/recv pays the memory-copy and protocol-processing overhead that
//! ShmCaffe's RDMA path eliminates (the paper's central claim); the
//! [`crate::config::BaselineConfig::mpi_efficiency`] factor models it by
//! inflating the wire size of MPI transfers.

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_mpi::{MpiData, MpiWorld};
use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
use shmcaffe_simnet::{SimDuration, Simulation};

use crate::report::{EvalPoint, TrainingReport, WorkerReport};
use crate::trainer::{Trainer, TrainerFactory};
use crate::PlatformError;

use super::caffe::SsgdConfig;
use super::run_sim;

const TAG_GRADS: u32 = 100;
const TAG_WEIGHTS: u32 = 101;

/// Throughput of the master's gradient-averaging pass (memory bound).
const AVG_BPS: f64 = 10.0e9;

/// Caffe-MPI: rank 0 is the master (it also computes gradients), all other
/// ranks are slaves.
#[derive(Debug, Clone)]
pub struct CaffeMpi {
    spec: ClusterSpec,
    workers: usize,
    cfg: SsgdConfig,
}

impl CaffeMpi {
    /// Configures the platform.
    pub fn new(spec: ClusterSpec, workers: usize, cfg: SsgdConfig) -> Self {
        CaffeMpi { spec, workers, cfg }
    }

    /// Runs SSGD training and returns the fleet report.
    ///
    /// # Errors
    ///
    /// Returns configuration errors or any propagated worker failure.
    pub fn run<F: TrainerFactory>(&self, factory: F) -> Result<TrainingReport, PlatformError> {
        if self.workers == 0 || self.workers > self.spec.total_gpus() {
            return Err(PlatformError::BadConfig(format!(
                "{} workers do not fit {} GPU slots",
                self.workers,
                self.spec.total_gpus()
            )));
        }
        if self.cfg.max_iters == 0 {
            return Err(PlatformError::BadConfig("max_iters must be positive".into()));
        }
        let spec = ClusterSpec { memory_servers: 0, ..self.spec };
        let fabric = Fabric::new(spec);
        let mpi = MpiWorld::new(fabric, self.workers);
        let factory = Arc::new(factory);
        let cfg = self.cfg;
        let n = self.workers;
        let report = Arc::new(Mutex::new(TrainingReport::new("Caffe-MPI", n)));

        let mut sim = Simulation::new();
        for rank in 0..n {
            let mut comm = mpi.comm(rank);
            let factory = Arc::clone(&factory);
            let report = Arc::clone(&report);
            sim.spawn(&format!("caffempi_r{rank}"), move |ctx| {
                let ctx = &ctx;
                let mut trainer = factory.make(rank, n);
                let param_len = trainer.param_len();
                let wire_eff = (trainer.wire_bytes() as f64 / cfg.baseline.mpi_efficiency) as u64;
                let mut grads = vec![0.0f32; param_len];
                let mut weights = vec![0.0f32; param_len];
                let mut wrep = WorkerReport::new(rank);
                let mut evals = Vec::new();
                let mut loss_ema = f32::NAN;

                for iter in 1..=cfg.max_iters as u64 {
                    let comp_start = ctx.now();
                    let loss = trainer.compute_gradients(ctx);
                    let mut comp = ctx.now() - comp_start;

                    let comm_start = ctx.now();
                    if rank == 0 {
                        // Gather: sum slave gradients into the master's.
                        trainer.read_grads(&mut grads);
                        for _ in 1..n {
                            let (_, slave_grads) = comm.recv_f32s(ctx, None, TAG_GRADS);
                            for (g, s) in grads.iter_mut().zip(slave_grads.iter()) {
                                *g += s;
                            }
                        }
                        // Average (memory-bound pass over (n-1) buffers).
                        let inv = 1.0 / n as f32;
                        for g in grads.iter_mut() {
                            *g *= inv;
                        }
                        if n > 1 {
                            let avg_bytes = trainer.wire_bytes() * (n as u64 - 1);
                            ctx.sleep(SimDuration::from_secs_f64(avg_bytes as f64 / AVG_BPS));
                        }
                        trainer.write_grads(&grads);
                        let comm_gather = ctx.now() - comm_start;

                        // Master update (counts as computation).
                        let upd_start = ctx.now();
                        trainer.apply_update(ctx);
                        comp += ctx.now() - upd_start;

                        // Scatter the updated weights.
                        let scatter_start = ctx.now();
                        trainer.read_weights(&mut weights);
                        for dst in 1..n {
                            comm.send_wire(
                                ctx,
                                dst,
                                TAG_WEIGHTS,
                                MpiData::F32s(weights.clone()),
                                wire_eff,
                            );
                        }
                        wrep.comm_ms.record_duration_ms(comm_gather + (ctx.now() - scatter_start));
                    } else {
                        trainer.read_grads(&mut grads);
                        comm.send_wire(ctx, 0, TAG_GRADS, MpiData::F32s(grads.clone()), wire_eff);
                        let (_, new_weights) = comm.recv_f32s(ctx, Some(0), TAG_WEIGHTS);
                        trainer.write_weights(&new_weights);
                        wrep.comm_ms.record_duration_ms(ctx.now() - comm_start);
                    }
                    wrep.comp_ms.record_duration_ms(comp);
                    loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };

                    if rank == 0 && cfg.eval_every > 0 && iter % cfg.eval_every as u64 == 0 {
                        if let Some(sample) = trainer.evaluate() {
                            evals.push(EvalPoint {
                                iter,
                                time: ctx.now(),
                                loss: sample.loss,
                                top1: sample.top1,
                                topk: sample.topk,
                            });
                        }
                    }
                }

                wrep.iters = cfg.max_iters as u64;
                wrep.finished_at = ctx.now();
                wrep.final_loss = loss_ema;
                let mut report = report.lock();
                report.workers[rank] = wrep;
                if rank == 0 {
                    report.evals = evals;
                    let mut final_w = vec![0.0f32; param_len];
                    trainer.read_weights(&mut final_w);
                    report.final_weights = Some(final_w);
                }
            });
        }

        let wall = run_sim(sim)?;
        let mut final_report =
            Arc::try_unwrap(report).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        final_report.wall = wall;
        Ok(final_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModeledTrainerFactory;
    use shmcaffe_models::{CnnModel, WorkloadModel};
    use shmcaffe_simnet::jitter::JitterModel;

    fn factory() -> ModeledTrainerFactory {
        ModeledTrainerFactory::new(
            WorkloadModel::from_cnn(CnnModel::InceptionV1),
            JitterModel::NONE,
            5,
        )
    }

    #[test]
    fn sixteen_workers_run_and_master_dominates_comm() {
        let report = CaffeMpi::new(
            ClusterSpec::paper_testbed(4),
            16,
            SsgdConfig { max_iters: 5, ..Default::default() },
        )
        .run(factory())
        .unwrap();
        assert_eq!(report.workers.len(), 16);
        // Every worker pays substantial communication: the master's single
        // HCA serialises 15 gradient receives + 15 weight sends.
        assert!(report.mean_comm_ms() > 300.0, "comm {}", report.mean_comm_ms());
        for w in &report.workers {
            assert_eq!(w.iters, 5);
        }
    }

    #[test]
    fn star_costs_more_than_computation_at_scale() {
        // The comm/comp inversion the paper attributes to Caffe-MPI.
        let report = CaffeMpi::new(
            ClusterSpec::paper_testbed(4),
            16,
            SsgdConfig { max_iters: 3, ..Default::default() },
        )
        .run(factory())
        .unwrap();
        assert!(report.mean_comm_ms() > report.mean_comp_ms());
    }

    #[test]
    fn single_worker_degenerates_to_local_sgd() {
        let report = CaffeMpi::new(
            ClusterSpec::paper_testbed(1),
            1,
            SsgdConfig { max_iters: 4, ..Default::default() },
        )
        .run(factory())
        .unwrap();
        assert!(report.mean_comm_ms() < 1.0);
    }
}
