//! Dense f32 tensor algebra for the ShmCaffe reproduction.
//!
//! This crate is the computational substrate that stands in for the
//! CUDA/cuDNN kernels used by Caffe in the original paper. It provides:
//!
//! * [`Tensor`] — a row-major dense f32 tensor with shape metadata,
//! * [`gemm`] — single-precision general matrix multiply (the workhorse of
//!   inner-product and im2col-based convolution layers),
//! * [`conv`] — im2col/col2im and 2-D convolution forward/backward,
//! * [`pool`] — max/average pooling forward/backward,
//! * [`ops`] — element-wise and BLAS-1 style vector operations (`axpy`,
//!   `scal`, `dot`, activations),
//! * [`init`] — seeded weight initialisation (Gaussian, Xavier, MSRA).
//!
//! Everything is deterministic given a seed and there is no external BLAS
//! dependency. Hot kernels run on a persistent crate-level worker pool
//! ([`parallel`], sized by `SHMCAFFE_THREADS`) with **fixed split points**,
//! so results are bit-identical at any thread count, and draw scratch from
//! reusable per-thread [`workspace`] arenas so steady-state forward/backward
//! allocates nothing. The only unsafe code in the crate is three audited
//! sites, all in `gemm.rs`/`parallel.rs`: the lifetime-erasure in the
//! pool's dispatch path, the `SliceParts` disjoint-range writer the fixed
//! tile grids borrow output through, and the feature-gated AVX2
//! recompilation of the gemm micro-kernel (guarded by runtime detection,
//! same IEEE operation order).
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_tensor::{Tensor, gemm::{gemm, Transpose}};
//!
//! # fn main() -> Result<(), shmcaffe_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
//! let mut c = Tensor::zeros(&[2, 2]);
//! gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, a.data(), b.data(), 0.0, c.data_mut());
//! assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
mod error;
pub mod gemm;
pub mod init;
pub mod ops;
pub mod parallel;
pub mod pool;
mod shape;
pub mod softmax;
mod tensor;
pub mod workspace;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
