//! Property tests for the RDMA layer: region isolation, bounds and
//! offset-window correctness under arbitrary access patterns.

use parking_lot::Mutex;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use shmcaffe_rdma::{RdmaError, RdmaFabric};
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use std::sync::Arc;

fn fabric() -> RdmaFabric {
    RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(2)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writes at arbitrary offsets land exactly where addressed and do not
    /// disturb the rest of the region.
    #[test]
    fn offset_writes_are_isolated(
        region_len in 1usize..64,
        writes in pvec((0usize..64, pvec(-100.0f32..100.0, 1..16)), 0..8),
    ) {
        let rdma = fabric();
        let mr = rdma.register(NodeId(1), region_len).unwrap();
        let mut model = vec![0.0f32; region_len];
        let result: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&result);
        let rd = rdma.clone();
        let writes2 = writes.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            for (offset, data) in &writes2 {
                let _ = rd.write(&ctx, NodeId(0), &mr, *offset, data);
            }
            let mut out = vec![0.0f32; region_len];
            rd.read(&ctx, NodeId(0), &mr, 0, &mut out).unwrap();
            *r2.lock() = out;
        });
        sim.run();
        // Replay the same writes on a plain vector, skipping out-of-bounds
        // ones exactly as the RDMA layer rejects them.
        for (offset, data) in &writes {
            if offset + data.len() <= region_len {
                model[*offset..offset + data.len()].copy_from_slice(data);
            }
        }
        prop_assert_eq!(result.lock().clone(), model);
    }

    /// Every out-of-bounds window is rejected with OutOfBounds; every
    /// in-bounds window round-trips.
    #[test]
    fn bounds_are_enforced(region_len in 1usize..32, offset in 0usize..40, len in 1usize..40) {
        let rdma = fabric();
        let mr = rdma.register(NodeId(0), region_len).unwrap();
        let ok: Arc<Mutex<Option<Result<(), RdmaError>>>> = Arc::new(Mutex::new(None));
        let ok2 = Arc::clone(&ok);
        let rd = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let data = vec![1.0f32; len];
            let r = rd.write(&ctx, NodeId(1), &mr, offset, &data).map(|_| ());
            *ok2.lock() = Some(r);
        });
        sim.run();
        let got = ok.lock().clone().expect("ran");
        if offset + len <= region_len {
            prop_assert!(got.is_ok());
        } else {
            let oob = matches!(got, Err(RdmaError::OutOfBounds { .. }));
            prop_assert!(oob);
        }
    }

    /// Distinct regions never alias, whatever the allocation order.
    #[test]
    fn regions_do_not_alias(lens in pvec(1usize..16, 2..6), seed in 0u32..100) {
        let rdma = fabric();
        let regions: Vec<_> = lens
            .iter()
            .map(|&l| rdma.register(NodeId(1), l).unwrap())
            .collect();
        let rd = rdma.clone();
        let regions2 = regions.clone();
        let all_ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
        let ok2 = Arc::clone(&all_ok);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            // Fill region k with the value k+seed, then verify all.
            for (k, mr) in regions2.iter().enumerate() {
                let v = (k as f32) + (seed as f32) * 0.5;
                let data = vec![v; mr.len];
                rd.write(&ctx, NodeId(0), mr, 0, &data).unwrap();
            }
            let mut good = true;
            for (k, mr) in regions2.iter().enumerate() {
                let v = (k as f32) + (seed as f32) * 0.5;
                let mut out = vec![0.0f32; mr.len];
                rd.read(&ctx, NodeId(0), mr, 0, &mut out).unwrap();
                good &= out.iter().all(|&x| x == v);
            }
            *ok2.lock() = good;
        });
        sim.run();
        prop_assert!(*all_ok.lock());
    }
}
