use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use shmcaffe_rdma::{MemoryRegion, RdmaFabric};
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::resource::{BandwidthResource, LinkModel};
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::{SimContext, SimDuration, SimTime};

use crate::crc::crc32c_f32;
use crate::SmbError;

/// The shared-memory generation key the master broadcasts (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShmKey(pub u64);

impl fmt::Display for ShmKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm:{}", self.0)
    }
}

/// Tunable parameters of the SMB server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmbServerConfig {
    /// Effective bandwidth of the memory server's DRAM bus in bytes/s
    /// (E5-2609 v2 + DDR3-1866: ~15 GB/s practical). Every byte RDMA'd in
    /// or out of a shared segment crosses this bus once (DMA), and the
    /// accumulate engine crosses it three times per byte (read ΔW, read
    /// W_g, write W_g). At scale this bus — not the 7 GB/s HCA — is the
    /// contended resource, which is what drives the paper's communication
    /// ratios (Table V: ResNet_50 56% at 16 workers).
    pub memory_bps: f64,
    /// One-way latency of a control message (allocation requests,
    /// accumulate requests, notifications).
    pub control_latency: SimDuration,
    /// Per-stream bandwidth of one client's RDMA read/write to the server,
    /// in bytes/s. The SMB transport (derived from the kernel RDS module)
    /// cannot saturate the 7 GB/s HCA from a single connection; aggregate
    /// bandwidth therefore *grows* with the process count until the HCA
    /// saturates, reproducing the shape of Fig. 7. Calibrated so ~4-8
    /// concurrent processes reach the ~6.7 GB/s aggregate ceiling.
    pub stream_bps: f64,
    /// Wire overhead fraction of the SMB transport (RDS headers, control
    /// traffic). The paper measures 6.7 GB/s of *payload* through the
    /// 7 GB/s HCA — 96% efficiency — so 4.5% of the wire carries protocol.
    pub protocol_overhead: f64,
    /// How long an owned segment survives without a heartbeat from its
    /// owner before [`SmbServer::evict_stale`] reclaims it. Crashed workers
    /// stop heartbeating, so their ΔW segments are evicted and survivors
    /// keep training (crash-tolerant SEASGD).
    pub lease_timeout: SimDuration,
    /// How long an eviction tombstone is kept after the lease expired.
    /// Tombstones let lookups of a reclaimed key report
    /// [`SmbError::LeaseExpired`] instead of a bare unknown key; they are
    /// garbage-collected once the lapsed owner acknowledges the eviction
    /// ([`SmbServer::ack_eviction`]) or after this horizon, whichever comes
    /// first, so the table stays bounded over long runs.
    pub tombstone_horizon: SimDuration,
    /// How long the primary's write authority lasts without a successful
    /// replication pass renewing it. While the lease is live, promotion of
    /// the standby is illegal (the primary may still be accepting writes
    /// on the other side of a partition); once it has demonstrably
    /// expired, the standby may fence the old epoch and take over. Must
    /// comfortably exceed the replication interval or a healthy pair
    /// would fence its own primary.
    pub authority_timeout: SimDuration,
    /// Page size of the CRC-guarded integrity grid, in f32 elements. `0`
    /// disables integrity tracking entirely (the default): segments carry
    /// no per-page checksums and reads are served unverified, matching the
    /// paper's deployment where InfiniBand's hardware ICRC is trusted
    /// end-to-end. When enabled, every segment is divided into fixed pages
    /// of this many elements (last page possibly short); each mutation
    /// refreshes the checksums of the pages it touches, and every read is
    /// verified before its bytes are served.
    pub page_elems: usize,
    /// Virtual-time cadence of the background scrubber
    /// ([`SmbServer::run_scrubber`]): one full walk of every segment's
    /// page grid per interval, poisoning pages whose contents no longer
    /// match their recorded CRC (silent DRAM decay). `SimDuration::ZERO`
    /// (the default) disables the scrubber; corruption is then only found
    /// lazily, when a read or mutation verifies the page.
    pub scrub_interval: SimDuration,
}

impl Default for SmbServerConfig {
    fn default() -> Self {
        SmbServerConfig {
            memory_bps: 15.0e9,
            control_latency: SimDuration::from_micros(5),
            stream_bps: 1.5e9,
            protocol_overhead: 0.045,
            lease_timeout: SimDuration::from_millis(500),
            tombstone_horizon: SimDuration::from_secs(10),
            authority_timeout: SimDuration::from_millis(500),
            page_elems: 0,
            scrub_interval: SimDuration::ZERO,
        }
    }
}

/// Start offset and length (both in elements) of page `page` in a segment
/// of `elems` elements under page size `pe`. The last page may be short.
fn page_span(pe: usize, elems: usize, page: usize) -> (usize, usize) {
    let start = page * pe;
    (start, pe.min(elems - start))
}

/// Memory-bus passes per byte of a server-side accumulate: read ΔW, read
/// W_g, write W_g.
const ACCUMULATE_MEM_PASSES: u64 = 3;

/// Pseudo-region id for exploration footprints on control-plane state that
/// has no backing memory region. High-bit tagged so it can never collide
/// with an rkey (rkeys are small sequential integers). `salt` names the
/// table ("smb.stream", "smb.version", …), `key` the row.
pub(crate) fn pseudo_region(salt: &str, key: u64) -> u64 {
    let mut h = shmcaffe_simnet::explore::Fnv::new();
    h.write_bytes(salt.as_bytes());
    h.write_u64(key);
    h.finish() | (1 << 63)
}

#[derive(Debug, Clone)]
struct Segment {
    mr: MemoryRegion,
    /// Modelled wire size of a full-segment transfer, in bytes.
    wire_bytes: u64,
    name: String,
    version: u64,
    /// CRC32C per fixed-size page (empty when the integrity grid is off).
    /// Records the *intended* contents: writers refresh it from the data
    /// they meant to land, so a torn wire delivery leaves a recorded CRC
    /// that the actual bytes can no longer match.
    page_crcs: Vec<u32>,
    /// Pages that failed verification. A poisoned page is refused to every
    /// read and mutation until a repair
    /// ([`crate::SmbPair::repair_page`]) re-installs clean bytes — repair
    /// is the *only* way poison clears, so undetected damage can never be
    /// laundered back into a valid checksum by a later partial write.
    poisoned: BTreeSet<usize>,
    /// Creator's vector-clock stamp, joined into every allocator — the
    /// creation→allocation happens-before edge (the SHM-key handshake of
    /// paper Fig. 2 is a control-plane round trip).
    #[cfg(feature = "race-detect")]
    created: shmcaffe_simnet::race::VectorClock,
}

/// Heartbeat state for an owned segment.
#[derive(Debug, Clone)]
struct Lease {
    owner: usize,
    last_heartbeat: SimTime,
    /// The owner's stamp at its last heartbeat, joined into whoever evicts
    /// the lease — the lease release/eviction happens-before edge.
    #[cfg(feature = "race-detect")]
    stamp: shmcaffe_simnet::race::VectorClock,
}

/// Marker left behind when a lease expires, so later lookups of the dead
/// key can report *why* it vanished. Bounded: reaped by
/// [`SmbServer::ack_eviction`] or after
/// [`SmbServerConfig::tombstone_horizon`].
#[derive(Debug, Clone, Copy)]
struct Tombstone {
    owner: usize,
    /// When the eviction happened (starts the GC horizon).
    at: SimTime,
}

// All five tables are BTreeMaps, not HashMaps: eviction scans iterate
// `leases`, notification fan-out iterates `subscribers`, and Debug/teardown
// paths iterate the rest, so iteration order must be deterministic.
struct ServerInner {
    node: NodeId,
    rdma: RdmaFabric,
    config: SmbServerConfig,
    /// The shared DRAM bus of the memory server.
    memory: BandwidthResource,
    segments: Mutex<BTreeMap<ShmKey, Segment>>,
    names: Mutex<BTreeMap<String, ShmKey>>,
    next_key: Mutex<u64>,
    subscribers: Mutex<BTreeMap<ShmKey, Vec<SimChannel<u64>>>>,
    /// Heartbeat leases for owned segments.
    leases: Mutex<BTreeMap<ShmKey, Lease>>,
    /// Keys reclaimed by lease expiry, with the lapsed owner — lookups of
    /// these report [`SmbError::LeaseExpired`] rather than a bare unknown
    /// key, so survivors learn *why* a peer's buffer vanished. Bounded by
    /// acknowledgement and the tombstone horizon (see [`Tombstone`]).
    evicted: Mutex<BTreeMap<ShmKey, Tombstone>>,
    /// Open accumulate-stream counts per segment. While a chunked exchange
    /// is mid-stream on a segment, the replicator must not ship it: a
    /// half-applied chunk sequence on the standby would be a torn W_g that
    /// no worker ever produced. Counted (not boolean) because several
    /// workers may stream into the same global segment concurrently.
    streams: Mutex<BTreeMap<ShmKey, u64>>,
    /// Pages poisoned so far: every verification failure observed by a
    /// read, a mutation's pre-check or a scrub pass, counted once per
    /// newly poisoned page.
    corruptions_detected: AtomicU64,
    /// Shutdown flag for the background scrubber.
    scrub_stop: AtomicBool,
}

/// The SMB server: a segment table over the memory server's RAM plus the
/// accumulate engine. Cheap to clone (shared handle).
///
/// The server is a *passive* object in this reproduction: clients invoke
/// operations directly, and exclusivity of accumulate processing (paper
/// T.A3: "the SMB server exclusively processes the cumulative update
/// requests") emerges from the FIFO accumulate-engine resource.
#[derive(Clone)]
pub struct SmbServer {
    inner: Arc<ServerInner>,
}

impl fmt::Debug for SmbServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmbServer")
            .field("node", &self.inner.node)
            .field("segments", &self.inner.segments.lock().len())
            .finish()
    }
}

impl SmbServer {
    /// Creates an SMB server on the fabric's memory-server endpoint with
    /// default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] if the fabric has none.
    pub fn new(rdma: RdmaFabric) -> Result<Self, SmbError> {
        Self::with_config(rdma, SmbServerConfig::default())
    }

    /// Creates an SMB server with explicit configuration on the first
    /// memory-server endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] if the fabric has none.
    pub fn with_config(rdma: RdmaFabric, config: SmbServerConfig) -> Result<Self, SmbError> {
        Self::with_config_at(rdma, config, 0)
    }

    /// Creates an SMB server on the `index`-th memory-server endpoint
    /// (multiple-server deployments, paper §V future work).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] if that endpoint does not exist.
    pub fn with_config_at(
        rdma: RdmaFabric,
        config: SmbServerConfig,
        index: usize,
    ) -> Result<Self, SmbError> {
        let node = rdma.fabric().memory_server_at(index).ok_or(SmbError::NoMemoryServer)?;
        Ok(SmbServer {
            inner: Arc::new(ServerInner {
                node,
                rdma,
                config,
                memory: BandwidthResource::new(
                    "smb_server_memory",
                    LinkModel::new(config.memory_bps, config.control_latency),
                ),
                segments: Mutex::new(BTreeMap::new()),
                names: Mutex::new(BTreeMap::new()),
                next_key: Mutex::new(1),
                subscribers: Mutex::new(BTreeMap::new()),
                leases: Mutex::new(BTreeMap::new()),
                evicted: Mutex::new(BTreeMap::new()),
                streams: Mutex::new(BTreeMap::new()),
                corruptions_detected: AtomicU64::new(0),
                scrub_stop: AtomicBool::new(false),
            }),
        })
    }

    /// The fabric endpoint hosting this server.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The server's configuration.
    pub fn config(&self) -> SmbServerConfig {
        self.inner.config
    }

    /// The RDMA fabric this server allocates from.
    pub fn rdma(&self) -> &RdmaFabric {
        &self.inner.rdma
    }

    /// One-way control-message latency.
    pub(crate) fn control_latency(&self) -> SimDuration {
        self.inner.config.control_latency
    }

    /// Total bytes that have crossed the server's memory bus so far (DMA
    /// for reads/writes plus the accumulate engine's passes).
    pub fn memory_bytes(&self) -> u64 {
        self.inner.memory.total_bytes()
    }

    /// The server's DRAM-bus resource (for clients to include in their
    /// RDMA data path).
    pub(crate) fn memory_resource(&self) -> &BandwidthResource {
        &self.inner.memory
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.inner.segments.lock().len()
    }

    /// Creates a named segment of `elems` f32 elements. `wire_bytes`
    /// overrides the modelled size of full-segment transfers (used to
    /// simulate the paper's multi-hundred-MB parameter buffers with small
    /// physical vectors); `None` means the physical size `elems * 4`.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::DuplicateName`] for a reused name.
    pub(crate) fn create_segment(
        &self,
        ctx: &SimContext,
        name: &str,
        elems: usize,
        wire_bytes: Option<u64>,
    ) -> Result<ShmKey, SmbError> {
        self.create_segment_owned(ctx, name, elems, wire_bytes, None)
    }

    /// Like [`SmbServer::create_segment`], but optionally binds the segment
    /// to an owner rank's lease: if the owner stops heartbeating for longer
    /// than [`SmbServerConfig::lease_timeout`], [`SmbServer::evict_stale`]
    /// reclaims the segment.
    pub(crate) fn create_segment_owned(
        &self,
        ctx: &SimContext,
        name: &str,
        elems: usize,
        wire_bytes: Option<u64>,
        owner: Option<usize>,
    ) -> Result<ShmKey, SmbError> {
        let now = ctx.now();
        #[cfg(feature = "race-detect")]
        let stamp = ctx.vc_stamp();
        let mut names = self.inner.names.lock();
        if names.contains_key(name) {
            return Err(SmbError::DuplicateName { name: name.to_string(), node: self.inner.node });
        }
        let mr = self.inner.rdma.register(self.inner.node, elems)?;
        let key = {
            let mut next = self.inner.next_key.lock();
            let k = ShmKey(*next);
            *next += 1;
            k
        };
        self.inner.segments.lock().insert(
            key,
            Segment {
                mr,
                wire_bytes: wire_bytes.unwrap_or((elems * 4) as u64),
                name: name.to_string(),
                version: 0,
                page_crcs: self.initial_page_crcs(elems),
                poisoned: BTreeSet::new(),
                #[cfg(feature = "race-detect")]
                created: stamp.clone(),
            },
        );
        names.insert(name.to_string(), key);
        if let Some(owner) = owner {
            self.inner.leases.lock().insert(
                key,
                Lease {
                    owner,
                    last_heartbeat: now,
                    #[cfg(feature = "race-detect")]
                    stamp,
                },
            );
        }
        Ok(key)
    }

    /// Vector-clock stamp taken when the segment was created, joined by
    /// clients in [`crate::SmbClient::alloc`] so creation happens-before
    /// every subsequent access through the returned handle.
    #[cfg(feature = "race-detect")]
    pub(crate) fn segment_created_stamp(
        &self,
        key: ShmKey,
    ) -> Option<shmcaffe_simnet::race::VectorClock> {
        self.inner.segments.lock().get(&key).map(|s| s.created.clone())
    }

    /// Looks up a segment's access info.
    pub(crate) fn segment(&self, key: ShmKey) -> Result<(MemoryRegion, u64), SmbError> {
        let segments = self.inner.segments.lock();
        match segments.get(&key) {
            Some(seg) => Ok((seg.mr, seg.wire_bytes)),
            None => Err(self.missing(key)),
        }
    }

    /// The error for a key with no live segment: [`SmbError::LeaseExpired`]
    /// if the server evicted it, otherwise [`SmbError::UnknownKey`].
    fn missing(&self, key: ShmKey) -> SmbError {
        match self.inner.evicted.lock().get(&key) {
            Some(t) => SmbError::LeaseExpired { key, owner: t.owner, node: self.inner.node },
            None => SmbError::UnknownKey { key, node: self.inner.node },
        }
    }

    /// Looks up a segment by name (for late-joining observers).
    pub fn lookup(&self, name: &str) -> Option<ShmKey> {
        self.inner.names.lock().get(name).copied()
    }

    /// Destroys a segment and releases its memory.
    pub(crate) fn destroy_segment(&self, key: ShmKey) -> Result<(), SmbError> {
        let seg = match self.inner.segments.lock().remove(&key) {
            Some(seg) => seg,
            None => return Err(self.missing(key)),
        };
        self.inner.names.lock().remove(&seg.name);
        self.inner.subscribers.lock().remove(&key);
        self.inner.leases.lock().remove(&key);
        self.inner.rdma.deregister(&seg.mr)?;
        Ok(())
    }

    /// Records a heartbeat from `owner`, refreshing every lease that rank
    /// holds. Workers call this (via [`crate::SmbClient::heartbeat`]) at
    /// least once per exchange round; a crashed worker stops.
    pub fn touch_owner(&self, ctx: &SimContext, owner: usize) {
        ctx.footprint(
            pseudo_region("smb.leases", self.inner.node.0 as u64),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicWrite,
        );
        let now = ctx.now();
        #[cfg(feature = "race-detect")]
        let stamp = ctx.vc_stamp();
        let mut leases = self.inner.leases.lock();
        for lease in leases.values_mut() {
            if lease.owner == owner {
                lease.last_heartbeat = now;
                #[cfg(feature = "race-detect")]
                {
                    lease.stamp = stamp.clone();
                }
            }
        }
    }

    /// The owner rank of a leased segment, if any.
    pub fn lease_owner(&self, key: ShmKey) -> Option<usize> {
        self.inner.leases.lock().get(&key).map(|l| l.owner)
    }

    /// Evicts every leased segment whose owner has not heartbeated within
    /// [`SmbServerConfig::lease_timeout`], releasing its memory. Returns
    /// the evicted keys. Subsequent lookups of an evicted key report
    /// [`SmbError::LeaseExpired`] with the lapsed owner.
    pub fn evict_stale(&self, ctx: &SimContext) -> Vec<ShmKey> {
        // Eviction reads the lease table and mutates the tombstone table;
        // neither commutes with heartbeats or rejoin acknowledgements.
        ctx.footprint(
            pseudo_region("smb.leases", self.inner.node.0 as u64),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRead,
        );
        ctx.footprint(
            pseudo_region("smb.tombstones", self.inner.node.0 as u64),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRmw,
        );
        let now = ctx.now();
        let timeout = self.inner.config.lease_timeout;
        let stale: Vec<(ShmKey, usize)> = {
            let leases = self.inner.leases.lock();
            leases
                .iter()
                .filter(|(_, l)| now.since(l.last_heartbeat) > timeout)
                .map(|(&k, l)| (k, l.owner))
                .collect()
        };
        // The evictor observed the owner's last heartbeat, so every access
        // that preceded that heartbeat happens-before the eviction.
        #[cfg(feature = "race-detect")]
        {
            let leases = self.inner.leases.lock();
            for (key, _) in &stale {
                if let Some(lease) = leases.get(key) {
                    ctx.vc_join(&lease.stamp);
                }
            }
        }
        let mut evicted = Vec::new();
        for (key, owner) in stale {
            if self.destroy_segment(key).is_ok() {
                self.inner.evicted.lock().insert(key, Tombstone { owner, at: now });
                evicted.push(key);
            }
        }
        // Bounded tombstone GC: anything older than the horizon no longer
        // needs a LeaseExpired explanation — every interested party has had
        // ample time to observe it.
        let horizon = self.inner.config.tombstone_horizon;
        self.inner.evicted.lock().retain(|_, t| now.since(t.at) <= horizon);
        evicted.sort();
        evicted
    }

    /// Drops every tombstone naming `owner`: the lapsed owner (or whoever
    /// acts for it) has observed its [`SmbError::LeaseExpired`] evictions,
    /// so the markers are no longer needed. A rejoining worker calls this
    /// (via [`crate::SmbClient::ack_eviction`]) before re-creating its
    /// buffers. Returns how many tombstones were reclaimed.
    pub fn ack_eviction(&self, ctx: &SimContext, owner: usize) -> usize {
        ctx.footprint(
            pseudo_region("smb.tombstones", self.inner.node.0 as u64),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRmw,
        );
        let mut evicted = self.inner.evicted.lock();
        let before = evicted.len();
        evicted.retain(|_, t| t.owner != owner);
        before - evicted.len()
    }

    /// Number of eviction tombstones currently held (bounded by
    /// [`SmbServer::ack_eviction`] and the tombstone horizon).
    pub fn tombstone_count(&self) -> usize {
        self.inner.evicted.lock().len()
    }

    /// Server-side accumulate: `dst += src` between two segments (paper
    /// eq. 7 and step T.A3). The caller is charged the engine's queueing +
    /// service time for the destination's wire size, which serialises
    /// concurrent accumulate requests exactly as the paper's server does.
    ///
    /// Returns the destination's new version number.
    ///
    /// # Errors
    ///
    /// Returns key/length errors; on error no engine time is charged.
    pub(crate) fn accumulate(
        &self,
        ctx: &SimContext,
        src: ShmKey,
        dst: ShmKey,
    ) -> Result<u64, SmbError> {
        let (src_mr, _) = self.segment(src)?;
        let (dst_mr, dst_wire) = self.segment(dst)?;
        if src_mr.len != dst_mr.len {
            return Err(SmbError::LengthMismatch { src: src_mr.len, dst: dst_mr.len, key: dst });
        }
        // Never fold corrupt operands: both sides verify before the engine
        // touches them, so a poisoned ΔW or W_g page aborts the accumulate
        // instead of spreading damage into the average.
        self.verify_region(ctx, src, 0, src_mr.len)?;
        self.verify_region(ctx, dst, 0, dst_mr.len)?;
        // The engine serialises accumulates on the DRAM bus, so they are
        // atomic read-modify-writes with respect to each other; concurrent
        // plain writes to the destination still race.
        {
            use shmcaffe_simnet::FootprintKind;
            ctx.footprint(src_mr.rkey.0, 0, src_mr.len, FootprintKind::AtomicRead);
            ctx.footprint(dst_mr.rkey.0, 0, dst_mr.len, FootprintKind::AtomicRmw);
        }
        #[cfg(feature = "race-detect")]
        {
            use shmcaffe_simnet::race::AccessKind;
            let det = self.inner.rdma.race_detector();
            det.record(
                ctx,
                src_mr.rkey.0,
                0,
                src_mr.len,
                AccessKind::AtomicRead,
                "smb::server::accumulate(src)",
            );
            det.record(
                ctx,
                dst_mr.rkey.0,
                0,
                dst_mr.len,
                AccessKind::AtomicRmw,
                "smb::server::accumulate(dst)",
            );
        }
        // The engine streams ΔW and W_g through server memory (three
        // passes per byte), serialised on the shared DRAM bus (T.A3:
        // requests are processed exclusively). The exclusivity is a
        // sim-time property of the bus; the data-plane add below may use
        // the tensor worker pool (fixed chunks, thread-count invariant)
        // without changing the accounting.
        self.inner.memory.transfer(ctx, dst_wire * ACCUMULATE_MEM_PASSES);
        self.inner.rdma.with_two_regions(&src_mr, &dst_mr, |s, d| {
            shmcaffe_tensor::ops::axpy(1.0, s, d);
        })?;
        self.refresh_page_range(dst, 0, dst_mr.len);
        let version = self.bump_version(ctx, dst);
        Ok(version)
    }

    /// Range variant of [`SmbServer::accumulate`]: `dst[offset..offset+len]
    /// += src[offset..offset+len]`. The chunked exchange pushes one fixed
    /// grid chunk at a time through this, so engine time is charged
    /// proportionally to the chunk's share of the segment's wire size —
    /// streaming a whole segment chunk-by-chunk costs the same bus time as
    /// one monolithic accumulate (modulo per-chunk rounding up).
    ///
    /// Returns the destination's new version number.
    ///
    /// # Errors
    ///
    /// Returns key/length/bounds errors; on error no engine time is charged.
    pub(crate) fn accumulate_range(
        &self,
        ctx: &SimContext,
        src: ShmKey,
        dst: ShmKey,
        offset: usize,
        len: usize,
    ) -> Result<u64, SmbError> {
        let (src_mr, _) = self.segment(src)?;
        let (dst_mr, dst_wire) = self.segment(dst)?;
        if src_mr.len != dst_mr.len {
            return Err(SmbError::LengthMismatch { src: src_mr.len, dst: dst_mr.len, key: dst });
        }
        if offset + len > dst_mr.len {
            return Err(SmbError::SizeMismatch {
                key: dst,
                expected: dst_mr.len,
                got: offset + len,
            });
        }
        // Verify only the pages this chunk touches (see `accumulate`).
        self.verify_region(ctx, src, offset, len)?;
        self.verify_region(ctx, dst, offset, len)?;
        // Same atomicity model as the full accumulate, but the access
        // footprint is the exact sub-range: disjoint chunks from different
        // workers do not conflict, overlapping ones serialise as RMWs.
        {
            use shmcaffe_simnet::FootprintKind;
            ctx.footprint(src_mr.rkey.0, offset, len, FootprintKind::AtomicRead);
            ctx.footprint(dst_mr.rkey.0, offset, len, FootprintKind::AtomicRmw);
        }
        #[cfg(feature = "race-detect")]
        {
            use shmcaffe_simnet::race::AccessKind;
            let det = self.inner.rdma.race_detector();
            det.record(
                ctx,
                src_mr.rkey.0,
                offset,
                len,
                AccessKind::AtomicRead,
                "smb::server::accumulate_range(src)",
            );
            det.record(
                ctx,
                dst_mr.rkey.0,
                offset,
                len,
                AccessKind::AtomicRmw,
                "smb::server::accumulate_range(dst)",
            );
        }
        let chunk_wire = ((dst_wire as f64 * len as f64 / dst_mr.len.max(1) as f64).ceil()) as u64;
        self.inner.memory.transfer(ctx, chunk_wire * ACCUMULATE_MEM_PASSES);
        self.inner.rdma.with_two_regions(&src_mr, &dst_mr, |s, d| {
            shmcaffe_tensor::ops::axpy(1.0, &s[offset..offset + len], &mut d[offset..offset + len]);
        })?;
        self.refresh_page_range(dst, offset, len);
        let version = self.bump_version(ctx, dst);
        Ok(version)
    }

    // ---- accumulate-stream guard ------------------------------------------

    /// Marks the start of a chunked accumulate stream into `key`. Until the
    /// matching [`SmbServer::end_accumulate_stream`], replication passes
    /// skip this segment so the standby never observes a torn half-applied
    /// chunk sequence (it keeps the previous consistent contents instead).
    /// Pure control-plane bookkeeping: no sim time is charged here — the
    /// caller's per-chunk control round trips already pay for the stream's
    /// signalling.
    pub fn begin_accumulate_stream(&self, ctx: &SimContext, key: ShmKey) {
        ctx.footprint(
            pseudo_region("smb.stream", key.0),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRmw,
        );
        *self.inner.streams.lock().entry(key).or_insert(0) += 1;
    }

    /// Closes one accumulate stream opened by
    /// [`SmbServer::begin_accumulate_stream`].
    pub fn end_accumulate_stream(&self, ctx: &SimContext, key: ShmKey) {
        ctx.footprint(
            pseudo_region("smb.stream", key.0),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRmw,
        );
        let mut streams = self.inner.streams.lock();
        if let Some(count) = streams.get_mut(&key) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                streams.remove(&key);
            }
        }
    }

    /// Whether any accumulate stream is currently open on `key`.
    pub(crate) fn stream_open(&self, ctx: &SimContext, key: ShmKey) -> bool {
        ctx.footprint(
            pseudo_region("smb.stream", key.0),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRead,
        );
        self.inner.streams.lock().get(&key).is_some_and(|&c| c > 0)
    }

    /// Bumps a segment's version and notifies subscribers; returns the new
    /// version.
    pub(crate) fn bump_version(&self, ctx: &SimContext, key: ShmKey) -> u64 {
        // Version bumps on the same key never commute for exploration
        // purposes: subscribers observe the intermediate values.
        ctx.footprint(
            pseudo_region("smb.version", key.0),
            0,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRmw,
        );
        let version = {
            let mut segments = self.inner.segments.lock();
            match segments.get_mut(&key) {
                Some(seg) => {
                    seg.version += 1;
                    seg.version
                }
                None => return 0,
            }
        };
        let subscribers = self.inner.subscribers.lock();
        if let Some(subs) = subscribers.get(&key) {
            for ch in subs {
                ch.send(ctx, version);
            }
        }
        version
    }

    /// Current version of a segment (0 if never updated).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::UnknownKey`] for a dead segment.
    pub fn version(&self, key: ShmKey) -> Result<u64, SmbError> {
        let segments = self.inner.segments.lock();
        match segments.get(&key) {
            Some(s) => Ok(s.version),
            None => Err(self.missing(key)),
        }
    }

    /// Subscribes to update notifications for a segment. Each accumulate or
    /// client write sends the new version on the returned channel.
    pub fn subscribe(&self, key: ShmKey) -> SimChannel<u64> {
        let ch = SimChannel::new(&format!("smb_notify_{}", key.0));
        self.inner.subscribers.lock().entry(key).or_default().push(ch.clone());
        ch
    }

    /// FNV fingerprint of the server's observable state: the segment table
    /// (names, versions, contents), leases, tombstones and open streams.
    /// Fed to [`shmcaffe_simnet::Simulation::set_state_probe`] so the
    /// schedule explorer can fingerprint terminal states and collapse
    /// schedules that converge to the same server state. Iterates BTreeMaps,
    /// so the hash is order-deterministic; simulated time is deliberately
    /// excluded (two interleavings that produce the same state at different
    /// virtual times are the same state).
    pub fn state_hash(&self) -> u64 {
        let mut h = shmcaffe_simnet::explore::Fnv::new();
        for (key, seg) in self.inner.segments.lock().iter() {
            h.write_u64(key.0);
            h.write_bytes(seg.name.as_bytes());
            h.write_u64(seg.version);
            h.write_u64(seg.mr.len as u64);
            if let Ok(data) = self.inner.rdma.with_region(&seg.mr, |b| b.to_vec()) {
                for v in data {
                    h.write_u64(u64::from(v.to_bits()));
                }
            }
            for crc in &seg.page_crcs {
                h.write_u64(u64::from(*crc) ^ 0xcc32);
            }
            for page in &seg.poisoned {
                h.write_u64(*page as u64 ^ 0x9015);
            }
        }
        for (key, lease) in self.inner.leases.lock().iter() {
            h.write_u64(key.0 ^ 0x1eaa);
            h.write_u64(lease.owner as u64);
        }
        for (key, t) in self.inner.evicted.lock().iter() {
            h.write_u64(key.0 ^ 0x70b5);
            h.write_u64(t.owner as u64);
        }
        for (key, count) in self.inner.streams.lock().iter() {
            h.write_u64(key.0 ^ 0x57e3);
            h.write_u64(*count);
        }
        h.finish()
    }

    // ---- data integrity: CRC-guarded pages, scrubbing, poison --------------

    /// Page size of the integrity grid in elements (0 = grid disabled).
    fn paging(&self) -> usize {
        self.inner.config.page_elems
    }

    /// Number of pages a segment of `elems` elements is divided into.
    fn page_count(&self, elems: usize) -> usize {
        let pe = self.paging();
        if pe == 0 || elems == 0 {
            0
        } else {
            elems.div_ceil(pe)
        }
    }

    /// Page CRCs for a freshly allocated (all-zero) segment.
    fn initial_page_crcs(&self, elems: usize) -> Vec<u32> {
        let pe = self.paging();
        let pages = self.page_count(elems);
        if pages == 0 {
            return Vec::new();
        }
        let zeros = vec![0.0f32; pe.min(elems)];
        (0..pages)
            .map(|page| {
                let (_, len) = page_span(pe, elems, page);
                crc32c_f32(&zeros[..len])
            })
            .collect()
    }

    /// The page indices overlapping `[offset, offset + len)` in a segment
    /// of `elems` elements. Empty when the grid is off.
    fn pages_overlapping(&self, elems: usize, offset: usize, len: usize) -> std::ops::Range<usize> {
        let pe = self.paging();
        if pe == 0 || len == 0 || elems == 0 {
            return 0..0;
        }
        let lo = offset / pe;
        let hi = ((offset + len - 1) / pe + 1).min(elems.div_ceil(pe));
        lo..hi
    }

    /// Applies any seeded DRAM-decay faults that have come due on this
    /// node: each flips one seed-chosen bit of one seed-chosen element in
    /// one seed-chosen segment *without* touching the recorded page CRC —
    /// silent corruption for verification or the scrubber to find. Decay
    /// is applied lazily (on the next verify or scrub pass after its due
    /// time), which is exactly when it becomes observable; each seeded
    /// event lands at most once (the injector claims it).
    pub fn apply_due_decays(&self, ctx: &SimContext) {
        let Some(inj) = self.inner.rdma.fabric().fault_injector() else { return };
        let seeds = inj.take_due_decays(self.inner.node, ctx.now());
        if seeds.is_empty() {
            return;
        }
        let victims: Vec<MemoryRegion> =
            self.inner.segments.lock().values().map(|s| s.mr).collect();
        if victims.is_empty() {
            return;
        }
        for seed in seeds {
            let mr = victims[(seed % victims.len() as u64) as usize];
            if mr.len == 0 {
                continue;
            }
            let elem = ((seed >> 16) % mr.len as u64) as usize;
            let bit = ((seed >> 48) % 32) as u32;
            // Deliberately not race-recorded and charged no sim time:
            // decay is the *environment* mutating DRAM, not a process —
            // there is no instruction to order it against.
            let _ = self.inner.rdma.with_region(&mr, |b| {
                b[elem] = f32::from_bits(b[elem].to_bits() ^ (1 << bit));
            });
        }
    }

    /// Verifies the CRC-guarded pages overlapping `[offset, offset+len)`,
    /// applying any due DRAM decays first. A failing page is *poisoned* —
    /// the server refuses to serve or mutate it until a repair re-installs
    /// clean bytes — and the check surfaces [`SmbError::Corrupted`] naming
    /// the page. No-op when the grid is disabled. Zero sim time: the
    /// checksum walk models server-side CPU the DRAM-bus cost model
    /// already subsumes.
    ///
    /// # Errors
    ///
    /// [`SmbError::Corrupted`] for the first poisoned or freshly failing
    /// page; key-lookup errors if the segment died.
    pub fn verify_region(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        offset: usize,
        len: usize,
    ) -> Result<(), SmbError> {
        if self.paging() == 0 {
            return Ok(());
        }
        self.apply_due_decays(ctx);
        let (mr, _) = self.segment(key)?;
        let pages = self.pages_overlapping(mr.len, offset, len);
        if pages.is_empty() {
            return Ok(());
        }
        ctx.footprint(
            pseudo_region("smb.poison", key.0),
            pages.start,
            pages.len(),
            shmcaffe_simnet::FootprintKind::AtomicRead,
        );
        for page in pages {
            self.verify_page(ctx, key, &mr, page)?;
        }
        Ok(())
    }

    /// Checks one page against its recorded CRC, poisoning it on mismatch.
    fn verify_page(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        mr: &MemoryRegion,
        page: usize,
    ) -> Result<(), SmbError> {
        let (off, len) = page_span(self.paging(), mr.len, page);
        let (already_poisoned, expect) = {
            let segments = self.inner.segments.lock();
            let seg = segments.get(&key).ok_or_else(|| self.missing(key))?;
            (seg.poisoned.contains(&page), seg.page_crcs.get(page).copied())
        };
        if already_poisoned {
            return Err(SmbError::Corrupted { key, node: self.inner.node, page });
        }
        let Some(expect) = expect else { return Ok(()) };
        // Deliberately not race-recorded: the CRC walk is a zero-time
        // atomic snapshot of the page — it observes either all of a
        // write's bytes or none of them in the cooperative simulator, so
        // it cannot witness a torn intermediate state.
        let actual = self.inner.rdma.with_region(mr, |b| crc32c_f32(&b[off..off + len]))?;
        if actual != expect {
            self.poison_page(ctx, key, page);
            return Err(SmbError::Corrupted { key, node: self.inner.node, page });
        }
        Ok(())
    }

    /// Marks a page poisoned and counts the detection (once per page).
    fn poison_page(&self, ctx: &SimContext, key: ShmKey, page: usize) {
        ctx.footprint(
            pseudo_region("smb.poison", key.0),
            page,
            1,
            shmcaffe_simnet::FootprintKind::AtomicWrite,
        );
        let mut segments = self.inner.segments.lock();
        if let Some(seg) = segments.get_mut(&key) {
            if seg.poisoned.insert(page) {
                self.inner.corruptions_detected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records the *intended* page CRCs after a client write landed:
    /// per overlapping page, the checksum of the region's current bytes
    /// with `data` overlaid at `[offset, offset + data.len())`. For an
    /// intact delivery this equals the actual contents; for a torn one the
    /// recorded CRC reflects what the writer *meant*, so the next
    /// verification of the page fails and poisons it. Never clears poison
    /// (repair is the only clearer).
    pub(crate) fn note_write(&self, ctx: &SimContext, key: ShmKey, offset: usize, data: &[f32]) {
        let pe = self.paging();
        if pe == 0 || data.is_empty() {
            return;
        }
        let Ok((mr, _)) = self.segment(key) else { return };
        let pages = self.pages_overlapping(mr.len, offset, data.len());
        ctx.footprint(
            pseudo_region("smb.poison", key.0),
            pages.start,
            pages.len(),
            shmcaffe_simnet::FootprintKind::AtomicWrite,
        );
        for page in pages {
            let (po, pl) = page_span(pe, mr.len, page);
            let crc = match self.inner.rdma.with_region(&mr, |b| {
                let mut intended: Vec<f32> = b[po..po + pl].to_vec();
                let lo = offset.max(po);
                let hi = (offset + data.len()).min(po + pl);
                intended[lo - po..hi - po].copy_from_slice(&data[lo - offset..hi - offset]);
                crc32c_f32(&intended)
            }) {
                Ok(crc) => crc,
                Err(_) => return,
            };
            let mut segments = self.inner.segments.lock();
            if let Some(slot) = segments.get_mut(&key).and_then(|s| s.page_crcs.get_mut(page)) {
                *slot = crc;
            }
        }
    }

    /// Recomputes the CRCs of the pages overlapping a range from the
    /// region's *actual* bytes — for server-side mutations (accumulate)
    /// that verified their operands first, so the actual bytes are the
    /// intended bytes. Never clears poison.
    pub(crate) fn refresh_page_range(&self, key: ShmKey, offset: usize, len: usize) {
        let pe = self.paging();
        if pe == 0 {
            return;
        }
        let Ok((mr, _)) = self.segment(key) else { return };
        for page in self.pages_overlapping(mr.len, offset, len) {
            let (po, pl) = page_span(pe, mr.len, page);
            let Ok(crc) = self.inner.rdma.with_region(&mr, |b| crc32c_f32(&b[po..po + pl])) else {
                return;
            };
            let mut segments = self.inner.segments.lock();
            if let Some(slot) = segments.get_mut(&key).and_then(|s| s.page_crcs.get_mut(page)) {
                *slot = crc;
            }
        }
    }

    /// Recomputes every page CRC of a segment from its actual bytes and
    /// clears its poison set — used by the replicator right after copying
    /// verified-clean contents onto the standby (the copy *is* a repair of
    /// whatever the standby held before).
    pub(crate) fn refresh_segment_crcs(&self, key: ShmKey) {
        let Ok((mr, _)) = self.segment(key) else { return };
        self.refresh_page_range(key, 0, mr.len);
        let mut segments = self.inner.segments.lock();
        if let Some(seg) = segments.get_mut(&key) {
            seg.poisoned.clear();
        }
    }

    /// Lands repaired bytes into one page: overwrites the page's contents,
    /// records their CRC and clears the poison mark. This is the *only*
    /// operation that clears poison. The landing is an `AtomicRmw` on the
    /// page's range — it cannot race the accumulate engine, and the repair
    /// protocol ([`crate::SmbPair::repair_page`]) orders it against
    /// replication passes via the replicator's HB stamp.
    ///
    /// # Errors
    ///
    /// Key-lookup errors and [`SmbError::SizeMismatch`] if `data` is not
    /// exactly one page.
    pub(crate) fn install_page(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        page: usize,
        data: &[f32],
    ) -> Result<(), SmbError> {
        let (mr, _) = self.segment(key)?;
        let (off, len) = page_span(self.paging().max(1), mr.len, page);
        if len != data.len() {
            return Err(SmbError::SizeMismatch { key, expected: len, got: data.len() });
        }
        ctx.footprint(
            pseudo_region("smb.poison", key.0),
            page,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRmw,
        );
        ctx.footprint(mr.rkey.0, off, len, shmcaffe_simnet::FootprintKind::AtomicRmw);
        #[cfg(feature = "race-detect")]
        self.inner.rdma.race_detector().record(
            ctx,
            mr.rkey.0,
            off,
            len,
            shmcaffe_simnet::race::AccessKind::AtomicRmw,
            "smb::replica::repair",
        );
        self.inner.rdma.with_region(&mr, |b| b[off..off + len].copy_from_slice(data))?;
        let crc = crc32c_f32(data);
        let mut segments = self.inner.segments.lock();
        if let Some(seg) = segments.get_mut(&key) {
            if let Some(slot) = seg.page_crcs.get_mut(page) {
                *slot = crc;
            }
            seg.poisoned.remove(&page);
        }
        Ok(())
    }

    /// Whether a page is currently poisoned (footprinted so the explorer
    /// orders this check against poisoning and repair).
    pub(crate) fn page_poisoned(&self, ctx: &SimContext, key: ShmKey, page: usize) -> bool {
        ctx.footprint(
            pseudo_region("smb.poison", key.0),
            page,
            1,
            shmcaffe_simnet::FootprintKind::AtomicRead,
        );
        self.inner.segments.lock().get(&key).is_some_and(|seg| seg.poisoned.contains(&page))
    }

    /// Source-side page fetch for repair: the page's bytes if and only if
    /// they verify against the recorded CRC (due decays on this node are
    /// applied first, so a stale standby copy cannot masquerade as clean).
    ///
    /// # Errors
    ///
    /// [`SmbError::Corrupted`] when this copy is bad too; key errors when
    /// the segment was never mirrored here.
    pub(crate) fn read_page_checked(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        page: usize,
    ) -> Result<Vec<f32>, SmbError> {
        self.apply_due_decays(ctx);
        let (mr, _) = self.segment(key)?;
        self.verify_page(ctx, key, &mr, page)?;
        let (off, len) = page_span(self.paging().max(1), mr.len, page);
        // Deliberately not race-recorded: zero-time snapshot taken after
        // the repair protocol has waited out any in-flight replication
        // pass, so it cannot observe a half-shipped segment.
        Ok(self.inner.rdma.with_region(&mr, |b| b[off..off + len].to_vec())?)
    }

    /// Whether every page of a segment verifies clean. Failing pages are
    /// poisoned as a side effect (the caller — the replicator — thereby
    /// doubles as a scrubber). `true` when the grid is off.
    pub(crate) fn segment_clean(&self, ctx: &SimContext, key: ShmKey) -> bool {
        if self.paging() == 0 {
            return true;
        }
        self.apply_due_decays(ctx);
        let Ok((mr, _)) = self.segment(key) else { return false };
        let mut clean = true;
        for page in 0..self.page_count(mr.len) {
            if self.verify_page(ctx, key, &mr, page).is_err() {
                clean = false;
            }
        }
        clean
    }

    /// Deterministic corruption hook: flips one bit of one element without
    /// updating the page CRC — the hand-driven equivalent of a DRAM decay,
    /// used by the integrity proptests and the schedule-checker models
    /// (which must not depend on a fault injector).
    ///
    /// # Errors
    ///
    /// Key-lookup errors and [`SmbError::SizeMismatch`] for an
    /// out-of-range element.
    pub fn inject_bit_flip(&self, key: ShmKey, elem: usize, bit: u32) -> Result<(), SmbError> {
        let (mr, _) = self.segment(key)?;
        if elem >= mr.len {
            return Err(SmbError::SizeMismatch { key, expected: mr.len, got: elem + 1 });
        }
        self.inner.rdma.with_region(&mr, |b| {
            b[elem] = f32::from_bits(b[elem].to_bits() ^ (1u32 << (bit % 32)));
        })?;
        Ok(())
    }

    /// Deterministic corruption hook: applies a torn write — only
    /// `data[..prefix]` lands in the segment at `offset` while the page
    /// CRCs record the full *intended* contents, exactly the state an
    /// acknowledged-but-truncated client write leaves behind. The next
    /// verification of an affected page fails and poisons it.
    ///
    /// # Errors
    ///
    /// Key-lookup errors and [`SmbError::SizeMismatch`] for an
    /// out-of-range write or `prefix > data.len()`.
    pub fn inject_torn_write(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        offset: usize,
        data: &[f32],
        prefix: usize,
    ) -> Result<(), SmbError> {
        let (mr, _) = self.segment(key)?;
        if offset + data.len() > mr.len || prefix > data.len() {
            return Err(SmbError::SizeMismatch { key, expected: mr.len, got: offset + data.len() });
        }
        if prefix > 0 {
            self.inner.rdma.with_region(&mr, |b| {
                b[offset..offset + prefix].copy_from_slice(&data[..prefix])
            })?;
        }
        self.note_write(ctx, key, offset, data);
        Ok(())
    }

    /// One scrub pass: applies due decays, then walks every segment's page
    /// grid verifying CRCs. Newly failing pages are poisoned (counted in
    /// [`SmbServer::corruptions_detected`]); already-poisoned pages are
    /// skipped (their detection was already counted). Returns how many
    /// pages this pass poisoned. Zero sim time — the scrubber's cost model
    /// is its cadence, not its walk.
    pub fn scrub_pass(&self, ctx: &SimContext) -> usize {
        if self.paging() == 0 {
            return 0;
        }
        self.apply_due_decays(ctx);
        let catalog: Vec<(ShmKey, MemoryRegion)> =
            self.inner.segments.lock().iter().map(|(&k, s)| (k, s.mr)).collect();
        let mut newly = 0;
        for (key, mr) in catalog {
            let pages = self.page_count(mr.len);
            if pages == 0 {
                continue;
            }
            ctx.footprint(
                pseudo_region("smb.poison", key.0),
                0,
                pages,
                shmcaffe_simnet::FootprintKind::AtomicRead,
            );
            for page in 0..pages {
                let poisoned_before = self
                    .inner
                    .segments
                    .lock()
                    .get(&key)
                    .is_some_and(|s| s.poisoned.contains(&page));
                if poisoned_before {
                    continue;
                }
                if self.verify_page(ctx, key, &mr, page).is_err() {
                    newly += 1;
                }
            }
        }
        newly
    }

    /// Runs the background scrubber: one [`SmbServer::scrub_pass`] every
    /// [`SmbServerConfig::scrub_interval`] until
    /// [`SmbServer::stop_scrubber`]. Returns immediately when the page
    /// grid or the cadence is disabled. Spawn as its own simulation
    /// process (the ShmCaffe-A platform spawns one per pair member).
    pub fn run_scrubber(&self, ctx: &SimContext) {
        let interval = self.inner.config.scrub_interval;
        if self.paging() == 0 || interval == SimDuration::ZERO {
            return;
        }
        loop {
            ctx.sleep(interval);
            if self.inner.scrub_stop.load(Ordering::Acquire) {
                return;
            }
            self.scrub_pass(ctx);
        }
    }

    /// Stops the background scrubber after its current sleep.
    pub fn stop_scrubber(&self) {
        self.inner.scrub_stop.store(true, Ordering::Release);
    }

    /// Total pages poisoned so far (each page counted once per poisoning).
    pub fn corruptions_detected(&self) -> u64 {
        self.inner.corruptions_detected.load(Ordering::Relaxed)
    }

    /// The currently poisoned pages of a segment (empty for a clean or
    /// unknown segment).
    pub fn poisoned_pages(&self, key: ShmKey) -> Vec<usize> {
        self.inner
            .segments
            .lock()
            .get(&key)
            .map(|seg| seg.poisoned.iter().copied().collect())
            .unwrap_or_default()
    }

    // ---- replication support (see `crate::replica`) -----------------------

    /// Metadata snapshot of every live segment — the journal a replicator
    /// ships to the standby alongside the contents.
    pub(crate) fn segment_catalog(&self) -> Vec<SegmentMeta> {
        self.inner
            .segments
            .lock()
            .iter()
            .map(|(&key, seg)| SegmentMeta {
                key,
                name: seg.name.clone(),
                len: seg.mr.len,
                wire_bytes: seg.wire_bytes,
                version: seg.version,
                #[cfg(feature = "race-detect")]
                created: seg.created.clone(),
            })
            .collect()
    }

    /// Installs (or refreshes) a mirrored segment under the *same* key it
    /// has on the primary, so client handles survive failover unchanged.
    /// Returns this server's backing region for the replicator to copy
    /// contents into.
    pub(crate) fn install_replica_segment(
        &self,
        meta: &SegmentMeta,
    ) -> Result<MemoryRegion, SmbError> {
        let mut segments = self.inner.segments.lock();
        if let Some(seg) = segments.get_mut(&meta.key) {
            seg.version = meta.version;
            return Ok(seg.mr);
        }
        let mr = self.inner.rdma.register(self.inner.node, meta.len)?;
        segments.insert(
            meta.key,
            Segment {
                mr,
                wire_bytes: meta.wire_bytes,
                name: meta.name.clone(),
                version: meta.version,
                // The replicator refreshes these from the copied contents
                // right after the install (see `refresh_segment_crcs`).
                page_crcs: self.initial_page_crcs(meta.len),
                poisoned: BTreeSet::new(),
                #[cfg(feature = "race-detect")]
                created: meta.created.clone(),
            },
        );
        self.inner.names.lock().insert(meta.name.clone(), meta.key);
        // Keep the key allocator ahead of every mirrored key so segments
        // created *after* promotion cannot collide.
        let mut next = self.inner.next_key.lock();
        *next = (*next).max(meta.key.0 + 1);
        Ok(mr)
    }

    /// Drops a mirrored segment that no longer exists on the primary
    /// (e.g. evicted there between replication passes).
    pub(crate) fn drop_replica_segment(&self, key: ShmKey) {
        let _ = self.destroy_segment(key);
    }

    /// Snapshot of the lease table for mirroring.
    pub(crate) fn lease_catalog(&self) -> Vec<LeaseMeta> {
        self.inner
            .leases
            .lock()
            .iter()
            .map(|(&key, l)| LeaseMeta {
                key,
                owner: l.owner,
                last_heartbeat: l.last_heartbeat,
                #[cfg(feature = "race-detect")]
                stamp: l.stamp.clone(),
            })
            .collect()
    }

    /// Replaces this server's lease table with a mirrored snapshot.
    pub(crate) fn set_leases(&self, leases: Vec<LeaseMeta>) {
        let mut table = self.inner.leases.lock();
        table.clear();
        for l in leases {
            table.insert(
                l.key,
                Lease {
                    owner: l.owner,
                    last_heartbeat: l.last_heartbeat,
                    #[cfg(feature = "race-detect")]
                    stamp: l.stamp,
                },
            );
        }
    }

    /// Snapshot of the eviction tombstones for mirroring.
    pub(crate) fn tombstone_catalog(&self) -> Vec<(ShmKey, usize, SimTime)> {
        self.inner.evicted.lock().iter().map(|(&k, t)| (k, t.owner, t.at)).collect()
    }

    /// Replaces this server's tombstone table with a mirrored snapshot.
    pub(crate) fn set_tombstones(&self, tombstones: Vec<(ShmKey, usize, SimTime)>) {
        let mut table = self.inner.evicted.lock();
        table.clear();
        for (key, owner, at) in tombstones {
            table.insert(key, Tombstone { owner, at });
        }
    }
}

/// One segment's replication metadata (the "journal entry" shipped to the
/// standby ahead of the contents).
#[derive(Debug, Clone)]
pub(crate) struct SegmentMeta {
    pub(crate) key: ShmKey,
    pub(crate) name: String,
    pub(crate) len: usize,
    pub(crate) wire_bytes: u64,
    pub(crate) version: u64,
    #[cfg(feature = "race-detect")]
    pub(crate) created: shmcaffe_simnet::race::VectorClock,
}

/// One lease's replication metadata.
#[derive(Debug, Clone)]
pub(crate) struct LeaseMeta {
    pub(crate) key: ShmKey,
    pub(crate) owner: usize,
    pub(crate) last_heartbeat: SimTime,
    #[cfg(feature = "race-detect")]
    pub(crate) stamp: shmcaffe_simnet::race::VectorClock,
}
