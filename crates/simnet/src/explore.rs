//! `schedcheck`: systematic schedule exploration for simulations.
//!
//! The cooperative scheduler runs exactly one deterministic interleaving per
//! program: the globally-minimal wake time with pid tie-break, last-in wake
//! order, front-of-queue delivery. That is perfect for reproducibility but
//! means every concurrency suite only ever observes a *single* schedule.
//! This module turns the three places where that schedule was arbitrary into
//! explicit choice points and explores the alternatives, loom/shuttle style:
//!
//! * **Tie** — which of the processes runnable at the minimal wake time is
//!   dispatched (default: lowest pid).
//! * **Wake** — which parked receiver a channel send wakes (default: the
//!   most recently parked, matching the historical `waiters.pop()`).
//! * **Deliver** — which sender's message a receive takes when several are
//!   already in flight within the delivery window (default: the oldest).
//!
//! Every run records its choices as a [`ScheduleTrace`]; forcing a recorded
//! trace back through [`Simulation::replay`] reproduces the run
//! bit-identically. [`Simulation::explore`] drives a depth-first search over
//! trace prefixes under [`ExploreBounds`] (schedule budget, depth and
//! preemption bounds), prunes reorderings of provably-commuting steps using
//! the same access-conflict relation as the vector-clock race detector
//! (disjoint region ranges and read-read overlaps commute; see
//! [`FootprintKind`]), dedups terminal states by FNV fingerprint, and
//! greedily minimizes the first counterexample before writing it to a
//! `.sched` file.
//!
//! Pruning soundness contract: independence is judged from *recorded*
//! events — instrumented channel operations, RDMA region transfers, and
//! explicit [`crate::SimContext::footprint`] annotations. Shared state a
//! model touches outside those (a bare `Arc<Mutex<_>>`, say) is invisible,
//! so either annotate it or set [`ExploreBounds::prune_independent`] to
//! `false`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use crate::sched::Pid;
use crate::trace::{ScheduleTrace, TraceEntry};
use crate::{SimTime, Simulation};

/// The kind of a scheduling choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChoiceKind {
    /// Equal-time dispatch tie: which runnable process goes next.
    Tie,
    /// Channel send with several parked receivers: which one is woken.
    Wake,
    /// Channel receive with several in-flight senders: whose message lands.
    Deliver,
}

impl ChoiceKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            ChoiceKind::Tie => "tie",
            ChoiceKind::Wake => "wake",
            ChoiceKind::Deliver => "deliver",
        }
    }

    pub(crate) fn parse(s: &str) -> Option<Self> {
        match s {
            "tie" => Some(ChoiceKind::Tie),
            "wake" => Some(ChoiceKind::Wake),
            "deliver" => Some(ChoiceKind::Deliver),
            _ => None,
        }
    }
}

/// Access kind of a recorded shared-state footprint.
///
/// Mirrors the race detector's access taxonomy, but with the stricter
/// *independence* reading needed for schedule pruning: the race detector
/// exempts `Atomic*`/`Atomic*` pairs (engine-serialized, so not a data
/// race), while for exploration any write-class access orders state and
/// therefore does **not** commute — only read/read overlaps do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FootprintKind {
    /// Plain (unsynchronized) read.
    Read,
    /// Plain (unsynchronized) write.
    Write,
    /// Engine-serialized atomic read.
    AtomicRead,
    /// Engine-serialized atomic write.
    AtomicWrite,
    /// Engine-serialized read-modify-write (e.g. SMB accumulate).
    AtomicRmw,
}

impl FootprintKind {
    fn is_read_class(self) -> bool {
        matches!(self, FootprintKind::Read | FootprintKind::AtomicRead)
    }

    /// Whether two overlapping accesses of these kinds commute (their
    /// execution order cannot affect any state or observation).
    pub fn commutes_with(self, other: FootprintKind) -> bool {
        self.is_read_class() && other.is_read_class()
    }
}

/// A shared-state event recorded against the step that performed it.
#[derive(Debug, Clone)]
pub(crate) enum SchedEvent {
    /// A region access (RDMA transfer, SMB accumulate, or an explicit
    /// [`crate::SimContext::footprint`] annotation).
    Access { region: u64, offset: usize, len: usize, kind: FootprintKind },
    /// A channel operation (send or receive) on channel `chan`. Any two
    /// operations on the same channel are order-sensitive (queue contents,
    /// wake targets), so the relation needs no send/recv distinction.
    Chan { chan: u64 },
}

fn events_independent(a: &SchedEvent, b: &SchedEvent) -> bool {
    match (a, b) {
        (
            SchedEvent::Access { region: r1, offset: o1, len: l1, kind: k1 },
            SchedEvent::Access { region: r2, offset: o2, len: l2, kind: k2 },
        ) => r1 != r2 || o1 + l1 <= *o2 || o2 + l2 <= *o1 || k1.commutes_with(*k2),
        (SchedEvent::Chan { chan: c1 }, SchedEvent::Chan { chan: c2 }) => c1 != c2,
        _ => true,
    }
}

fn blocks_independent(a: &[SchedEvent], b: &[SchedEvent]) -> bool {
    a.iter().all(|x| b.iter().all(|y| events_independent(x, y)))
}

/// One resolved choice point, as recorded during a run.
#[derive(Debug, Clone)]
pub(crate) struct ChoiceRecord {
    pub kind: ChoiceKind,
    pub arity: u16,
    pub chosen: u16,
    pub default: u16,
    /// For `Tie`: the runnable candidate pids, in alternative order.
    pub candidates: Vec<Pid>,
    /// Index of the step this choice granted (`Tie`) or was taken in.
    pub step: usize,
}

impl ChoiceRecord {
    fn entry(&self) -> TraceEntry {
        TraceEntry { kind: self.kind, arity: self.arity, chosen: self.chosen }
    }
}

/// One scheduler grant and the shared-state events it performed.
#[derive(Debug, Clone)]
pub(crate) struct StepRecord {
    pub pid: Pid,
    pub events: Vec<SchedEvent>,
}

/// Search bounds for [`Simulation::explore`].
#[derive(Debug, Clone)]
pub struct ExploreBounds {
    /// Hard budget on the number of schedules run (including minimization
    /// re-runs after a failure).
    pub max_schedules: usize,
    /// Choice points past this depth are not branched on (they still take
    /// their defaults).
    pub max_depth: usize,
    /// Maximum number of non-default choices per schedule — the classic
    /// preemption bound; most real bugs need only 1–2.
    pub max_preemptions: usize,
    /// Skip alternatives whose reordering provably commutes with the
    /// explored schedule (sleep-set/DPOR pruning over recorded footprints).
    pub prune_independent: bool,
    /// Skip sibling expansion of runs whose terminal state fingerprint was
    /// already certified. Heuristic — a pruned sibling could in principle
    /// fail *mid-run* through states the certified run never visited — so
    /// it is off by default and meant for state-convergence sweeps.
    pub state_dedup: bool,
    /// Where to write the minimized `.sched` counterexample, if any.
    pub trace_path: Option<PathBuf>,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds {
            max_schedules: 256,
            max_depth: 64,
            max_preemptions: 4,
            prune_independent: true,
            state_dedup: false,
            trace_path: None,
        }
    }
}

impl ExploreBounds {
    /// Bounds for exhaustive small-scope certification: no depth or
    /// preemption bound, just the schedule budget as a safety net.
    /// [`ExploreReport::complete`] then reports whether the whole schedule
    /// space (modulo pruning) was covered.
    pub fn exhaustive(max_schedules: usize) -> Self {
        ExploreBounds {
            max_schedules,
            max_depth: usize::MAX,
            max_preemptions: usize::MAX,
            ..ExploreBounds::default()
        }
    }
}

/// A minimized counterexample found by [`Simulation::explore`].
#[derive(Debug)]
pub struct FailureReport {
    /// The panic/assertion message of the failing run.
    pub message: String,
    /// Minimized schedule reproducing the failure via
    /// [`Simulation::replay`].
    pub trace: ScheduleTrace,
    /// Terminal state fingerprint of the failing run (replay must match).
    pub state_hash: u64,
    /// Path the `.sched` file was written to, when
    /// [`ExploreBounds::trace_path`] was set and the write succeeded.
    pub trace_file: Option<PathBuf>,
}

/// Outcome of a [`Simulation::explore`] search.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Schedules actually run (including minimization re-runs).
    pub schedules: usize,
    /// Whether the bounded search exhausted its frontier: no budget,
    /// depth or preemption truncation, and no failure cut it short.
    pub complete: bool,
    /// Deepest choice-point count observed in a single run.
    pub max_depth_seen: usize,
    /// Alternatives skipped because their reordering provably commutes.
    pub pruned_independent: usize,
    /// Alternatives skipped by terminal-state dedup.
    pub pruned_state: usize,
    /// Alternatives skipped by the depth/preemption bounds.
    pub bounded_out: usize,
    /// Distinct terminal-state fingerprints observed.
    pub distinct_states: usize,
    /// First failure found, minimized — `None` means every explored
    /// schedule passed.
    pub failure: Option<FailureReport>,
}

impl ExploreReport {
    /// How many schedules a naive enumeration (same bounds, no pruning)
    /// would have run: every pruned alternative is at least one schedule.
    pub fn naive_schedules(&self) -> usize {
        self.schedules + self.pruned_independent + self.pruned_state
    }

    /// `true` when the search covered its whole bounded space cleanly.
    pub fn certified(&self) -> bool {
        self.complete && self.failure.is_none()
    }
}

/// Outcome of replaying a recorded schedule.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Final virtual time, or the failure message the schedule reproduces.
    /// Replay divergence (a stale trace or nondeterministic model) is
    /// reported as an error mentioning "diverged".
    pub result: Result<SimTime, String>,
    /// Terminal state fingerprint of the replayed run.
    pub state_hash: u64,
    /// The full choice record of the replayed run (a superset of the forced
    /// trace when the trace was trimmed to non-default choices).
    pub trace: ScheduleTrace,
}

struct RunRecord {
    result: Result<SimTime, String>,
    choices: Vec<ChoiceRecord>,
    steps: Vec<StepRecord>,
    diverged: Option<String>,
    state_hash: u64,
}

fn run_forced<F: Fn(&mut Simulation)>(setup: &F, forced: &[TraceEntry]) -> RunRecord {
    let mut sim = Simulation::new();
    sim.core().set_explore(forced.to_vec());
    setup(&mut sim);
    let core = Arc::clone(sim.core());
    let result = sim.run_result();
    let (choices, steps, diverged) = core.take_explore();
    let mut h = Fnv::new();
    h.write_u64(core.sched_hash());
    h.write_u64(core.probe_value());
    if let Err(m) = &result {
        h.write_bytes(m.as_bytes());
    }
    RunRecord { result, choices, steps, diverged, state_hash: h.finish() }
}

/// Whether alternative `alt` of Tie choice `i` can be skipped: the
/// candidate's next step commutes with every step between the choice and
/// that step, so running it first reaches the same state the explored
/// schedule already certified.
fn prunable(rec: &RunRecord, i: usize, alt: usize) -> bool {
    let ch = &rec.choices[i];
    if ch.kind != ChoiceKind::Tie {
        return false;
    }
    let q = ch.candidates[alt];
    let s0 = ch.step;
    let Some(sq) = (s0 + 1..rec.steps.len()).find(|&s| rec.steps[s].pid == q) else {
        return false;
    };
    let q_events = &rec.steps[sq].events;
    rec.steps[s0..sq].iter().all(|b| blocks_independent(&b.events, q_events))
}

fn minimize<F: Fn(&mut Simulation)>(
    setup: &F,
    failing: RunRecord,
    budget: usize,
) -> (RunRecord, usize) {
    let Err(msg) = failing.result.clone() else { return (failing, 0) };
    let mut best = failing;
    let mut runs = 0;
    'outer: loop {
        for i in (0..best.choices.len()).rev() {
            let c = &best.choices[i];
            if c.chosen == c.default {
                continue;
            }
            if runs >= budget {
                break 'outer;
            }
            let mut cand: Vec<TraceEntry> = best.choices.iter().map(ChoiceRecord::entry).collect();
            cand[i].chosen = c.default;
            let r = run_forced(setup, &cand);
            runs += 1;
            if r.diverged.is_none() && matches!(&r.result, Err(m) if *m == msg) {
                best = r;
                // Indices may have shifted; restart the scan.
                continue 'outer;
            }
        }
        break;
    }
    (best, runs)
}

/// Trims trailing default choices: replay fills them back in as defaults.
fn trimmed_trace(choices: &[ChoiceRecord]) -> ScheduleTrace {
    let keep = choices.iter().rposition(|c| c.chosen != c.default).map_or(0, |i| i + 1);
    ScheduleTrace { entries: choices[..keep].iter().map(ChoiceRecord::entry).collect() }
}

impl Simulation {
    /// Systematically explores alternative schedules of the simulation that
    /// `setup` constructs (processes, channels, servers, assertions — built
    /// fresh for every run), depth-first over replayable choice traces.
    ///
    /// Stops at the first failing schedule, minimizes it greedily (flipping
    /// non-default choices back to default while the same failure message
    /// reproduces) and reports it as a [`FailureReport`]; writes the
    /// `.sched` file when [`ExploreBounds::trace_path`] is set. Models can
    /// register an [`Simulation::set_state_probe`] inside `setup` to feed
    /// terminal-state fingerprints.
    pub fn explore<F: Fn(&mut Simulation)>(bounds: &ExploreBounds, setup: F) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut truncated = false;
        let mut seen = BTreeSet::new();
        let mut stack: Vec<Vec<TraceEntry>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if report.schedules >= bounds.max_schedules {
                truncated = true;
                break;
            }
            let rec = run_forced(&setup, &prefix);
            report.schedules += 1;
            report.max_depth_seen = report.max_depth_seen.max(rec.choices.len());
            if let Some(d) = &rec.diverged {
                report.failure = Some(FailureReport {
                    message: format!("nondeterministic model: {d}"),
                    trace: trimmed_trace(&rec.choices),
                    state_hash: rec.state_hash,
                    trace_file: None,
                });
                return report;
            }
            if rec.result.is_err() {
                let min_budget = bounds.max_schedules.saturating_sub(report.schedules).min(64);
                let (best, extra) = minimize(&setup, rec, min_budget);
                report.schedules += extra;
                let trace = trimmed_trace(&best.choices);
                let trace_file = bounds.trace_path.as_ref().and_then(|p| {
                    trace.save(p).ok()?;
                    Some(p.clone())
                });
                report.failure = Some(FailureReport {
                    message: best.result.err().unwrap_or_default(),
                    trace,
                    state_hash: best.state_hash,
                    trace_file,
                });
                return report;
            }
            let fresh = seen.insert(rec.state_hash);
            report.distinct_states = seen.len();
            let depth = rec.choices.len().min(bounds.max_depth);
            if rec.choices[depth..].iter().any(|c| c.arity > 1) {
                truncated = true;
            }
            if bounds.state_dedup && !fresh {
                for c in &rec.choices[prefix.len().min(depth)..depth] {
                    report.pruned_state += c.arity as usize - 1;
                }
                continue;
            }
            for i in prefix.len()..depth {
                let ch = &rec.choices[i];
                let base_preempt =
                    rec.choices[..i].iter().filter(|c| c.chosen != c.default).count();
                for alt in 0..ch.arity {
                    if alt == ch.chosen {
                        continue;
                    }
                    let preempt = base_preempt + usize::from(alt != ch.default);
                    if preempt > bounds.max_preemptions {
                        truncated = true;
                        report.bounded_out += 1;
                        continue;
                    }
                    if bounds.prune_independent && prunable(&rec, i, alt as usize) {
                        report.pruned_independent += 1;
                        continue;
                    }
                    let mut p: Vec<TraceEntry> =
                        rec.choices[..i].iter().map(ChoiceRecord::entry).collect();
                    p.push(TraceEntry { kind: ch.kind, arity: ch.arity, chosen: alt });
                    stack.push(p);
                }
            }
        }
        report.complete = !truncated && stack.is_empty();
        report
    }

    /// Replays a recorded schedule through a fresh instance of the model.
    ///
    /// With the same `setup` the explorer (or a previous run) used, the
    /// forced trace reproduces the original run bit-identically: same
    /// failure message, same terminal state fingerprint, same choice
    /// record. A trace that no longer matches the model reports a
    /// "diverged" error instead of silently exploring something else.
    pub fn replay<F: Fn(&mut Simulation)>(trace: &ScheduleTrace, setup: F) -> ReplayOutcome {
        let rec = run_forced(&setup, &trace.entries);
        let result = match rec.diverged {
            Some(d) => Err(format!("schedule replay diverged: {d}")),
            None => rec.result,
        };
        ReplayOutcome {
            result,
            state_hash: rec.state_hash,
            trace: ScheduleTrace { entries: rec.choices.iter().map(ChoiceRecord::entry).collect() },
        }
    }
}

/// Incremental FNV-1a hasher — the fingerprint primitive used for schedule
/// state dedup (also reusable by models implementing state probes).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// Mixes a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Mixes a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Returns the current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}
