//! An in-memory LMDB-like record store with background prefetching.
//!
//! The paper converts ImageNet to LMDB and notes "ShmCaffe prefetches 10
//! sets of minibatch training data" so "the data feeding bottleneck is
//! negligible" (§IV-C). [`RecordDb`] is the keyed record store and
//! [`Prefetcher`] is the background thread that keeps a bounded queue of
//! decoded minibatches ahead of the consumer.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use shmcaffe_tensor::Tensor;

use crate::data::Dataset;
use crate::DnnError;

const RECORD_MAGIC: u32 = 0x53434442; // "SCDB"

/// One serialised training record: a feature tensor plus an integer label.
///
/// The wire format is `magic | label | dim_count | dims... | f32 data...`,
/// little-endian — a minimal stand-in for Caffe's `Datum` protobuf.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Feature dimensions (without batch axis).
    pub dims: Vec<u32>,
    /// Class label.
    pub label: u32,
    /// Row-major feature data.
    pub data: Vec<f32>,
}

impl Record {
    /// Serialises the record.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.dims.len() * 4 + self.data.len() * 4);
        buf.put_u32_le(RECORD_MAGIC);
        buf.put_u32_le(self.label);
        buf.put_u32_le(self.dims.len() as u32);
        for &d in &self.dims {
            buf.put_u32_le(d);
        }
        for &v in &self.data {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Deserialises a record.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::CorruptRecord`] on truncation, a bad magic number
    /// or a length mismatch.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DnnError> {
        if bytes.remaining() < 12 {
            return Err(DnnError::CorruptRecord("header truncated".to_string()));
        }
        let magic = bytes.get_u32_le();
        if magic != RECORD_MAGIC {
            return Err(DnnError::CorruptRecord(format!("bad magic 0x{magic:08x}")));
        }
        let label = bytes.get_u32_le();
        let dim_count = bytes.get_u32_le() as usize;
        if bytes.remaining() < dim_count * 4 {
            return Err(DnnError::CorruptRecord("dims truncated".to_string()));
        }
        let dims: Vec<u32> = (0..dim_count).map(|_| bytes.get_u32_le()).collect();
        let elems: usize = dims.iter().map(|&d| d as usize).product();
        if bytes.remaining() != elems * 4 {
            return Err(DnnError::CorruptRecord(format!(
                "expected {} data bytes, found {}",
                elems * 4,
                bytes.remaining()
            )));
        }
        let data: Vec<f32> = (0..elems).map(|_| bytes.get_f32_le()).collect();
        Ok(Record { dims, label, data })
    }
}

/// A sorted, keyed, in-memory record database (the LMDB stand-in).
///
/// # Example
///
/// ```rust
/// use shmcaffe_dnn::recorddb::{Record, RecordDb};
///
/// # fn main() -> Result<(), shmcaffe_dnn::DnnError> {
/// let db = RecordDb::new();
/// db.put("img_000", &Record { dims: vec![2], label: 1, data: vec![0.5, -0.5] });
/// let rec = db.get("img_000")?;
/// assert_eq!(rec.label, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct RecordDb {
    inner: Arc<RwLock<BTreeMap<String, Bytes>>>,
}

impl RecordDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        RecordDb::default()
    }

    /// Builds a database from a [`Dataset`], with zero-padded numeric keys
    /// (the Caffe convert_imageset convention).
    ///
    /// # Errors
    ///
    /// Propagates dataset sampling errors.
    pub fn from_dataset<D: Dataset>(dataset: &D) -> Result<Self, DnnError> {
        let db = RecordDb::new();
        let dims: Vec<u32> = dataset.feature_dims().iter().map(|&d| d as u32).collect();
        for i in 0..dataset.len() {
            let (data, label) = dataset.sample(i)?;
            db.put(&format!("{i:08}"), &Record { dims: dims.clone(), label: label as u32, data });
        }
        Ok(db)
    }

    /// Inserts or replaces a record.
    pub fn put(&self, key: &str, record: &Record) {
        self.inner.write().insert(key.to_string(), record.encode());
    }

    /// Fetches and decodes a record.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::MissingRecord`] or [`DnnError::CorruptRecord`].
    pub fn get(&self, key: &str) -> Result<Record, DnnError> {
        let bytes = self
            .inner
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| DnnError::MissingRecord(key.to_string()))?;
        Record::decode(bytes)
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys in sorted order.
    pub fn keys(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Total serialised size in bytes (the paper's "240 GB LMDB" analogue).
    pub fn byte_size(&self) -> usize {
        self.inner.read().values().map(|b| b.len()).sum()
    }
}

/// A [`Dataset`] view over a [`RecordDb`], so training can run directly
/// off the LMDB-like store (the paper's data path: ImageNet → LMDB →
/// data layer).
///
/// Keys are sorted and indexed once at construction; record shapes are
/// taken from the first record.
#[derive(Debug, Clone)]
pub struct RecordDbDataset {
    db: RecordDb,
    keys: Vec<String>,
    dims: Vec<usize>,
    classes: usize,
}

impl RecordDbDataset {
    /// Wraps a database, inferring feature dims from the first record and
    /// the class count from the maximum stored label.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::MissingRecord`] for an empty database or
    /// [`DnnError::CorruptRecord`] if records disagree in shape.
    pub fn new(db: RecordDb) -> Result<Self, DnnError> {
        let keys = db.keys();
        if keys.is_empty() {
            return Err(DnnError::MissingRecord("database is empty".to_string()));
        }
        let first = db.get(&keys[0])?;
        let dims: Vec<usize> = first.dims.iter().map(|&d| d as usize).collect();
        let mut classes = 0usize;
        for key in &keys {
            let rec = db.get(key)?;
            if rec.dims != first.dims {
                return Err(DnnError::CorruptRecord(format!(
                    "record {key} has shape {:?}, expected {:?}",
                    rec.dims, first.dims
                )));
            }
            classes = classes.max(rec.label as usize + 1);
        }
        Ok(RecordDbDataset { db, keys, dims, classes })
    }
}

impl Dataset for RecordDbDataset {
    fn len(&self) -> usize {
        self.keys.len()
    }
    fn feature_dims(&self) -> Vec<usize> {
        self.dims.clone()
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, index: usize) -> Result<(Vec<f32>, usize), DnnError> {
        let key = self
            .keys
            .get(index)
            .ok_or(DnnError::IndexOutOfRange { index, len: self.keys.len() })?;
        let rec = self.db.get(key)?;
        Ok((rec.data, rec.label as usize))
    }
}

/// A decoded minibatch ready for the solver.
#[derive(Debug, Clone)]
pub struct Minibatch {
    /// Batched features `(B, dims...)`.
    pub features: Tensor,
    /// Labels, one per row.
    pub labels: Vec<usize>,
}

/// Background minibatch prefetcher over a [`RecordDb`].
///
/// Spawns a producer thread that decodes batches of `batch_size` records
/// (cycling over `keys` in order) into a bounded queue of `depth` batches —
/// the paper uses depth 10.
#[derive(Debug)]
pub struct Prefetcher {
    rx: Receiver<Minibatch>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Starts prefetching `total_batches` minibatches, `depth` ahead.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or `batch_size == 0`.
    pub fn spawn(
        db: RecordDb,
        keys: Vec<String>,
        batch_size: usize,
        depth: usize,
        total_batches: usize,
    ) -> Self {
        assert!(!keys.is_empty(), "prefetcher needs at least one key");
        assert!(batch_size > 0, "batch_size must be positive");
        let (tx, rx) = bounded(depth.max(1));
        let handle = std::thread::Builder::new()
            .name("prefetcher".to_string())
            .spawn(move || {
                let mut cursor = 0usize;
                for _ in 0..total_batches {
                    let mut data = Vec::new();
                    let mut labels = Vec::with_capacity(batch_size);
                    let mut dims: Option<Vec<u32>> = None;
                    for _ in 0..batch_size {
                        let key = &keys[cursor % keys.len()];
                        cursor += 1;
                        match db.get(key) {
                            Ok(rec) => {
                                if dims.is_none() {
                                    dims = Some(rec.dims.clone());
                                }
                                data.extend_from_slice(&rec.data);
                                labels.push(rec.label as usize);
                            }
                            Err(_) => return, // db corrupted/cleared: stop producing
                        }
                    }
                    let dims = dims.expect("batch_size > 0 guarantees at least one record");
                    let mut shape = vec![labels.len()];
                    shape.extend(dims.iter().map(|&d| d as usize));
                    let features = match Tensor::from_vec(data, &shape) {
                        Ok(t) => t,
                        Err(_) => return,
                    };
                    if tx.send(Minibatch { features, labels }).is_err() {
                        return; // consumer dropped
                    }
                }
            })
            .expect("failed to spawn prefetcher thread");
        Prefetcher { rx, handle: Some(handle) }
    }

    /// Receives the next prefetched minibatch, or `None` when the producer
    /// has finished.
    pub fn next_batch(&self) -> Option<Minibatch> {
        self.rx.recv().ok()
    }

    /// Batches currently sitting in the queue.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Drain so the producer unblocks, then join.
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(&mut self.rx, bounded(1).1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticBlobs;

    #[test]
    fn record_roundtrip() {
        let rec = Record { dims: vec![2, 3], label: 7, data: (0..6).map(|v| v as f32).collect() };
        let decoded = Record::decode(rec.encode()).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Record::decode(Bytes::from_static(b"xx")).is_err());
        assert!(Record::decode(Bytes::from_static(&[0u8; 16])).is_err());
        // Valid header but truncated payload.
        let rec = Record { dims: vec![4], label: 0, data: vec![1.0; 4] };
        let mut bytes = rec.encode().to_vec();
        bytes.truncate(bytes.len() - 4);
        assert!(Record::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn db_put_get_missing() {
        let db = RecordDb::new();
        assert!(db.is_empty());
        let rec = Record { dims: vec![1], label: 3, data: vec![9.0] };
        db.put("k", &rec);
        assert_eq!(db.get("k").unwrap(), rec);
        assert!(matches!(db.get("nope"), Err(DnnError::MissingRecord(_))));
        assert_eq!(db.len(), 1);
        assert!(db.byte_size() > 0);
    }

    #[test]
    fn from_dataset_preserves_everything() {
        let ds = SyntheticBlobs::new(3, 4, 12, 0.1, 5);
        let db = RecordDb::from_dataset(&ds).unwrap();
        assert_eq!(db.len(), 12);
        for i in 0..12 {
            let rec = db.get(&format!("{i:08}")).unwrap();
            let (f, l) = ds.sample(i).unwrap();
            assert_eq!(rec.data, f);
            assert_eq!(rec.label as usize, l);
        }
    }

    #[test]
    fn prefetcher_produces_batches_in_key_order() {
        let ds = SyntheticBlobs::new(2, 3, 8, 0.1, 5);
        let db = RecordDb::from_dataset(&ds).unwrap();
        let pf = Prefetcher::spawn(db, (0..8).map(|i| format!("{i:08}")).collect(), 4, 2, 3);
        let b1 = pf.next_batch().unwrap();
        assert_eq!(b1.features.dims(), &[4, 3]);
        assert_eq!(b1.labels, vec![0, 1, 0, 1]);
        let b2 = pf.next_batch().unwrap();
        assert_eq!(b2.labels.len(), 4);
        // Third batch wraps around to the start.
        let b3 = pf.next_batch().unwrap();
        assert_eq!(b3.labels, b1.labels);
        assert!(pf.next_batch().is_none());
    }

    #[test]
    fn recorddb_dataset_mirrors_source() {
        let ds = SyntheticBlobs::new(3, 4, 15, 0.1, 8);
        let db = RecordDb::from_dataset(&ds).unwrap();
        let view = RecordDbDataset::new(db).unwrap();
        assert_eq!(view.len(), 15);
        assert_eq!(view.feature_dims(), vec![4]);
        assert_eq!(view.num_classes(), 3);
        for i in 0..15 {
            assert_eq!(view.sample(i).unwrap(), ds.sample(i).unwrap());
        }
        assert!(view.sample(15).is_err());
        // Minibatch assembly through the Dataset default method.
        let (x, y) = view.minibatch(&[0, 2, 4]).unwrap();
        assert_eq!(x.dims(), &[3, 4]);
        assert_eq!(y, vec![0, 2, 1]);
    }

    #[test]
    fn recorddb_dataset_rejects_empty_and_ragged() {
        assert!(RecordDbDataset::new(RecordDb::new()).is_err());
        let db = RecordDb::new();
        db.put("a", &Record { dims: vec![2], label: 0, data: vec![1.0, 2.0] });
        db.put("b", &Record { dims: vec![3], label: 0, data: vec![1.0, 2.0, 3.0] });
        assert!(matches!(RecordDbDataset::new(db), Err(DnnError::CorruptRecord(_))));
    }

    #[test]
    fn prefetcher_drop_mid_stream_does_not_hang() {
        let ds = SyntheticBlobs::new(2, 3, 8, 0.1, 5);
        let db = RecordDb::from_dataset(&ds).unwrap();
        let pf = Prefetcher::spawn(db, (0..8).map(|i| format!("{i:08}")).collect(), 2, 2, 1000);
        let _ = pf.next_batch();
        drop(pf); // must join cleanly
    }
}
