use std::fmt;

use shmcaffe_rdma::MemoryRegion;
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::SimContext;

use crate::server::{ShmKey, SmbServer};
use crate::SmbError;

/// An allocated SMB buffer: the SHM key plus the access key (rkey) returned
/// by the server (paper Fig. 2 step "SHM access key").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmbBuffer {
    /// The generation key identifying the segment.
    pub key: ShmKey,
    /// The RDMA access key granting direct access.
    pub mr: MemoryRegion,
    /// Modelled wire size of a full-buffer transfer, in bytes.
    pub wire_bytes: u64,
}

impl SmbBuffer {
    /// Buffer length in f32 elements.
    pub fn len(&self) -> usize {
        self.mr.len
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.mr.len == 0
    }
}

/// A worker-side handle to the SMB server, bound to the worker's node.
///
/// All operations charge virtual time: control messages pay the configured
/// control latency; data movement pays RDMA wire time on the fabric.
#[derive(Clone)]
pub struct SmbClient {
    server: SmbServer,
    local: NodeId,
}

impl fmt::Debug for SmbClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmbClient").field("local", &self.local).finish()
    }
}

impl SmbClient {
    /// Binds a client on `local` to `server`.
    pub fn new(server: SmbServer, local: NodeId) -> Self {
        SmbClient { server, local }
    }

    /// The node this client runs on.
    pub fn local_node(&self) -> NodeId {
        self.local
    }

    /// The server this client talks to.
    pub fn server(&self) -> &SmbServer {
        &self.server
    }

    fn control_round_trip(&self, ctx: &SimContext) {
        let lat = self.server.control_latency();
        ctx.sleep(lat + lat);
    }

    /// Creates a named shared buffer on the server (master-only in the
    /// ShmCaffe protocol) and returns the SHM key to broadcast.
    ///
    /// `wire_bytes` models the buffer's logical size for timing; `None`
    /// uses the physical size.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::DuplicateName`] for a reused name.
    pub fn create(
        &self,
        ctx: &SimContext,
        name: &str,
        elems: usize,
        wire_bytes: Option<u64>,
    ) -> Result<ShmKey, SmbError> {
        self.control_round_trip(ctx);
        self.server.create_segment(name, elems, wire_bytes)
    }

    /// Requests allocation of the segment named by a broadcast SHM key and
    /// receives the access key (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::UnknownKey`] for a dead key.
    pub fn alloc(&self, ctx: &SimContext, key: ShmKey) -> Result<SmbBuffer, SmbError> {
        self.control_round_trip(ctx);
        let (mr, wire_bytes) = self.server.segment(key)?;
        Ok(SmbBuffer { key, mr, wire_bytes })
    }

    /// Deallocates the segment (any holder may free; the ShmCaffe master
    /// frees at shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::UnknownKey`] if already freed.
    pub fn free(&self, ctx: &SimContext, buf: SmbBuffer) -> Result<(), SmbError> {
        self.control_round_trip(ctx);
        self.server.destroy_segment(buf.key)
    }

    /// RDMA-reads the whole buffer into `out`, charging the wire time of
    /// the buffer's logical size.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] if `out.len() != buf.len()`.
    pub fn read(&self, ctx: &SimContext, buf: &SmbBuffer, out: &mut [f32]) -> Result<(), SmbError> {
        if out.len() != buf.len() {
            return Err(SmbError::SizeMismatch { expected: buf.len(), got: out.len() });
        }
        let cfg = self.server.config();
        let wire = (buf.wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
        // Functional copy, zero-time (the wire time is charged below along
        // the full path: server DRAM bus -> server HCA -> client HCA).
        self.server
            .rdma()
            .read_wire(ctx, self.local, &buf.mr, 0, out, 0)?;
        let fabric = self.server.rdma().fabric();
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[
                self.server.memory_resource(),
                fabric.hca_tx(self.server.node()),
                fabric.hca_rx(self.local),
            ],
            wire,
            Some(cfg.stream_bps),
        );
        Ok(())
    }

    /// RDMA-writes `data` over the whole buffer, charging the wire time of
    /// the buffer's logical size, and bumps the segment version.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] if `data.len() != buf.len()`.
    pub fn write(&self, ctx: &SimContext, buf: &SmbBuffer, data: &[f32]) -> Result<(), SmbError> {
        if data.len() != buf.len() {
            return Err(SmbError::SizeMismatch { expected: buf.len(), got: data.len() });
        }
        let cfg = self.server.config();
        let wire = (buf.wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
        self.server
            .rdma()
            .write_wire(ctx, self.local, &buf.mr, 0, data, 0)?;
        let fabric = self.server.rdma().fabric();
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[
                fabric.hca_tx(self.local),
                fabric.hca_rx(self.server.node()),
                self.server.memory_resource(),
            ],
            wire,
            Some(cfg.stream_bps),
        );
        self.server.bump_version(ctx, buf.key);
        Ok(())
    }

    /// Reads/writes a small sub-range at its true (unscaled) wire size —
    /// used for the control-info region where workers share progress
    /// counters (paper §III-E).
    ///
    /// # Errors
    ///
    /// Returns RDMA bounds errors.
    pub fn read_range(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        out: &mut [f32],
    ) -> Result<(), SmbError> {
        self.server.rdma().read(ctx, self.local, &buf.mr, offset, out)?;
        Ok(())
    }

    /// Writes a small sub-range at its true wire size (see
    /// [`SmbClient::read_range`]).
    ///
    /// # Errors
    ///
    /// Returns RDMA bounds errors.
    pub fn write_range(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        data: &[f32],
    ) -> Result<(), SmbError> {
        self.server.rdma().write(ctx, self.local, &buf.mr, offset, data)?;
        Ok(())
    }

    /// Sends an accumulate request: server-side `dst += src` (paper eq. 7,
    /// steps T.A2–T.A4). Charges one control round trip plus the engine's
    /// queueing and service time; returns the destination's new version.
    ///
    /// # Errors
    ///
    /// Returns key and length-mismatch errors.
    pub fn accumulate(
        &self,
        ctx: &SimContext,
        src: &SmbBuffer,
        dst: &SmbBuffer,
    ) -> Result<u64, SmbError> {
        self.control_round_trip(ctx);
        self.server.accumulate(ctx, src.key, dst.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_rdma::RdmaFabric;
    use shmcaffe_simnet::channel::SimChannel;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;

    fn setup(nodes: usize) -> SmbServer {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(nodes)));
        SmbServer::new(rdma).unwrap()
    }

    #[test]
    fn create_alloc_read_write_roundtrip() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let key = client.create(&ctx, "buf", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            let mut out = [0.0f32; 4];
            client.read(&ctx, &buf, &mut out).unwrap();
            assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
            client.free(&ctx, buf).unwrap();
        });
        sim.run();
        assert_eq!(server.segment_count(), 0);
    }

    #[test]
    fn duplicate_name_rejected() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            client.create(&ctx, "dup", 4, None).unwrap();
            assert!(matches!(
                client.create(&ctx, "dup", 4, None),
                Err(SmbError::DuplicateName(_))
            ));
        });
        sim.run();
    }

    #[test]
    fn alloc_of_unknown_key_fails() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            assert!(matches!(client.alloc(&ctx, ShmKey(99)), Err(SmbError::UnknownKey(_))));
        });
        sim.run();
    }

    #[test]
    fn size_mismatch_rejected() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let key = client.create(&ctx, "b", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let mut small = [0.0f32; 2];
            assert!(matches!(
                client.read(&ctx, &buf, &mut small),
                Err(SmbError::SizeMismatch { .. })
            ));
            assert!(matches!(
                client.write(&ctx, &buf, &[0.0; 8]),
                Err(SmbError::SizeMismatch { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn accumulate_folds_increment_into_global() {
        // The SEASGD shared-buffer layout of Fig. 5: one global W_g plus a
        // private ΔW per worker, accumulated server-side.
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("master", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg_key = client.create(&ctx, "W_g", 4, None).unwrap();
            let dw_key = client.create(&ctx, "dW_0", 4, None).unwrap();
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &wg, &[1.0; 4]).unwrap();
            client.write(&ctx, &dw, &[0.5, -0.5, 1.0, 0.0]).unwrap();
            let v1 = client.accumulate(&ctx, &dw, &wg).unwrap();
            let mut out = [0.0f32; 4];
            client.read(&ctx, &wg, &mut out).unwrap();
            assert_eq!(out, [1.5, 0.5, 2.0, 1.0]);
            // Accumulate twice: increments add.
            let v2 = client.accumulate(&ctx, &dw, &wg).unwrap();
            assert!(v2 > v1);
            client.read(&ctx, &wg, &mut out).unwrap();
            assert_eq!(out, [2.0, 0.0, 3.0, 1.0]);
        });
        sim.run();
        assert!(server.memory_bytes() > 0);
    }

    #[test]
    fn accumulate_length_mismatch_rejected() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let a = client.alloc(&ctx, client.create(&ctx, "a", 4, None).unwrap()).unwrap();
            let b = client.alloc(&ctx, client.create(&ctx, "b", 8, None).unwrap()).unwrap();
            assert!(matches!(
                client.accumulate(&ctx, &a, &b),
                Err(SmbError::LengthMismatch { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn key_broadcast_handshake_between_workers() {
        // Master creates, "broadcasts" the key through shared state, the
        // slave allocs with the key and sees the master's data.
        let server = setup(2);
        let key_box = std::sync::Arc::new(parking_lot::Mutex::new(None::<ShmKey>));
        let notify = SimChannel::<ShmKey>::new("key_bcast");
        let mut sim = Simulation::new();
        {
            let s = server.clone();
            let notify = notify.clone();
            let key_box = key_box.clone();
            sim.spawn("master", move |ctx| {
                let client = SmbClient::new(s, NodeId(0));
                let key = client.create(&ctx, "shared", 2, None).unwrap();
                let buf = client.alloc(&ctx, key).unwrap();
                client.write(&ctx, &buf, &[7.0, 8.0]).unwrap();
                *key_box.lock() = Some(key);
                notify.send(&ctx, key);
            });
        }
        {
            let s = server.clone();
            sim.spawn("slave", move |ctx| {
                let key = notify.recv(&ctx);
                let client = SmbClient::new(s, NodeId(1));
                let buf = client.alloc(&ctx, key).unwrap();
                let mut out = [0.0f32; 2];
                client.read(&ctx, &buf, &mut out).unwrap();
                assert_eq!(out, [7.0, 8.0]);
            });
        }
        sim.run();
    }

    #[test]
    fn notifications_carry_versions() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            let key = client.create(&ctx, "n", 2, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let sub = s.subscribe(key);
            client.write(&ctx, &buf, &[1.0, 1.0]).unwrap();
            assert_eq!(sub.try_recv(&ctx), Some(1));
            assert_eq!(s.version(key).unwrap(), 1);
        });
        sim.run();
    }

    #[test]
    fn concurrent_accumulates_serialize_on_engine() {
        // Two workers accumulate 100 MB-wire segments: the memory bus
        // (15 GB/s, three passes per byte) serialises them at 20 ms each.
        let server = setup(2);
        let mut sim = Simulation::new();
        for i in 0..2usize {
            let s = server.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                let client = SmbClient::new(s, NodeId(i));
                let dw = client
                    .alloc(&ctx, client.create(&ctx, &format!("dw{i}"), 4, Some(100_000_000)).unwrap())
                    .unwrap();
                let wg = client
                    .alloc(&ctx, client.create(&ctx, &format!("wg{i}"), 4, Some(100_000_000)).unwrap())
                    .unwrap();
                client.accumulate(&ctx, &dw, &wg).unwrap();
            });
        }
        let end = sim.run();
        // Engine service: 2 x 3x100MB / 15 GB/s = 40 ms serialised, plus
        // control latencies.
        assert!(end.as_millis_f64() >= 39.9, "{}", end.as_millis_f64());
        assert!(end.as_millis_f64() < 45.0, "{}", end.as_millis_f64());
    }
}
