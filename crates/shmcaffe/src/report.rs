//! Training run reports: per-worker iteration timing and convergence
//! trajectories, the raw material of every table and figure in §IV.

use serde::{Deserialize, Serialize};
use shmcaffe_simnet::stats::RunningStats;
use shmcaffe_simnet::SimTime;

/// One convergence evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Local iteration of the evaluating worker.
    pub iter: u64,
    /// Virtual time of the evaluation.
    pub time: SimTime,
    /// Held-out loss.
    pub loss: f32,
    /// Top-1 accuracy.
    pub top1: f32,
    /// Top-k accuracy (top-5 in the paper).
    pub topk: f32,
}

/// Timing and progress of one worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Worker rank.
    pub rank: usize,
    /// Completed training iterations.
    pub iters: u64,
    /// Per-iteration computation time (ms): forward + backward + local
    /// update (paper `T_comp`).
    pub comp_ms: RunningStats,
    /// Per-iteration non-overlapped communication time (ms): global-weight
    /// read, local mixing, and any wait for the update thread (paper
    /// `T_comm = max(T_comp, T_wwi+T_ugw) − T_comp + T_rgw + T_ulw`).
    pub comm_ms: RunningStats,
    /// Virtual time at which this worker finished.
    pub finished_at: SimTime,
    /// Mean training loss over the final 10% of iterations.
    pub final_loss: f32,
    /// Whether this worker crashed mid-run (fault injection).
    pub crashed: bool,
    /// Whether this worker crashed and later rejoined from a checkpoint
    /// (`crashed` stays true: the crash happened).
    #[serde(default)]
    pub rejoined: bool,
    /// How many iterations behind the fleet's fastest member the rejoin
    /// checkpoint was at rejoin time — the staleness the rejoined worker
    /// re-entered training with.
    #[serde(default)]
    pub rejoin_staleness_iters: u64,
    /// Transient transport faults this worker's SMB client observed.
    pub faults: u64,
    /// Failed attempts later recovered by a retry.
    pub retries: u64,
    /// Worst-case recovery latency of a retried op (ms).
    pub recovery_ms: f64,
    /// Weight increments dropped because pushing them kept failing.
    pub dropped_updates: u64,
    /// Weight increments buffered while a network partition cut this
    /// worker off from the memory server (degraded mode, bounded by
    /// [`crate::ShmCaffeConfig::partition_staleness_cap`]).
    #[serde(default)]
    pub partition_buffered: u64,
    /// Weight increments dropped because the partition buffer was full
    /// (or still held entries when the run ended).
    #[serde(default)]
    pub partition_dropped: u64,
    /// Buffered increments successfully replayed into the global buffer
    /// after the partition healed.
    #[serde(default)]
    pub reconciled_updates: u64,
    /// Mutations rejected with a stale fencing epoch before this worker's
    /// client refreshed against the promoted primary.
    #[serde(default)]
    pub fenced_writes: u64,
    /// Per-exchange time spent waiting for the previous exchange's ΔW
    /// pushes to drain (T.A5 gate), ms. Under the pipelined exchange this
    /// wait is per-chunk and overlaps with compute, so it shrinks toward
    /// zero; under the monolithic path it is the full push drain.
    #[serde(default)]
    pub wait_ms: RunningStats,
    /// Per-exchange time blocked on `W_g` reads (T1/T.R3), ms. The
    /// pipelined exchange double-buffers the chunk reads, so only the
    /// first chunk's fill and any reader stall is visible here.
    #[serde(default)]
    pub read_ms: RunningStats,
    /// Per-exchange time spent in the elastic mixing pass (T2), ms.
    #[serde(default)]
    pub mix_ms: RunningStats,
    /// Corruption events this worker's SMB client detected end-to-end
    /// (poisoned CRC pages plus wire checksum mismatches).
    #[serde(default)]
    pub corruptions_detected: u64,
    /// Poisoned pages this worker repaired from the replicated standby.
    #[serde(default)]
    pub corruptions_repaired: u64,
    /// Detected corruptions with no clean copy left to repair from.
    #[serde(default)]
    pub corruptions_unrepairable: u64,
}

impl WorkerReport {
    /// Creates an empty report for `rank`.
    pub fn new(rank: usize) -> Self {
        WorkerReport {
            rank,
            iters: 0,
            comp_ms: RunningStats::new(),
            comm_ms: RunningStats::new(),
            finished_at: SimTime::ZERO,
            final_loss: f32::NAN,
            crashed: false,
            rejoined: false,
            rejoin_staleness_iters: 0,
            faults: 0,
            retries: 0,
            recovery_ms: 0.0,
            dropped_updates: 0,
            partition_buffered: 0,
            partition_dropped: 0,
            reconciled_updates: 0,
            fenced_writes: 0,
            wait_ms: RunningStats::new(),
            read_ms: RunningStats::new(),
            mix_ms: RunningStats::new(),
            corruptions_detected: 0,
            corruptions_repaired: 0,
            corruptions_unrepairable: 0,
        }
    }

    /// Mean total iteration time in milliseconds.
    pub fn iter_ms(&self) -> f64 {
        self.comp_ms.mean() + self.comm_ms.mean()
    }

    /// Communication share of the iteration time (the paper's
    /// "communication ratio", Figs 12–14).
    pub fn comm_ratio(&self) -> f64 {
        let total = self.iter_ms();
        if total == 0.0 {
            0.0
        } else {
            self.comm_ms.mean() / total
        }
    }
}

/// The result of one platform run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Platform name ("ShmCaffe-A", "Caffe-MPI", ...).
    pub platform: String,
    /// Per-worker timing, indexed by rank.
    pub workers: Vec<WorkerReport>,
    /// Total virtual wall-clock time of the run.
    pub wall: SimTime,
    /// Convergence trajectory (evaluated on rank 0 when enabled).
    pub evals: Vec<EvalPoint>,
    /// Final globally averaged weights (convergence runs), if collected.
    #[serde(skip)]
    pub final_weights: Option<Vec<f32>>,
    /// Stale-epoch mutations the replicated server pair rejected
    /// (server-side fencing count — every split-brain write attempt that
    /// was refused instead of applied).
    #[serde(default)]
    pub fenced_rejections: u64,
    /// Divergent unreplicated segments the demoted primary discarded
    /// during partition-heal reconciliation.
    #[serde(default)]
    pub reconcile_discarded: u64,
    /// Segments the demoted primary resynced from the promoted standby
    /// during partition-heal reconciliation.
    #[serde(default)]
    pub reconcile_resynced: u64,
}

impl TrainingReport {
    /// Creates an empty report shell.
    pub fn new(platform: &str, n_workers: usize) -> Self {
        TrainingReport {
            platform: platform.to_string(),
            workers: (0..n_workers).map(WorkerReport::new).collect(),
            wall: SimTime::ZERO,
            evals: Vec::new(),
            final_weights: None,
            fenced_rejections: 0,
            reconcile_discarded: 0,
            reconcile_resynced: 0,
        }
    }

    /// Mean per-iteration computation time across workers (ms).
    pub fn mean_comp_ms(&self) -> f64 {
        mean(self.workers.iter().map(|w| w.comp_ms.mean()))
    }

    /// Mean per-iteration non-overlapped communication time (ms).
    pub fn mean_comm_ms(&self) -> f64 {
        mean(self.workers.iter().map(|w| w.comm_ms.mean()))
    }

    /// Mean iteration time (ms).
    pub fn mean_iter_ms(&self) -> f64 {
        self.mean_comp_ms() + self.mean_comm_ms()
    }

    /// Fleet communication ratio.
    pub fn comm_ratio(&self) -> f64 {
        let total = self.mean_iter_ms();
        if total == 0.0 {
            0.0
        } else {
            self.mean_comm_ms() / total
        }
    }

    /// Total iterations completed across all workers.
    pub fn total_iters(&self) -> u64 {
        self.workers.iter().map(|w| w.iters).sum()
    }

    /// Samples processed per virtual second across the fleet.
    pub fn throughput_samples_per_sec(&self, batch_per_worker: usize) -> f64 {
        if self.wall == SimTime::ZERO {
            return 0.0;
        }
        self.total_iters() as f64 * batch_per_worker as f64 / self.wall.as_secs_f64()
    }

    /// The last evaluation point, if any.
    pub fn final_eval(&self) -> Option<&EvalPoint> {
        self.evals.last()
    }

    /// Number of workers that crashed mid-run.
    pub fn crashed_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.crashed).count()
    }

    /// Number of crashed workers that rejoined from a checkpoint.
    pub fn rejoined_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.rejoined).count()
    }

    /// Total transient transport faults observed across the fleet.
    pub fn total_faults(&self) -> u64 {
        self.workers.iter().map(|w| w.faults).sum()
    }

    /// Total recovered retries across the fleet.
    pub fn total_retries(&self) -> u64 {
        self.workers.iter().map(|w| w.retries).sum()
    }

    /// Worst-case recovery latency across the fleet (ms).
    pub fn max_recovery_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.recovery_ms).fold(0.0, f64::max)
    }

    /// Total dropped weight increments across the fleet.
    pub fn total_dropped_updates(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped_updates).sum()
    }

    /// Total increments buffered while partitioned, across the fleet.
    pub fn total_partition_buffered(&self) -> u64 {
        self.workers.iter().map(|w| w.partition_buffered).sum()
    }

    /// Total increments dropped past the partition staleness cap.
    pub fn total_partition_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.partition_dropped).sum()
    }

    /// Total buffered increments replayed after partitions healed.
    pub fn total_reconciled_updates(&self) -> u64 {
        self.workers.iter().map(|w| w.reconciled_updates).sum()
    }

    /// Total stale-epoch rejections observed by worker clients.
    pub fn total_fenced_writes(&self) -> u64 {
        self.workers.iter().map(|w| w.fenced_writes).sum()
    }

    /// Total corruption events detected end-to-end across the fleet.
    pub fn total_corruptions_detected(&self) -> u64 {
        self.workers.iter().map(|w| w.corruptions_detected).sum()
    }

    /// Total poisoned pages repaired from the standby across the fleet.
    pub fn total_corruptions_repaired(&self) -> u64 {
        self.workers.iter().map(|w| w.corruptions_repaired).sum()
    }

    /// Total unrepairable corruptions across the fleet.
    pub fn total_corruptions_unrepairable(&self) -> u64 {
        self.workers.iter().map(|w| w.corruptions_unrepairable).sum()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

impl std::fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} workers, wall {:.3}s, comp {:.1}ms, comm {:.1}ms ({:.1}%)",
            self.platform,
            self.workers.len(),
            self.wall.as_secs_f64(),
            self.mean_comp_ms(),
            self.mean_comm_ms(),
            self.comm_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_simnet::SimDuration;

    #[test]
    fn ratios_and_means() {
        let mut r = TrainingReport::new("test", 2);
        r.workers[0].comp_ms.record(100.0);
        r.workers[0].comm_ms.record(25.0);
        r.workers[1].comp_ms.record(100.0);
        r.workers[1].comm_ms.record(75.0);
        assert_eq!(r.mean_comp_ms(), 100.0);
        assert_eq!(r.mean_comm_ms(), 50.0);
        assert!((r.comm_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_accounts_all_workers() {
        let mut r = TrainingReport::new("test", 2);
        r.workers[0].iters = 100;
        r.workers[1].iters = 100;
        r.wall = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(r.throughput_samples_per_sec(60), 200.0 * 60.0 / 10.0);
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let r = TrainingReport::new("empty", 0);
        assert_eq!(r.mean_iter_ms(), 0.0);
        assert_eq!(r.comm_ratio(), 0.0);
        assert_eq!(r.throughput_samples_per_sec(60), 0.0);
        assert!(r.final_eval().is_none());
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn worker_report_ratio() {
        let mut w = WorkerReport::new(0);
        w.comp_ms.record(257.0);
        w.comm_ms.record(90.0);
        assert!((w.comm_ratio() - 90.0 / 347.0).abs() < 1e-12);
    }
}
