//! The lint allowlist: `analysis.toml` at the workspace root.
//!
//! Suppressions are deliberate, reviewed artifacts: every entry must carry a
//! non-empty `justification` string, and entries that no longer match any
//! violation are reported so the file cannot rot. The parser handles the
//! small TOML subset the file needs (`[[allow]]` tables of string keys) and
//! is hand-rolled so the checker stays dependency-free.

use std::fmt;

use crate::rules::{Violation, ALL_RULES};

/// One suppression entry from `analysis.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being suppressed.
    pub rule: String,
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Optional substring the offending source line must contain, to pin
    /// the suppression to a specific site instead of a whole file.
    pub contains: Option<String>,
    /// Why the violation is acceptable. Required and non-empty.
    pub justification: String,
    /// Line in `analysis.toml` where the entry starts (for messages).
    pub line: usize,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.path)?;
        if let Some(c) = &self.contains {
            write!(f, " (contains {c:?})")?;
        }
        Ok(())
    }
}

impl AllowEntry {
    /// Whether this entry suppresses `v`.
    pub fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule
            && self.path == v.path
            && self.contains.as_ref().is_none_or(|c| v.excerpt.contains(c.as_str()))
    }
}

/// Parses the allowlist text.
///
/// # Errors
///
/// Returns a descriptive message for malformed syntax, unknown keys or
/// rules, and entries missing a `justification`.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(entry) = current.take() {
                validate(&entry)?;
                entries.push(entry);
            }
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                contains: None,
                justification: String::new(),
                line: lineno,
            });
            continue;
        }
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("analysis.toml:{lineno}: key outside an [[allow]] table"))?;
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("analysis.toml:{lineno}: expected `key = \"value\"`"))?;
        let value = unquote(value.trim())
            .ok_or_else(|| format!("analysis.toml:{lineno}: value must be a quoted string"))?;
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "contains" => entry.contains = Some(value),
            "justification" => entry.justification = value,
            other => {
                return Err(format!("analysis.toml:{lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(entry) = current.take() {
        validate(&entry)?;
        entries.push(entry);
    }
    Ok(entries)
}

fn validate(entry: &AllowEntry) -> Result<(), String> {
    let at = entry.line;
    if entry.rule.is_empty() {
        return Err(format!("analysis.toml:{at}: entry is missing `rule`"));
    }
    if !ALL_RULES.contains(&entry.rule.as_str()) {
        return Err(format!("analysis.toml:{at}: unknown rule `{}`", entry.rule));
    }
    if entry.path.is_empty() {
        return Err(format!("analysis.toml:{at}: entry is missing `path`"));
    }
    if entry.justification.trim().is_empty() {
        return Err(format!(
            "analysis.toml:{at}: suppression for [{}] {} has no justification \
             (a non-empty `justification = \"...\"` is required)",
            entry.rule, entry.path
        ));
    }
    Ok(())
}

fn unquote(v: &str) -> Option<String> {
    let v = v.strip_prefix('"')?;
    let v = v.strip_suffix('"')?;
    // The subset does not need escapes beyond \" and \\.
    Some(v.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Splits `violations` into (unsuppressed, indices of used entries).
pub fn apply(violations: Vec<Violation>, entries: &[AllowEntry]) -> (Vec<Violation>, Vec<bool>) {
    let mut used = vec![false; entries.len()];
    let remaining = violations
        .into_iter()
        .filter(|v| {
            let mut suppressed = false;
            for (i, e) in entries.iter().enumerate() {
                if e.matches(v) {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    (remaining, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_HASH_COLLECTIONS;

    fn violation() -> Violation {
        Violation {
            rule: RULE_HASH_COLLECTIONS,
            path: "crates/simnet/tests/proptests.rs".to_string(),
            line: 41,
            excerpt: "let mut last_per: std::collections::HashMap<usize, u64> = ..;".to_string(),
        }
    }

    #[test]
    fn entry_with_justification_suppresses() {
        let entries = parse_allowlist(
            r#"
[[allow]]
rule = "hash-collections"
path = "crates/simnet/tests/proptests.rs"
contains = "last_per"
justification = "point lookups only, never iterated"
"#,
        )
        .unwrap();
        let (rest, used) = apply(vec![violation()], &entries);
        assert!(rest.is_empty());
        assert_eq!(used, vec![true]);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let err = parse_allowlist(
            "[[allow]]\nrule = \"hash-collections\"\npath = \"crates/simnet/x.rs\"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err =
            parse_allowlist("[[allow]]\nrule = \"nope\"\npath = \"x\"\njustification = \"y\"\n")
                .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn contains_pins_the_site() {
        let entries = parse_allowlist(
            r#"
[[allow]]
rule = "hash-collections"
path = "crates/simnet/tests/proptests.rs"
contains = "some_other_map"
justification = "not this one"
"#,
        )
        .unwrap();
        let (rest, used) = apply(vec![violation()], &entries);
        assert_eq!(rest.len(), 1);
        assert_eq!(used, vec![false]);
    }

    #[test]
    fn unused_entries_are_reported_as_such() {
        let entries = parse_allowlist(
            r#"
[[allow]]
rule = "ambient-time"
path = "crates/dnn/src/net.rs"
justification = "stale"
"#,
        )
        .unwrap();
        let (rest, used) = apply(vec![violation()], &entries);
        assert_eq!(rest.len(), 1);
        assert_eq!(used, vec![false]);
    }
}
