//! Fixture for the `data-plane-panic` rule: one genuine `.unwrap()` and one
//! genuine `.expect(` in non-test code, surrounded by look-alikes that must
//! NOT fire — comments, string literals, fallible combinators, and a
//! `#[cfg(test)]` module full of unwraps.

use std::collections::BTreeMap;

/// Comment look-alike: never call .unwrap() on a data-plane result.
pub fn resolve(map: &BTreeMap<u64, u32>, key: u64) -> u32 {
    let banner = "string look-alike: .unwrap() and .expect( stay quiet here";
    let _ = banner;
    let rkey = map.get(&key).unwrap();
    *rkey
}

pub fn resolve_or_die(map: &BTreeMap<u64, u32>, key: u64) -> u32 {
    *map.get(&key).expect("rkey registered before use")
}

/// Fallible combinators are the sanctioned escape hatch.
pub fn resolve_soft(map: &BTreeMap<u64, u32>, key: u64) -> u32 {
    map.get(&key).copied().unwrap_or(0)
}

pub fn must_fail(r: Result<u32, String>) -> String {
    r.expect_err("fixture: failure is the expected outcome")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        let map = super::BTreeMap::from([(1u64, 7u32)]);
        assert_eq!(map.get(&1).copied().ok_or(()).unwrap(), 7);
    }
}
