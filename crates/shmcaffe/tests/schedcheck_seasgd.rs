//! Bounded schedule exploration of a real SEASGD slice (DESIGN.md §5i).
//!
//! Two workers run one compute/exchange round each against a live SMB
//! server through the production [`ElasticExchanger`] — update threads,
//! chunk channels, doorbells and all. The explorer drives every tie, wake
//! and delivery choice point within a small budget; the protocol's own
//! internal assertions (chunk accounting, guard pairing, fold bookkeeping)
//! plus an end-state center-variable check must hold under every explored
//! interleaving. The budget is deliberately tiny: this is a smoke-depth
//! model check of the real protocol stack, not a full certification.

use shmcaffe::seasgd::{ElasticExchanger, SeasgdBuffers};
use shmcaffe::trainer::{ModeledTrainerFactory, Trainer, TrainerFactory};
use shmcaffe::ShmCaffeConfig;
use shmcaffe_models::WorkloadModel;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{ExploreBounds, SimDuration, Simulation};
use shmcaffe_smb::{ShmKey, SmbClient, SmbServer};

const PARAM_LEN: usize = 64;
const WORKERS: usize = 2;

fn setup(sim: &mut Simulation) {
    let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(WORKERS)));
    let server = SmbServer::new(rdma).expect("fresh fabric hosts a memory server");
    let workload = WorkloadModel {
        param_elems: PARAM_LEN,
        ..WorkloadModel::custom("slice", 1_000, SimDuration::from_millis(1))
    };
    let factory = ModeledTrainerFactory::new(workload, JitterModel::NONE, 7);
    let cfg = ShmCaffeConfig {
        pipelined_exchange: true,
        exchange_chunk_elems: PARAM_LEN / 2, // two tiles per exchange
        jitter: JitterModel::NONE,
        ..Default::default()
    };

    // Worker 0 creates W_g and hands the key to worker 1 over a channel —
    // the same creation→use happens-before edge production startup has.
    let wg_handoff = SimChannel::<ShmKey>::new("wg_key");
    for rank in 0..WORKERS {
        let server = server.clone();
        let factory = factory.clone();
        let handoff = wg_handoff.clone();
        sim.spawn(&format!("worker{rank}"), move |ctx| {
            let mut trainer = factory.make(rank, WORKERS);
            let param_len = trainer.param_len();
            let wire = trainer.wire_bytes();
            let client = SmbClient::new(server, NodeId(rank));
            let wg_key = if rank == 0 {
                let key = client.create(&ctx, "W_g", param_len, Some(wire)).unwrap();
                let wg = client.alloc(&ctx, key).unwrap();
                let mut w0 = vec![0.0f32; param_len];
                trainer.read_weights(&mut w0);
                client.write(&ctx, &wg, &w0).unwrap();
                handoff.send(&ctx, key);
                key
            } else {
                handoff.recv(&ctx)
            };
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw_key = client.create(&ctx, &format!("dW_{rank}"), param_len, Some(wire)).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();

            let mut ex = ElasticExchanger::spawn(
                &ctx,
                client,
                SeasgdBuffers { wg, dw },
                param_len,
                wire,
                &cfg,
                "slice",
            );
            let _loss = trainer.compute_gradients(&ctx);
            trainer.apply_update(&ctx);
            ex.exchange(&ctx, &mut trainer).expect("fault-free fabric");
            let mixed = ex.mixed_weights();
            assert!(
                mixed.iter().all(|v| v.is_finite()),
                "worker {rank}: mixed weights must stay finite"
            );
            ex.finish(&ctx);
        });
    }
    // The center variable must have absorbed both workers' folds by the
    // time the simulation drains, whatever the interleaving.
    let server_check = server.clone();
    sim.spawn("check", move |ctx| {
        ctx.sleep(SimDuration::from_millis(500));
        let key = server_check.lookup("W_g").expect("W_g exists");
        let version = server_check.version(key).expect("W_g is live");
        assert!(version >= WORKERS as u64, "both folds must reach W_g, version {version}");
    });
    sim.set_state_probe(move || server.state_hash());
}

/// A small budget of alternative schedules over the full production
/// exchange: every explored interleaving must pass the protocol's own
/// assertions and converge the center variable.
#[test]
fn seasgd_slice_explores_clean_within_budget() {
    let bounds = ExploreBounds {
        max_schedules: 12,
        max_depth: 48,
        max_preemptions: 2,
        ..ExploreBounds::default()
    };
    let report = Simulation::explore(&bounds, setup);
    assert!(report.failure.is_none(), "SEASGD slice must survive exploration: {report:?}");
    assert!(report.schedules >= 2, "alternative schedules must exist: {report:?}");
    println!(
        "schedcheck seasgd slice: {} explored / {} naive ({} pruned independent, \
         {} bounded out, max depth {})",
        report.schedules,
        report.naive_schedules(),
        report.pruned_independent,
        report.bounded_out,
        report.max_depth_seen
    );
}
