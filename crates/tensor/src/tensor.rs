use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Shape, TensorError};

/// A dense, row-major, single-precision tensor.
///
/// `Tensor` is the Caffe "blob" equivalent: a contiguous `Vec<f32>` plus a
/// [`Shape`]. All layer activations, weights and gradients in the DNN
/// substrate are `Tensor`s.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::Tensor;
///
/// # fn main() -> Result<(), shmcaffe_tensor::TensorError> {
/// let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// *t.at_mut(&[0, 0]) = -1.0;
/// assert_eq!(t.sum(), 19.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                data_len: data.len(),
                shape_len: shape.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A rank-1 tensor holding `data`.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: Shape::new(&[data.len()]), data: data.to_vec() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents as a slice (convenience for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.len() {
            return Err(TensorError::ReshapeMismatch { have: self.len(), want: new_shape.len() });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Sets every element to zero (gradient reset between iterations).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Copies data from `src`, which must have identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, src: &Tensor) -> Result<(), TensorError> {
        if self.shape != src.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: src.dims().to_vec(),
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first occurrence). `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .fold(None, |best, (i, &v)| match best {
                None => Some((i, v)),
                Some((_, bv)) if v > bv => Some((i, v)),
                some => some,
            })
            .map(|(i, _)| i)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 when empty).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())
    }
}

impl AsRef<[f32]> for Tensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl AsMut<[f32]> for Tensor {
    fn as_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { data_len: 5, shape_len: 6 });
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        t.reshape(&[2, 2]).unwrap();
        assert_eq!(t.at(&[1, 1]), 4.0);
        assert!(t.reshape(&[3, 3]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.abs_max(), 3.0);
        assert!((t.norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_takes_first_of_ties_and_handles_empty() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[3]).unwrap();
        assert_eq!(t.argmax(), Some(0));
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn copy_from_checks_shape() {
        let mut a = Tensor::zeros(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        a.copy_from(&b).unwrap();
        assert_eq!(a.sum(), 4.0);
        let c = Tensor::ones(&[4]);
        assert!(a.copy_from(&c).is_err());
    }

    #[test]
    fn fill_and_zero() {
        let mut t = Tensor::ones(&[3]);
        t.fill(2.5);
        assert_eq!(t.sum(), 7.5);
        t.fill_zero();
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn serde_roundtrip_via_debug_clone() {
        // serde works structurally; spot-check Clone/PartialEq semantics here.
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let u = t.clone();
        assert_eq!(t, u);
    }
}
