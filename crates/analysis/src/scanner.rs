//! A small lexical scanner that blanks out the non-code parts of a Rust
//! source file — comments, string/char literals — while preserving line
//! structure, so the line-oriented rules in [`crate::rules`] only ever see
//! executable tokens. A full parser would be overkill: every invariant the
//! lint enforces is visible at the token level.

/// Returns a copy of `src` where the contents of comments (line and nested
/// block), string literals (plain, raw, byte) and character literals are
/// replaced by spaces. Newlines are preserved so byte offsets map to the
/// same line numbers as in the original text.
pub fn strip_non_code(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                out.push_str("  ");
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => i = blank_string(&chars, i, &mut out),
            'r' | 'b' if !prev_is_word(&chars, i) => {
                if let Some(next) = raw_or_byte_string_end_of_prefix(&chars, i) {
                    // `next` points at the opening quote (or is a raw-string
                    // prefix); blank the prefix then the literal body.
                    for _ in i..next {
                        out.push(' ');
                    }
                    if chars.get(next) == Some(&'"') {
                        let hashes = next - i - leading_letters(&chars, i);
                        if hashes > 0 || raw_prefix(&chars, i) {
                            i = blank_raw_string(&chars, next, hashes, &mut out);
                        } else {
                            i = blank_string(&chars, next, &mut out);
                        }
                    } else {
                        i = next;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Distinguish a char literal from a lifetime: a literal is
                // `'\...'` or `'x'`; anything else (`'static`, `'_`) is a
                // lifetime and passes through.
                let is_char_literal = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(_) => chars.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char_literal {
                    out.push(' ');
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        out.push(' ');
                        i += 1;
                        if i < chars.len() {
                            out.push(' ');
                            i += 1;
                        }
                        // Multi-char escapes (\u{..}, \x..) up to the quote.
                        while i < chars.len() && chars[i] != '\'' {
                            out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                    } else if i < chars.len() {
                        out.push(' ');
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn prev_is_word(chars: &[char], i: usize) -> bool {
    i > 0 && is_word_char(chars[i - 1])
}

/// Whether `c` can be part of an identifier for boundary checks.
pub fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn raw_prefix(chars: &[char], i: usize) -> bool {
    chars[i] == 'r' || (chars[i] == 'b' && chars.get(i + 1) == Some(&'r'))
}

fn leading_letters(chars: &[char], i: usize) -> usize {
    let mut n = 0;
    while matches!(chars.get(i + n), Some('r') | Some('b')) && n < 2 {
        n += 1;
    }
    n
}

/// If position `i` starts a string-literal prefix (`r`, `b`, `br` with
/// optional `#`s), returns the index of the opening quote; `None` if this is
/// an ordinary identifier (e.g. `r#type` raw identifiers, or plain `b`).
fn raw_or_byte_string_end_of_prefix(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i + leading_letters(chars, i);
    if j == i {
        return None;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(j)
    } else {
        None
    }
}

fn blank_string(chars: &[char], start: usize, out: &mut String) -> usize {
    let mut i = start;
    out.push(' ');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push(' ');
                i += 1;
                if i < chars.len() {
                    out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                return i + 1;
            }
            '\n' => {
                out.push('\n');
                i += 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

fn blank_raw_string(chars: &[char], quote: usize, hashes: usize, out: &mut String) -> usize {
    let mut i = quote;
    out.push(' ');
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..=hashes {
                    out.push(' ');
                }
                return i + 1 + hashes;
            }
        }
        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
        i += 1;
    }
    i
}

/// Byte offsets (into `line`) of identifier-boundary occurrences of `word`.
pub fn word_occurrences(line: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !is_word_char(c));
        let after_ok = line[at + word.len()..].chars().next().is_none_or(|c| !is_word_char(c));
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + word.len().max(1);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let s = strip_non_code("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = strip_non_code("a /* outer /* HashMap */ still comment */ b");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("still"));
        assert!(s.starts_with('a') && s.trim_end().ends_with('b'));
    }

    #[test]
    fn strings_and_escapes_are_blanked() {
        let s = strip_non_code(r#"call("Instant \" SystemTime", x)"#);
        assert!(!s.contains("Instant"));
        assert!(s.contains("call("));
        assert!(s.contains(", x)"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = strip_non_code(r###"let p = r#"thread_rng"#; done"###);
        assert!(!s.contains("thread_rng"));
        assert!(s.contains("done"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = strip_non_code("fn f<'a>(x: &'a str) { let c = 'H'; }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains('H'));
    }

    #[test]
    fn newlines_inside_literals_keep_line_numbers() {
        let src = "let s = \"a\nb\";\nlet t = 3;";
        let s = strip_non_code(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(s.lines().nth(2).unwrap().contains("let t = 3;"));
    }

    #[test]
    fn word_boundaries_reject_substrings() {
        assert!(word_occurrences("Instantiates the fabric", "Instant").is_empty());
        assert!(word_occurrences("MyHashMapLike", "HashMap").is_empty());
        assert_eq!(word_occurrences("use std::time::Instant;", "Instant").len(), 1);
        assert_eq!(word_occurrences("HashMap<u32, HashMap<u32, u32>>", "HashMap").len(), 2);
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let s = strip_non_code("let r#type = 1; let b = 2;");
        assert!(s.contains("r#type"));
        assert!(s.contains("let b = 2;"));
    }
}
