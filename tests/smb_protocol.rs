//! Integration tests of the full SMB protocol stack: the Fig. 2 handshake
//! at scale, buffer lifecycle, progress board, and fabric accounting.

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_repro::mpi::{MpiData, MpiWorld};
use shmcaffe_repro::rdma::RdmaFabric;
use shmcaffe_repro::simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_repro::simnet::Simulation;
use shmcaffe_repro::smb::progress::ProgressBoard;
use shmcaffe_repro::smb::{ShmKey, SmbClient, SmbServer};

#[test]
fn sixteen_worker_handshake_and_accumulate() {
    const N: usize = 16;
    const DIM: usize = 32;
    let fabric = Fabric::new(ClusterSpec::paper_testbed(4));
    let rdma = RdmaFabric::new(fabric.clone());
    let server = SmbServer::new(rdma).unwrap();
    let mpi = MpiWorld::new(fabric.clone(), N);
    let final_wg: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sim = Simulation::new();
    for rank in 0..N {
        let server = server.clone();
        let mut comm = mpi.comm(rank);
        let node = mpi.node_of(rank);
        let final_wg = Arc::clone(&final_wg);
        sim.spawn(&format!("w{rank}"), move |ctx| {
            let client = SmbClient::new(server, node);
            // Fig. 2: master creates, broadcasts the SHM key over MPI.
            let key = if rank == 0 {
                let key = client.create(&ctx, "wg", DIM, None).unwrap();
                comm.broadcast(&ctx, 0, Some(MpiData::U64s(vec![key.0])));
                key
            } else {
                ShmKey(comm.broadcast(&ctx, 0, None).into_u64s()[0])
            };
            let wg = client.alloc(&ctx, key).unwrap();

            // Every worker accumulates a one-hot-ish contribution.
            let dw_key = client.create(&ctx, &format!("dw{rank}"), DIM, None).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            let mine: Vec<f32> =
                (0..DIM).map(|i| if i == rank % DIM { 1.0 } else { 0.5 }).collect();
            client.write(&ctx, &dw, &mine).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();

            comm.barrier(&ctx);
            if rank == 0 {
                let mut out = vec![0.0f32; DIM];
                client.read(&ctx, &wg, &mut out).unwrap();
                *final_wg.lock() = out;
            }
        });
    }
    sim.run();
    let wg = final_wg.lock().clone();
    // Each of DIM slots: 16 contributions of 0.5 plus one extra 0.5 for
    // the matching rank (16 ranks over 32 slots: slots 0..16 get +0.5).
    for (i, &v) in wg.iter().enumerate() {
        let expected = 16.0 * 0.5 + if i < N { 0.5 } else { 0.0 };
        assert!((v - expected).abs() < 1e-4, "slot {i}: {v} vs {expected}");
    }
    assert_eq!(server.segment_count(), N + 1);
}

#[test]
fn buffer_lifecycle_and_version_tracking() {
    let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
    let server = SmbServer::new(rdma).unwrap();
    let s2 = server.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::new(s2.clone(), NodeId(0));
        let key = client.create(&ctx, "buf", 8, None).unwrap();
        assert_eq!(s2.lookup("buf"), Some(key));
        let buf = client.alloc(&ctx, key).unwrap();
        assert_eq!(s2.version(key).unwrap(), 0);
        client.write(&ctx, &buf, &[1.0; 8]).unwrap();
        client.write(&ctx, &buf, &[2.0; 8]).unwrap();
        assert_eq!(s2.version(key).unwrap(), 2);

        let sub = s2.subscribe(key);
        client.write(&ctx, &buf, &[3.0; 8]).unwrap();
        assert_eq!(sub.try_recv(&ctx), Some(3));

        client.free(&ctx, buf).unwrap();
        assert_eq!(s2.lookup("buf"), None);
        assert!(s2.version(key).is_err());
        // The name can be reused after free.
        let key2 = client.create(&ctx, "buf", 4, None).unwrap();
        assert_ne!(key, key2);
    });
    sim.run();
    assert_eq!(server.segment_count(), 1);
}

#[test]
fn progress_board_spans_nodes() {
    const N: usize = 8;
    let fabric = Fabric::new(ClusterSpec::paper_testbed(2));
    let rdma = RdmaFabric::new(fabric);
    let server = SmbServer::new(rdma).unwrap();
    let mpi = MpiWorld::new(server.rdma().fabric().clone(), N);
    let observed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sim = Simulation::new();
    for rank in 0..N {
        let server = server.clone();
        let mut comm = mpi.comm(rank);
        let node = mpi.node_of(rank);
        let observed = Arc::clone(&observed);
        sim.spawn(&format!("w{rank}"), move |ctx| {
            let client = SmbClient::new(server, node);
            let key = if rank == 0 {
                let (_b, key) = ProgressBoard::create(&client, &ctx, "ctrl", N).unwrap();
                comm.broadcast(&ctx, 0, Some(MpiData::U64s(vec![key.0])));
                key
            } else {
                ShmKey(comm.broadcast(&ctx, 0, None).into_u64s()[0])
            };
            let board = ProgressBoard::attach(&client, &ctx, key, N).unwrap();
            board.publish(&client, &ctx, rank, (rank as u64 + 1) * 10, false).unwrap();
            comm.barrier(&ctx);
            if rank == 0 {
                let snap = board.snapshot(&client, &ctx).unwrap();
                *observed.lock() = snap.workers.iter().map(|w| w.iterations).collect();
            }
        });
    }
    sim.run();
    let iters = observed.lock().clone();
    assert_eq!(iters, vec![10, 20, 30, 40, 50, 60, 70, 80]);
}

#[test]
fn fabric_accounting_tracks_smb_traffic() {
    let fabric = Fabric::new(ClusterSpec::paper_testbed(1));
    let rdma = RdmaFabric::new(fabric.clone());
    let server = SmbServer::new(rdma).unwrap();
    let mem_node = server.node();
    let s2 = server.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::new(s2, NodeId(0));
        let key = client.create(&ctx, "b", 16, Some(1_000_000)).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        client.write(&ctx, &buf, &[0.5; 16]).unwrap();
        let mut out = [0.0f32; 16];
        client.read(&ctx, &buf, &mut out).unwrap();
    });
    sim.run();
    // One logical MB each way (+4.5% protocol, float-rounded) through the
    // worker's HCA.
    let tx = fabric.hca_tx(NodeId(0)).total_bytes();
    let rx = fabric.hca_rx(NodeId(0)).total_bytes();
    assert!((tx as i64 - 1_045_000).abs() <= 1, "tx {tx}");
    assert!((rx as i64 - 1_045_000).abs() <= 1, "rx {rx}");
    // The memory server's DRAM bus saw both transfers (within rounding).
    assert!(server.memory_bytes() >= 2 * 1_044_998, "{}", server.memory_bytes());
    let _ = mem_node;
}
