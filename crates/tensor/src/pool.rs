//! Max and average 2-D pooling, forward and backward.
//!
//! Pooling shares the window geometry type with convolution
//! ([`crate::conv::Conv2dGeometry`] with `in_channels` interpreted as the
//! pooled channel count; pooling is applied per channel).
//!
//! Both directions are batch-parallel: every image's output (or input
//! gradient) slice is disjoint, so images run as independent tasks on the
//! crate worker pool with results identical at any thread count.

use crate::conv::Conv2dGeometry;
use crate::parallel::{self, Task};

/// Pooling operator variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window (records argmax indices for backward).
    Max,
    /// Arithmetic mean over the window.
    Average,
}

/// Pooling forward over a batch.
///
/// * `input`: `(N, C, H, W)`, `output`: `(N, C, H_out, W_out)`.
/// * `argmax`: for [`PoolKind::Max`], records the flat input offset of each
///   selected element (same length as `output`); pass an empty slice for
///   average pooling.
///
/// # Panics
///
/// Panics on size mismatches or invalid geometry.
pub fn pool_forward(
    kind: PoolKind,
    geom: &Conv2dGeometry,
    batch: usize,
    input: &[f32],
    output: &mut [f32],
    argmax: &mut [usize],
) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let channels = geom.in_channels;
    let in_len = geom.in_len();
    let out_len = channels * out_h * out_w;
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(output.len(), batch * out_len, "output size mismatch");
    if kind == PoolKind::Max {
        assert_eq!(argmax.len(), output.len(), "argmax size mismatch");
    }

    // One image per task; `argmax` entries stay absolute offsets into the
    // full batched input, so the per-image closure carries the image index.
    let forward_one = |n: usize, out_image: &mut [f32], argmax_image: &mut [usize]| {
        for c in 0..channels {
            let chan_base = n * in_len + c * geom.in_h * geom.in_w;
            let chan = &input[chan_base..chan_base + geom.in_h * geom.in_w];
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let out_idx = c * out_h * out_w + oh * out_w + ow;
                    let h0 = (oh * geom.stride_h) as isize - geom.pad_h as isize;
                    let w0 = (ow * geom.stride_w) as isize - geom.pad_w as isize;
                    match kind {
                        PoolKind::Max => {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0usize;
                            for kh in 0..geom.kernel_h {
                                let ih = h0 + kh as isize;
                                if ih < 0 || ih as usize >= geom.in_h {
                                    continue;
                                }
                                for kw in 0..geom.kernel_w {
                                    let iw = w0 + kw as isize;
                                    if iw < 0 || iw as usize >= geom.in_w {
                                        continue;
                                    }
                                    let idx = ih as usize * geom.in_w + iw as usize;
                                    if chan[idx] > best {
                                        best = chan[idx];
                                        best_idx = chan_base + idx;
                                    }
                                }
                            }
                            // A window entirely in padding yields 0.
                            if best == f32::NEG_INFINITY {
                                best = 0.0;
                                best_idx = usize::MAX;
                            }
                            out_image[out_idx] = best;
                            argmax_image[out_idx] = best_idx;
                        }
                        PoolKind::Average => {
                            let mut sum = 0.0;
                            let mut count = 0usize;
                            for kh in 0..geom.kernel_h {
                                let ih = h0 + kh as isize;
                                if ih < 0 || ih as usize >= geom.in_h {
                                    continue;
                                }
                                for kw in 0..geom.kernel_w {
                                    let iw = w0 + kw as isize;
                                    if iw < 0 || iw as usize >= geom.in_w {
                                        continue;
                                    }
                                    sum += chan[ih as usize * geom.in_w + iw as usize];
                                    count += 1;
                                }
                            }
                            out_image[out_idx] = if count > 0 { sum / count as f32 } else { 0.0 };
                        }
                    }
                }
            }
        }
    };

    let mut argmax_chunks: Vec<&mut [usize]> = if kind == PoolKind::Max {
        argmax.chunks_mut(out_len).collect()
    } else {
        (0..batch).map(|_| &mut [][..]).collect()
    };
    if batch <= 1 || parallel::current_threads() <= 1 {
        for (n, (out_image, am)) in
            output.chunks_mut(out_len).zip(argmax_chunks.drain(..)).enumerate()
        {
            forward_one(n, out_image, am);
        }
    } else {
        let forward_one = &forward_one;
        let tasks: Vec<Task<'_>> = output
            .chunks_mut(out_len)
            .zip(argmax_chunks.drain(..))
            .enumerate()
            .map(|(n, (out_image, am))| -> Task<'_> {
                Box::new(move || forward_one(n, out_image, am))
            })
            .collect();
        parallel::run_tasks(tasks);
    }
}

/// Pooling backward over a batch. `d_input` is overwritten.
///
/// # Panics
///
/// Panics on size mismatches or invalid geometry.
pub fn pool_backward(
    kind: PoolKind,
    geom: &Conv2dGeometry,
    batch: usize,
    d_output: &[f32],
    argmax: &[usize],
    d_input: &mut [f32],
) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let channels = geom.in_channels;
    let in_len = geom.in_len();
    let out_len = channels * out_h * out_w;
    assert_eq!(d_output.len(), batch * out_len, "d_output size mismatch");
    assert_eq!(d_input.len(), batch * in_len, "d_input size mismatch");
    if kind == PoolKind::Max {
        assert_eq!(argmax.len(), d_output.len(), "argmax size mismatch");
    }

    // Every scatter target of image `n` lies inside its own input slice
    // (argmax offsets embed the `n * in_len` base), so images are
    // independent tasks; each zeroes and fills its own gradient slice.
    let backward_one = |n: usize, d_image: &mut [f32]| {
        d_image.iter_mut().for_each(|v| *v = 0.0);
        match kind {
            PoolKind::Max => {
                let base = n * in_len;
                let d_out_image = &d_output[n * out_len..(n + 1) * out_len];
                let argmax_image = &argmax[n * out_len..(n + 1) * out_len];
                for (&src, &g) in argmax_image.iter().zip(d_out_image.iter()) {
                    if src != usize::MAX {
                        d_image[src - base] += g;
                    }
                }
            }
            PoolKind::Average => {
                for c in 0..channels {
                    let chan_base = c * geom.in_h * geom.in_w;
                    for oh in 0..out_h {
                        for ow in 0..out_w {
                            let out_idx = n * out_len + c * out_h * out_w + oh * out_w + ow;
                            let h0 = (oh * geom.stride_h) as isize - geom.pad_h as isize;
                            let w0 = (ow * geom.stride_w) as isize - geom.pad_w as isize;
                            // Count valid cells to divide the gradient evenly.
                            let mut cells = Vec::with_capacity(geom.kernel_h * geom.kernel_w);
                            for kh in 0..geom.kernel_h {
                                let ih = h0 + kh as isize;
                                if ih < 0 || ih as usize >= geom.in_h {
                                    continue;
                                }
                                for kw in 0..geom.kernel_w {
                                    let iw = w0 + kw as isize;
                                    if iw < 0 || iw as usize >= geom.in_w {
                                        continue;
                                    }
                                    cells.push(chan_base + ih as usize * geom.in_w + iw as usize);
                                }
                            }
                            if !cells.is_empty() {
                                let share = d_output[out_idx] / cells.len() as f32;
                                for idx in cells {
                                    d_image[idx] += share;
                                }
                            }
                        }
                    }
                }
            }
        }
    };

    if batch <= 1 || parallel::current_threads() <= 1 {
        for (n, d_image) in d_input.chunks_mut(in_len).enumerate() {
            backward_one(n, d_image);
        }
    } else {
        let backward_one = &backward_one;
        let tasks: Vec<Task<'_>> = d_input
            .chunks_mut(in_len)
            .enumerate()
            .map(|(n, d_image)| -> Task<'_> { Box::new(move || backward_one(n, d_image)) })
            .collect();
        parallel::run_tasks(tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_2x2_stride2(hw: usize) -> Conv2dGeometry {
        Conv2dGeometry::square(1, hw, 2, 2, 0)
    }

    #[test]
    fn max_pool_forward_picks_maxima() {
        let g = geom_2x2_stride2(4);
        let input = vec![1., 2., 5., 6., 3., 4., 7., 8., 9., 10., 13., 14., 11., 12., 15., 16.];
        let mut output = vec![0.0; 4];
        let mut argmax = vec![0usize; 4];
        pool_forward(PoolKind::Max, &g, 1, &input, &mut output, &mut argmax);
        assert_eq!(output, vec![4., 8., 12., 16.]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let g = geom_2x2_stride2(4);
        let input: Vec<f32> = (1..=16).map(|v| v as f32).collect();
        let mut output = vec![0.0; 4];
        let mut argmax = vec![0usize; 4];
        pool_forward(PoolKind::Max, &g, 1, &input, &mut output, &mut argmax);
        let d_output = vec![1.0, 2.0, 3.0, 4.0];
        let mut d_input = vec![0.0; 16];
        pool_backward(PoolKind::Max, &g, 1, &d_output, &argmax, &mut d_input);
        assert_eq!(d_input.iter().sum::<f32>(), 10.0);
        // Maxima are at positions 5, 7, 13, 15 of the row-major input.
        assert_eq!(d_input[5], 1.0);
        assert_eq!(d_input[7], 2.0);
        assert_eq!(d_input[13], 3.0);
        assert_eq!(d_input[15], 4.0);
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let g = geom_2x2_stride2(2);
        let input = vec![1., 2., 3., 4.];
        let mut output = vec![0.0; 1];
        pool_forward(PoolKind::Average, &g, 1, &input, &mut output, &mut []);
        assert_eq!(output, vec![2.5]);
        let mut d_input = vec![0.0; 4];
        pool_backward(PoolKind::Average, &g, 1, &[4.0], &[], &mut d_input);
        assert_eq!(d_input, vec![1.0; 4]);
    }

    #[test]
    fn avg_pool_with_padding_divides_by_valid_count() {
        // 2x2 input, 2x2 kernel, stride 2, pad 1 -> 2x2 output; corner windows
        // see exactly one valid cell.
        let g = Conv2dGeometry::square(1, 2, 2, 2, 1);
        let input = vec![4.0, 8.0, 12.0, 16.0];
        let mut output = vec![0.0; 4];
        pool_forward(PoolKind::Average, &g, 1, &input, &mut output, &mut []);
        assert_eq!(output, vec![4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn multi_channel_batched_max_pool() {
        let g = Conv2dGeometry::square(2, 2, 2, 2, 0);
        // Two images, two channels each of 2x2.
        let input = vec![
            1., 2., 3., 4., // n0 c0
            5., 6., 7., 8., // n0 c1
            -1., -2., -3., -4., // n1 c0
            0., 0., 0., 9., // n1 c1
        ];
        let mut output = vec![0.0; 4];
        let mut argmax = vec![0usize; 4];
        pool_forward(PoolKind::Max, &g, 2, &input, &mut output, &mut argmax);
        assert_eq!(output, vec![4., 8., -1., 9.]);
    }

    #[test]
    fn max_pool_gradient_is_subgradient_of_forward() {
        // Finite-difference check on a non-tied input.
        let g = geom_2x2_stride2(4);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 * 0.713).sin() * 3.0).collect();
        let d_output = vec![0.7, -0.3, 1.1, 0.4];
        let loss = |x: &[f32]| -> f32 {
            let mut out = vec![0.0; 4];
            let mut am = vec![0usize; 4];
            pool_forward(PoolKind::Max, &g, 1, x, &mut out, &mut am);
            out.iter().zip(d_output.iter()).map(|(a, b)| a * b).sum()
        };
        let mut out = vec![0.0; 4];
        let mut argmax = vec![0usize; 4];
        pool_forward(PoolKind::Max, &g, 1, &input, &mut out, &mut argmax);
        let mut d_input = vec![0.0; 16];
        pool_backward(PoolKind::Max, &g, 1, &d_output, &argmax, &mut d_input);

        let eps = 1e-3;
        let mut x = input.clone();
        for i in 0..16 {
            let orig = x[i];
            x[i] = orig + eps;
            let lp = loss(&x);
            x[i] = orig - eps;
            let lm = loss(&x);
            x[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((d_input[i] - numeric).abs() < 1e-2, "i={i}");
        }
    }
}
