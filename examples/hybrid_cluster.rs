//! Hybrid SGD on the paper's full 16-GPU testbed: 4 nodes × 4 GPUs, SSGD
//! via ncclAllReduce inside every node, SEASGD between node groups through
//! the Soft Memory Box (paper §III-D, Fig. 4 — the `16 (S4×A4)`
//! configuration of Table III).
//!
//! Trains a real convolutional proxy on synthetic images and prints the
//! per-group timing plus the final accuracy.
//!
//! Run with `cargo run --release --example hybrid_cluster`.

use std::sync::Arc;

use shmcaffe_repro::dnn::data::SyntheticImages;
use shmcaffe_repro::dnn::{LrPolicy, SolverConfig};
use shmcaffe_repro::models::proxies;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::ShmCaffeH;
use shmcaffe_repro::platform::trainer::RealTrainerFactory;
use shmcaffe_repro::simnet::topology::ClusterSpec;

fn main() {
    // Small procedural "images": 1x12x12 oriented gratings, 3 classes.
    let dataset = Arc::new(SyntheticImages::new(3, 1, 12, 960, 0.1, 11));

    let factory = RealTrainerFactory::builder()
        .dataset(dataset)
        .net_builder(|seed| proxies::small_cnn(1, 12, 3, seed).expect("geometry fits"))
        .solver(SolverConfig {
            base_lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0005,
            policy: LrPolicy::Step { gamma: 0.1, step_size: 120 },
            clip_gradients: None,
        })
        .batch(12)
        .build();

    let cfg = ShmCaffeConfig {
        max_iters: 150,
        eval_every: 50,
        moving_rate: 0.2,
        update_interval: 1,
        ..Default::default()
    };

    // 4 groups of 4 GPUs: S4 x A4.
    let platform = ShmCaffeH::new(ClusterSpec::paper_testbed(4), 4, 4, cfg);
    println!("running ShmCaffe-H with {} workers (S4 x A4)...", platform.total_workers());
    let report = platform.run(factory).expect("platform runs");

    println!("{report}");
    println!("per-worker breakdown (group roots carry the SEASGD exchange):");
    for w in &report.workers {
        println!(
            "  worker {:>2} (group {}, member {}): comp {:>6.1} ms, comm {:>6.1} ms ({:.0}%)",
            w.rank,
            w.rank / 4,
            w.rank % 4,
            w.comp_ms.mean(),
            w.comm_ms.mean(),
            w.comm_ratio() * 100.0
        );
    }
    if let Some(e) = report.final_eval() {
        println!("final accuracy: top-1 {:.1}%", e.top1 * 100.0);
        assert!(e.top1 > 0.7, "hybrid training should learn the gratings task");
    }
}
