//! Fully-connected ("inner product" in Caffe terminology) layer.

use shmcaffe_tensor::gemm::{gemm, Transpose};
use shmcaffe_tensor::init::{seeded_rng, Filler};
use shmcaffe_tensor::Tensor;

use crate::{DnnError, Layer, Phase};

/// A fully-connected layer: `Y = X W^T + b`.
///
/// Input of shape `(N, ...)` is flattened to `(N, in_features)`; output is
/// `(N, out_features)`.
///
/// # Example
///
/// ```rust
/// use shmcaffe_dnn::layers::InnerProduct;
/// use shmcaffe_dnn::{Layer, Phase};
/// use shmcaffe_tensor::{Tensor, init::Filler};
///
/// # fn main() -> Result<(), shmcaffe_dnn::DnnError> {
/// let mut fc = InnerProduct::new("fc", 3, 2, Filler::Constant(1.0), 0);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3])?;
/// let y = fc.forward(&x, Phase::Train)?;
/// assert_eq!(y.data(), &[6.0, 6.0]); // each output sums the input
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InnerProduct {
    name: String,
    in_features: usize,
    out_features: usize,
    weights: Tensor,
    bias: Tensor,
    d_weights: Tensor,
    d_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl InnerProduct {
    /// Creates a layer with `in_features` inputs and `out_features` outputs,
    /// weights drawn from `filler` (seeded deterministically from `seed` and
    /// the layer name) and zero bias.
    pub fn new(
        name: &str,
        in_features: usize,
        out_features: usize,
        filler: Filler,
        seed: u64,
    ) -> Self {
        let mut weights = Tensor::zeros(&[out_features, in_features]);
        let mut rng = seeded_rng(seed ^ hash_name(name));
        filler.fill(&mut rng, in_features, weights.data_mut());
        InnerProduct {
            name: name.to_string(),
            in_features,
            out_features,
            weights,
            bias: Tensor::zeros(&[out_features]),
            d_weights: Tensor::zeros(&[out_features, in_features]),
            d_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight matrix `(out, in)`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }
}

/// Stable, dependency-free name hash for per-layer seeding.
pub(crate) fn hash_name(name: &str) -> u64 {
    name.bytes().fold(1469598103934665603u64, |h, b| (h ^ b as u64).wrapping_mul(1099511628211))
}

impl Layer for InnerProduct {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let batch = input.dims().first().copied().unwrap_or(0);
        if batch == 0 || input.len() != batch * self.in_features {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!(
                    "expected (N, {}), got shape {:?}",
                    self.in_features,
                    input.dims()
                ),
            });
        }
        let mut output = Tensor::zeros(&[batch, self.out_features]);
        // Y = X * W^T
        gemm(
            Transpose::No,
            Transpose::Yes,
            batch,
            self.out_features,
            self.in_features,
            1.0,
            input.data(),
            self.weights.data(),
            0.0,
            output.data_mut(),
        );
        for n in 0..batch {
            let row = &mut output.data_mut()[n * self.out_features..(n + 1) * self.out_features];
            for (v, &b) in row.iter_mut().zip(self.bias.data().iter()) {
                *v += b;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(output)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let input = self.cached_input.as_ref().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward called before forward".to_string(),
        })?;
        let batch = input.len() / self.in_features;
        if d_output.len() != batch * self.out_features {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!(
                    "d_output shape {:?} does not match (N={batch}, {})",
                    d_output.dims(),
                    self.out_features
                ),
            });
        }
        // dW += dY^T * X
        gemm(
            Transpose::Yes,
            Transpose::No,
            self.out_features,
            self.in_features,
            batch,
            1.0,
            d_output.data(),
            input.data(),
            1.0,
            self.d_weights.data_mut(),
        );
        // db += column sums of dY
        for n in 0..batch {
            let row = &d_output.data()[n * self.out_features..(n + 1) * self.out_features];
            for (g, &d) in self.d_bias.data_mut().iter_mut().zip(row.iter()) {
                *g += d;
            }
        }
        // dX = dY * W
        let mut d_input = Tensor::zeros(&[batch, self.in_features]);
        gemm(
            Transpose::No,
            Transpose::No,
            batch,
            self.in_features,
            self.out_features,
            1.0,
            d_output.data(),
            self.weights.data(),
            0.0,
            d_input.data_mut(),
        );
        Ok(d_input)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.weights, &mut self.d_weights), (&mut self.bias, &mut self.d_bias)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut fc = InnerProduct::new("fc", 2, 2, Filler::Constant(0.0), 0);
        {
            let params = fc.params_and_grads();
            // weights not used via params here; set manually below
            drop(params);
        }
        fc.weights.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        fc.bias.data_mut().copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = fc.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn rejects_bad_input_shape() {
        let mut fc = InnerProduct::new("fc", 4, 2, Filler::Xavier, 0);
        let x = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        assert!(fc.forward(&x, Phase::Train).is_err());
    }

    #[test]
    fn flattens_trailing_dims() {
        let mut fc = InnerProduct::new("fc", 12, 3, Filler::Xavier, 0);
        let x = Tensor::zeros(&[2, 3, 2, 2]);
        let y = fc.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut fc = InnerProduct::new("fc", 2, 2, Filler::Xavier, 0);
        assert!(fc.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn gradient_check() {
        let mut fc = InnerProduct::new("fc", 3, 2, Filler::Gaussian { mean: 0.0, std: 0.5 }, 42);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2, 0.9, -0.4], &[2, 3]).unwrap();
        let d_out = Tensor::from_vec(vec![1.0, -0.5, 0.25, 0.75], &[2, 2]).unwrap();

        let y = fc.forward(&x, Phase::Train).unwrap();
        let d_in = fc.backward(&d_out).unwrap();
        let _ = y;

        let eps = 1e-2;
        // Weight gradient check.
        let analytic_dw = fc.d_weights.data().to_vec();
        #[allow(clippy::needless_range_loop)] // wi indexes weights and grads
        for wi in 0..6 {
            let orig = fc.weights.data()[wi];
            fc.weights.data_mut()[wi] = orig + eps;
            let yp = fc.forward(&x, Phase::Train).unwrap();
            fc.weights.data_mut()[wi] = orig - eps;
            let ym = fc.forward(&x, Phase::Train).unwrap();
            fc.weights.data_mut()[wi] = orig;
            let lp: f32 = yp.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum();
            let lm: f32 = ym.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((analytic_dw[wi] - numeric).abs() < 1e-2, "wi={wi}");
        }
        // Input gradient check.
        let mut xm = x.clone();
        for ii in 0..6 {
            let orig = xm.data()[ii];
            xm.data_mut()[ii] = orig + eps;
            let yp = fc.forward(&xm, Phase::Train).unwrap();
            xm.data_mut()[ii] = orig - eps;
            let ym = fc.forward(&xm, Phase::Train).unwrap();
            xm.data_mut()[ii] = orig;
            let lp: f32 = yp.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum();
            let lm: f32 = ym.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((d_in.data()[ii] - numeric).abs() < 1e-2, "ii={ii}");
        }
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut fc = InnerProduct::new("fc", 2, 1, Filler::Constant(1.0), 0);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let d = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        fc.forward(&x, Phase::Train).unwrap();
        fc.backward(&d).unwrap();
        let first = fc.d_weights.data().to_vec();
        fc.forward(&x, Phase::Train).unwrap();
        fc.backward(&d).unwrap();
        let second = fc.d_weights.data().to_vec();
        for (a, b) in first.iter().zip(second.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
        fc.zero_grads();
        assert_eq!(fc.d_weights.sum(), 0.0);
        assert_eq!(fc.d_bias.sum(), 0.0);
    }

    #[test]
    fn deterministic_init_per_seed_and_name() {
        let a = InnerProduct::new("fc", 4, 4, Filler::Xavier, 9);
        let b = InnerProduct::new("fc", 4, 4, Filler::Xavier, 9);
        let c = InnerProduct::new("other", 4, 4, Filler::Xavier, 9);
        assert_eq!(a.weights.data(), b.weights.data());
        assert_ne!(a.weights.data(), c.weights.data());
    }
}
