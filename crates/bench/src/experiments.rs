//! Parameterised timing-experiment runners.
//!
//! Timing runs simulate a few hundred steady-state iterations per
//! configuration and extrapolate epoch totals, exactly as the paper's
//! Tables V/VI average "the training time during 1000 iterations".

use shmcaffe::config::ShmCaffeConfig;
use shmcaffe::platforms::{CaffeMpi, CaffeSsgd, MpiCaffe, ShmCaffeA, ShmCaffeH, SsgdConfig};
use shmcaffe::report::TrainingReport;
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe::PlatformError;
use shmcaffe_models::{CnnModel, WorkloadModel};
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::ClusterSpec;

/// ImageNet ILSVRC-2012 training-set size (paper §IV-C).
pub const IMAGENET_TRAIN: usize = 1_281_167;

/// Epochs trained in the paper's headline experiment.
pub const PAPER_EPOCHS: usize = 15;

/// Iterations simulated per timing measurement (steady state; the paper
/// averages 1000, we default lower for wall-clock frugality — pass 1000 to
/// match exactly).
pub const DEFAULT_MEASURE_ITERS: usize = 200;

/// The platforms compared in §IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// BVLC Caffe multi-GPU SSGD.
    Caffe,
    /// Inspur Caffe-MPI star SSGD.
    CaffeMpi,
    /// The authors' MPI_Allreduce SSGD.
    MpiCaffe,
    /// Asynchronous ShmCaffe (SEASGD).
    ShmCaffeA,
    /// Hybrid ShmCaffe (groups of 4 unless the GPU count is smaller).
    ShmCaffeH,
}

impl Platform {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Caffe => "Caffe",
            Platform::CaffeMpi => "Caffe-MPI",
            Platform::MpiCaffe => "MPICaffe",
            Platform::ShmCaffeA => "ShmCaffe-A",
            Platform::ShmCaffeH => "ShmCaffe-H",
        }
    }

    /// All five platforms.
    pub const ALL: [Platform; 5] = [
        Platform::Caffe,
        Platform::CaffeMpi,
        Platform::MpiCaffe,
        Platform::ShmCaffeA,
        Platform::ShmCaffeH,
    ];
}

/// Nodes needed for `workers` at 4 GPUs per node.
fn nodes_for(workers: usize) -> usize {
    workers.div_ceil(4).max(1)
}

fn modeled_factory(model: CnnModel, seed: u64) -> ModeledTrainerFactory {
    ModeledTrainerFactory::new(WorkloadModel::from_cnn(model), JitterModel::hpc_default(), seed)
}

fn shm_cfg(iters: usize) -> ShmCaffeConfig {
    ShmCaffeConfig {
        max_iters: iters,
        progress_every: 25,
        // Jitter lives in the trainer; the platform's own jitter field is
        // unused by modeled runs.
        jitter: JitterModel::NONE,
        ..Default::default()
    }
}

/// Runs a steady-state timing measurement for one platform, model and GPU
/// count; `measure_iters` iterations per worker.
///
/// A single GPU degenerates to standalone Caffe for every platform, as in
/// the paper's 1-GPU baseline column (its communication time is zero).
///
/// # Errors
///
/// Propagates platform failures.
pub fn measure(
    platform: Platform,
    model: CnnModel,
    gpus: usize,
    measure_iters: usize,
    seed: u64,
) -> Result<TrainingReport, PlatformError> {
    if gpus == 1 {
        return CaffeSsgd::new(
            ClusterSpec::paper_testbed(1),
            1,
            SsgdConfig { max_iters: measure_iters, ..Default::default() },
        )
        .run(modeled_factory(model, seed));
    }
    match platform {
        Platform::Caffe => CaffeSsgd::new(
            ClusterSpec::paper_testbed(nodes_for(gpus)),
            gpus,
            SsgdConfig { max_iters: measure_iters, ..Default::default() },
        )
        .run(modeled_factory(model, seed)),
        Platform::CaffeMpi => CaffeMpi::new(
            ClusterSpec::paper_testbed(nodes_for(gpus)),
            gpus,
            SsgdConfig { max_iters: measure_iters, ..Default::default() },
        )
        .run(modeled_factory(model, seed)),
        Platform::MpiCaffe => MpiCaffe::new(
            ClusterSpec::paper_testbed(nodes_for(gpus)),
            gpus,
            SsgdConfig { max_iters: measure_iters, ..Default::default() },
        )
        .run(modeled_factory(model, seed)),
        Platform::ShmCaffeA => ShmCaffeA::new(
            ClusterSpec::paper_testbed(nodes_for(gpus)),
            gpus,
            shm_cfg(measure_iters),
        )
        .run(modeled_factory(model, seed)),
        Platform::ShmCaffeH => {
            let (groups, group_size) = hybrid_shape(gpus);
            ShmCaffeH::new(
                ClusterSpec::paper_testbed(groups.max(1)),
                groups,
                group_size,
                shm_cfg(measure_iters),
            )
            .run(modeled_factory(model, seed))
        }
    }
}

/// The paper's hybrid decomposition for a GPU count: groups of 4 when
/// possible (16 → S4×A4, 8 → S4×A2, 4 → S2×A2 per §IV-D).
pub fn hybrid_shape(gpus: usize) -> (usize, usize) {
    match gpus {
        0 | 1 => (1, 1),
        2 => (2, 1),
        4 => (2, 2),
        n if n % 4 == 0 => (n / 4, 4),
        n if n % 2 == 0 => (n / 2, 2),
        n => (n, 1),
    }
}

/// Explicit hybrid measurement for a Table III configuration `S×A`
/// (`group_size` synchronous GPUs per group, `groups` async groups).
///
/// # Errors
///
/// Propagates platform failures.
pub fn measure_hybrid(
    model: CnnModel,
    groups: usize,
    group_size: usize,
    measure_iters: usize,
    seed: u64,
) -> Result<TrainingReport, PlatformError> {
    ShmCaffeH::new(
        ClusterSpec::paper_testbed(groups.max(1)),
        groups,
        group_size,
        shm_cfg(measure_iters),
    )
    .run(modeled_factory(model, seed))
}

/// Projects a steady-state report to the paper's 15-epoch training time in
/// hours. Per-worker iterations = dataset × epochs / (workers × batch) for
/// both the synchronous (global batch) and asynchronous (sharded data)
/// regimes.
pub fn epochs_hours(
    report: &TrainingReport,
    model: CnnModel,
    workers: usize,
    epochs: usize,
) -> f64 {
    let iters_per_worker =
        (IMAGENET_TRAIN * epochs) as f64 / (workers.max(1) * model.minibatch()) as f64;
    iters_per_worker * report.mean_iter_ms() / 3.6e6
}

/// One row of the Fig 12-15 style comp/comm breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Configuration label (e.g. `"8 (S4xA2)"`).
    pub label: String,
    /// Mean computation time per iteration (ms).
    pub comp_ms: f64,
    /// Mean non-overlapped communication time per iteration (ms).
    pub comm_ms: f64,
}

impl Breakdown {
    /// Extracts the breakdown from a report.
    pub fn from_report(label: &str, report: &TrainingReport) -> Self {
        Breakdown {
            label: label.to_string(),
            comp_ms: report.mean_comp_ms(),
            comm_ms: report.mean_comm_ms(),
        }
    }

    /// Communication share of the iteration.
    pub fn comm_ratio(&self) -> f64 {
        let total = self.comp_ms + self.comm_ms;
        if total == 0.0 {
            0.0
        } else {
            self.comm_ms / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_shapes_match_paper_configs() {
        assert_eq!(hybrid_shape(16), (4, 4));
        assert_eq!(hybrid_shape(8), (2, 4));
        assert_eq!(hybrid_shape(4), (2, 2));
        assert_eq!(hybrid_shape(2), (2, 1));
        assert_eq!(hybrid_shape(1), (1, 1));
    }

    #[test]
    fn one_gpu_baseline_has_zero_comm() {
        let r = measure(Platform::ShmCaffeA, CnnModel::InceptionV1, 1, 20, 1).unwrap();
        assert!(r.mean_comm_ms() < 1.0);
        assert!((r.mean_comp_ms() - 257.0).abs() < 20.0);
    }

    #[test]
    fn epochs_projection_matches_caffe_single_gpu() {
        let r = measure(Platform::Caffe, CnnModel::InceptionV1, 1, 20, 1).unwrap();
        let hours = epochs_hours(&r, CnnModel::InceptionV1, 1, PAPER_EPOCHS);
        // Paper: 22:59 for Caffe on one GPU.
        assert!((hours - 22.98).abs() < 1.5, "estimated {hours} h");
    }

    #[test]
    fn breakdown_ratio() {
        let b = Breakdown { label: "x".into(), comp_ms: 257.0, comm_ms: 90.0 };
        assert!((b.comm_ratio() - 90.0 / 347.0).abs() < 1e-12);
    }
}
