//! Integration tests for the vector-clock race detector on the SMB data
//! plane (`--features race-detect`).
//!
//! The seeded test deliberately omits the synchronization edge between two
//! workers so their accesses to the shared W_g segment are concurrent; the
//! detector must produce exactly one report naming both access sites. The
//! companion test adds the missing edge and must stay silent.

#![cfg(feature = "race-detect")]

use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{ShmKey, SmbClient, SmbServer};

fn setup(nodes: usize) -> SmbServer {
    let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(nodes)));
    SmbServer::new(rdma).unwrap()
}

/// Worker A plain-writes W_g while worker B accumulates into it, with no
/// happens-before edge between A and B: one write/rmw race, reported once,
/// naming both sites.
#[test]
fn seeded_unsynchronized_accumulate_races_with_write() {
    let server = setup(3);
    // Collect reports instead of failing the simulation.
    server.rdma().race_detector().set_halt_on_race(false);

    let to_a = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_a");
    let to_b = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_b");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_a, to_b) = (to_a.clone(), to_b.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw = client.create(&ctx, "dW_1", 8, None).unwrap();
            // Each worker gets a creation->use edge, but there is no edge
            // between the workers themselves.
            to_a.send(&ctx, (wg, dw));
            to_b.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        sim.spawn("worker_a", move |ctx| {
            let (wg_key, _) = to_a.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            client.write(&ctx, &wg, &[1.0; 8]).unwrap();
        });
    }
    {
        let s = server.clone();
        sim.spawn("worker_b", move |ctx| {
            let (wg_key, dw_key) = to_b.recv(&ctx);
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &dw, &[0.5; 8]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
        });
    }
    sim.run();

    let reports = server.rdma().race_detector().reports();
    assert_eq!(reports.len(), 1, "exactly one race expected, got {reports:#?}");
    let r = &reports[0];
    let mut sites = [r.earlier_site, r.later_site];
    sites.sort_unstable();
    assert_eq!(sites, ["smb::client::write", "smb::server::accumulate(dst)"]);
    assert_ne!(r.earlier_pid, r.later_pid);
    // The report formats both sites for the log line.
    let shown = r.to_string();
    assert!(shown.contains("smb::client::write"), "{shown}");
    assert!(shown.contains("smb::server::accumulate(dst)"), "{shown}");
}

/// The same workload with the missing edge restored (A notifies B after its
/// write) is data-race-free: the halting detector stays silent.
#[test]
fn synchronized_accumulate_after_write_is_race_free() {
    let server = setup(3);

    let to_a = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_a");
    let to_b = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_b");
    let a_done = SimChannel::<()>::new("a_done");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_a, to_b) = (to_a.clone(), to_b.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw = client.create(&ctx, "dW_1", 8, None).unwrap();
            to_a.send(&ctx, (wg, dw));
            to_b.send(&ctx, (wg, dw));
        });
    }
    {
        let s = server.clone();
        let a_done = a_done.clone();
        sim.spawn("worker_a", move |ctx| {
            let (wg_key, _) = to_a.recv(&ctx);
            let client = SmbClient::new(s, NodeId(1));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            client.write(&ctx, &wg, &[1.0; 8]).unwrap();
            a_done.send(&ctx, ());
        });
    }
    {
        let s = server.clone();
        sim.spawn("worker_b", move |ctx| {
            let (wg_key, dw_key) = to_b.recv(&ctx);
            a_done.recv(&ctx);
            let client = SmbClient::new(s, NodeId(2));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &dw, &[0.5; 8]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
        });
    }
    // halt_on_race defaults to true: any report would fail sim.run().
    sim.run();
    assert!(server.rdma().race_detector().reports().is_empty());
}

/// Two engine-serialized accumulates from unsynchronized workers are
/// atomic read-modify-writes, not a race (paper T.A3: the DRAM bus
/// processes accumulate requests exclusively).
#[test]
fn concurrent_accumulates_are_not_reported() {
    let server = setup(3);

    let to_a = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_a");
    let to_b = SimChannel::<(ShmKey, ShmKey)>::new("keys_to_b");

    let mut sim = Simulation::new();
    {
        let s = server.clone();
        let (to_a, to_b) = (to_a.clone(), to_b.clone());
        sim.spawn("setup", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg = client.create(&ctx, "W_g", 8, None).unwrap();
            let dw_a = client.create(&ctx, "dW_a", 8, None).unwrap();
            let dw_b = client.create(&ctx, "dW_b", 8, None).unwrap();
            to_a.send(&ctx, (wg, dw_a));
            to_b.send(&ctx, (wg, dw_b));
        });
    }
    for (name, node, ch) in [("worker_a", 1, to_a.clone()), ("worker_b", 2, to_b.clone())] {
        let s = server.clone();
        sim.spawn(name, move |ctx| {
            let (wg_key, dw_key) = ch.recv(&ctx);
            let client = SmbClient::new(s, NodeId(node));
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &dw, &[0.25; 8]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
        });
    }
    sim.run();
    assert!(server.rdma().race_detector().reports().is_empty());
}
