//! Property-based proof that the fused im2col → packed-GEMM convolution
//! is **bit-identical** to the retained materialised reference path
//! (`conv2d_forward_ref`/`conv2d_backward_ref`), at every thread count.
//!
//! The fused path shares the reference gemm's KC k-block grid and
//! per-element write-back fold order; packing is an exact element copy
//! read through the geometry instead of through a materialised column
//! matrix. If any of that drifts — a different block grid, a reassociated
//! fold, an off-by-one in the geometry accessor — these tests fail on raw
//! `f32::to_bits` comparison, across random non-square geometries,
//! strides, pads, batch sizes and thread counts.

use proptest::prelude::*;
use shmcaffe_tensor::conv::{
    conv2d_backward, conv2d_backward_ref, conv2d_forward, conv2d_forward_ref, Conv2dGeometry,
};
use shmcaffe_tensor::parallel;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Deterministic pseudo-random fill (LCG), independent of any crate RNG.
fn fill(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Fused forward == reference forward, bit for bit, at 1/2/4/7
    /// threads, over rectangular images, rectangular kernels, mixed
    /// strides and pads, and batch sizes crossing the task-grid floor.
    #[test]
    fn fused_forward_is_bit_identical_to_reference(
        batch in 1usize..6,
        channels in 1usize..4,
        out_channels in 1usize..10,
        h in 3usize..11,
        w in 3usize..11,
        kernel_h in 1usize..4,
        kernel_w in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..1000,
    ) {
        let geom = Conv2dGeometry {
            in_channels: channels,
            in_h: h,
            in_w: w,
            kernel_h,
            kernel_w,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
        };
        prop_assume!(geom.out_h().is_ok() && geom.out_w().is_ok());
        let spatial = geom.col_cols().unwrap();
        let input = fill(batch * geom.in_len(), seed);
        let weights = fill(out_channels * geom.col_rows(), seed ^ 0x5555);
        let bias = fill(out_channels, seed ^ 0xaaaa);

        let mut col = vec![0.0f32; geom.col_rows() * spatial];
        let mut reference = vec![0.0f32; batch * out_channels * spatial];
        conv2d_forward_ref(
            &geom, batch, out_channels, &input, &weights, &bias, &mut reference, &mut col,
        );

        for &t in &THREAD_COUNTS {
            let mut fused = vec![0.0f32; reference.len()];
            parallel::with_threads(t, || {
                conv2d_forward(&geom, batch, out_channels, &input, &weights, &bias, &mut fused);
            });
            prop_assert_eq!(
                bits(&reference), bits(&fused),
                "fused forward diverged at threads={} geom={:?}", t, geom
            );
        }
    }

    /// Fused backward == reference backward (dW, db, dX), bit for bit,
    /// with pre-seeded gradient buffers so the accumulate contract is
    /// covered too.
    #[test]
    fn fused_backward_is_bit_identical_to_reference(
        batch in 1usize..6,
        channels in 1usize..4,
        out_channels in 1usize..10,
        h in 3usize..11,
        w in 3usize..11,
        kernel_h in 1usize..4,
        kernel_w in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..1000,
    ) {
        let geom = Conv2dGeometry {
            in_channels: channels,
            in_h: h,
            in_w: w,
            kernel_h,
            kernel_w,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
        };
        prop_assume!(geom.out_h().is_ok() && geom.out_w().is_ok());
        let spatial = geom.col_cols().unwrap();
        let w_len = out_channels * geom.col_rows();
        let input = fill(batch * geom.in_len(), seed);
        let weights = fill(w_len, seed ^ 0x5555);
        let d_output = fill(batch * out_channels * spatial, seed ^ 0x0f0f);
        // Non-zero seeds: the backward contract accumulates dW/db.
        let dw0 = fill(w_len, seed ^ 0x7777);
        let db0 = fill(out_channels, seed ^ 0x8888);

        let mut col = vec![0.0f32; geom.col_rows() * spatial];
        let mut dw_ref = dw0.clone();
        let mut db_ref = db0.clone();
        let mut dx_ref = vec![0.0f32; input.len()];
        conv2d_backward_ref(
            &geom, batch, out_channels, &input, &weights, &d_output,
            &mut dw_ref, &mut db_ref, &mut dx_ref, &mut col,
        );

        for &t in &THREAD_COUNTS {
            let mut dw = dw0.clone();
            let mut db = db0.clone();
            let mut dx = vec![0.0f32; input.len()];
            parallel::with_threads(t, || {
                conv2d_backward(
                    &geom, batch, out_channels, &input, &weights, &d_output,
                    &mut dw, &mut db, &mut dx,
                );
            });
            prop_assert_eq!(bits(&dw_ref), bits(&dw), "dW diverged at threads={} geom={:?}", t, geom);
            prop_assert_eq!(bits(&db_ref), bits(&db), "db diverged at threads={} geom={:?}", t, geom);
            prop_assert_eq!(bits(&dx_ref), bits(&dx), "dX diverged at threads={} geom={:?}", t, geom);
        }
    }

    /// No-bias and no-d_input variants stay bit-identical too (these hit
    /// different task shapes: db skipped, d_input tasks absent).
    #[test]
    fn fused_paths_without_bias_or_dx_match_reference(
        batch in 1usize..4,
        channels in 1usize..3,
        out_channels in 1usize..6,
        hw in 3usize..9,
        kernel in 1usize..4,
        seed in 0u32..1000,
    ) {
        let geom = Conv2dGeometry::square(channels, hw, kernel, 1, 0);
        prop_assume!(geom.out_h().is_ok());
        let spatial = geom.col_cols().unwrap();
        let w_len = out_channels * geom.col_rows();
        let input = fill(batch * geom.in_len(), seed);
        let weights = fill(w_len, seed ^ 0x5555);
        let d_output = fill(batch * out_channels * spatial, seed ^ 0x0f0f);

        let mut col = vec![0.0f32; geom.col_rows() * spatial];
        let mut out_ref = vec![0.0f32; batch * out_channels * spatial];
        conv2d_forward_ref(&geom, batch, out_channels, &input, &weights, &[], &mut out_ref, &mut col);
        let mut dw_ref = vec![0.0f32; w_len];
        conv2d_backward_ref(
            &geom, batch, out_channels, &input, &weights, &d_output,
            &mut dw_ref, &mut [], &mut [], &mut col,
        );

        for &t in &[1usize, 4] {
            let (out, dw) = parallel::with_threads(t, || {
                let mut out = vec![0.0f32; out_ref.len()];
                conv2d_forward(&geom, batch, out_channels, &input, &weights, &[], &mut out);
                let mut dw = vec![0.0f32; w_len];
                conv2d_backward(
                    &geom, batch, out_channels, &input, &weights, &d_output,
                    &mut dw, &mut [], &mut [],
                );
                (out, dw)
            });
            prop_assert_eq!(bits(&out_ref), bits(&out), "no-bias fwd diverged at threads={}", t);
            prop_assert_eq!(bits(&dw_ref), bits(&dw), "no-dx dW diverged at threads={}", t);
        }
    }
}
