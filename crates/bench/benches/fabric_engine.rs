//! Microbenchmarks of the virtual-time engine: context-switch throughput,
//! channel ping-pong and contended-link transfers. These measure the cost
//! of the *simulator itself* (real wall-clock), which bounds how large a
//! cluster/iteration count the timing experiments can sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::resource::{BandwidthResource, LinkModel};
use shmcaffe_simnet::{SimDuration, Simulation};

fn bench_scheduler_switches(c: &mut Criterion) {
    c.bench_function("sim_1000_sleeps_2_procs", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            for i in 0..2 {
                sim.spawn(&format!("p{i}"), |ctx| {
                    for _ in 0..500 {
                        ctx.sleep(SimDuration::from_micros(1));
                    }
                });
            }
            sim.run()
        });
    });
}

fn bench_channel_pingpong(c: &mut Criterion) {
    c.bench_function("sim_channel_pingpong_500", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let ping: SimChannel<u32> = SimChannel::new("ping");
            let pong: SimChannel<u32> = SimChannel::new("pong");
            let (ping2, pong2) = (ping.clone(), pong.clone());
            sim.spawn("a", move |ctx| {
                for i in 0..500 {
                    ping.send(&ctx, i);
                    pong.recv(&ctx);
                }
            });
            sim.spawn("b", move |ctx| {
                for _ in 0..500 {
                    ping2.recv(&ctx);
                    pong2.send(&ctx, 0);
                }
            });
            sim.run()
        });
    });
}

fn bench_contended_link(c: &mut Criterion) {
    c.bench_function("sim_contended_link_8x100", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let link =
                BandwidthResource::new("l", LinkModel::new(7e9, SimDuration::from_micros(2)));
            for i in 0..8 {
                let l = link.clone();
                sim.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..100 {
                        l.transfer(&ctx, 1_000_000);
                    }
                });
            }
            sim.run()
        });
    });
}

criterion_group!(benches, bench_scheduler_switches, bench_channel_pingpong, bench_contended_link);
criterion_main!(benches);
