use shmcaffe_tensor::Tensor;

use crate::DnnError;

/// Whether a forward pass is part of training or evaluation.
///
/// Mirrors Caffe's `Phase`: layers such as dropout and batch-norm behave
/// differently between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Training: stochastic layers active, batch statistics updated.
    Train,
    /// Evaluation: deterministic behaviour, running statistics used.
    Test,
}

/// A network layer.
///
/// Layers are stateful: `forward` caches whatever the subsequent `backward`
/// needs (inputs, masks, argmax indices), and `backward` *accumulates*
/// parameter gradients so that multiple backward passes sum (Caffe
/// `iter_size` semantics). Gradients are cleared with
/// [`Layer::zero_grads`].
///
/// The parameter accessors return one entry per learnable blob (weights,
/// then bias), matching Caffe's blob ordering, so a flattened view of the
/// whole network is well defined and identical across replicas.
pub trait Layer: Send {
    /// The layer's unique name within its net.
    fn name(&self) -> &str;

    /// Computes the layer's output for `input`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadInput`] if the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor, DnnError>;

    /// Computes the gradient w.r.t. the layer input given the gradient
    /// w.r.t. its output, accumulating parameter gradients.
    ///
    /// Must be called after a `forward` in the same iteration.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::BadInput`] if `d_output` does not match the shape
    /// produced by the last forward pass.
    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError>;

    /// Learnable parameter blobs paired with their gradient blobs
    /// (weights first, then bias). Parameter-free layers return an empty
    /// vector (the default).
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Total number of learnable scalars in this layer.
    fn param_len(&mut self) -> usize {
        self.params_and_grads().iter().map(|(p, _)| p.len()).sum()
    }

    /// Resets all parameter gradients to zero.
    fn zero_grads(&mut self) {
        for (_, g) in self.params_and_grads() {
            g.fill_zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal identity layer exercising the default methods.
    struct Identity;
    impl Layer for Identity {
        fn name(&self) -> &str {
            "identity"
        }
        fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
            Ok(input.clone())
        }
        fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
            Ok(d_output.clone())
        }
    }

    #[test]
    fn default_param_methods_are_empty() {
        let mut l = Identity;
        assert_eq!(l.param_len(), 0);
        assert!(l.params_and_grads().is_empty());
        l.zero_grads(); // no-op, must not panic
    }

    #[test]
    fn identity_roundtrip() {
        let mut l = Identity;
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = l.forward(&x, Phase::Train).unwrap();
        assert_eq!(y, x);
        let dx = l.backward(&y).unwrap();
        assert_eq!(dx, x);
    }
}
