//! Benchmarks of whole platform iterations: one table/figure experiment
//! unit each, so regressions in the experiment pipeline are caught.
//!
//! * `smb_exchange_roundtrip` — one SEASGD exchange against the SMB server
//!   (Fig 5/6 machinery).
//! * `allreduce_16` — the ring allreduce the baselines use (Fig 10).
//! * `seasgd_16x10` — ten full ShmCaffe-A iterations on 16 workers
//!   (Tables II/V unit).
//! * `ssgd_star_16x5` — five Caffe-MPI star iterations (Fig 10 unit).

use criterion::{criterion_group, criterion_main, Criterion};
use shmcaffe::config::ShmCaffeConfig;
use shmcaffe::platforms::{CaffeMpi, ShmCaffeA, SsgdConfig};
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe_models::{CnnModel, WorkloadModel};
use shmcaffe_mpi::MpiWorld;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{SmbClient, SmbServer};

fn bench_smb_exchange(c: &mut Criterion) {
    c.bench_function("smb_exchange_roundtrip", |b| {
        b.iter(|| {
            let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
            let server = SmbServer::new(rdma).unwrap();
            let mut sim = Simulation::new();
            sim.spawn("w", move |ctx| {
                let client = SmbClient::new(server, NodeId(0));
                let wg_key = client.create(&ctx, "wg", 4096, Some(53_500_000)).unwrap();
                let dw_key = client.create(&ctx, "dw", 4096, Some(53_500_000)).unwrap();
                let wg = client.alloc(&ctx, wg_key).unwrap();
                let dw = client.alloc(&ctx, dw_key).unwrap();
                let mut buf = vec![0.0f32; 4096];
                for _ in 0..10 {
                    client.read(&ctx, &wg, &mut buf).unwrap();
                    client.write(&ctx, &dw, &buf).unwrap();
                    client.accumulate(&ctx, &dw, &wg).unwrap();
                }
            });
            sim.run()
        });
    });
}

fn bench_allreduce(c: &mut Criterion) {
    c.bench_function("allreduce_16_ranks", |b| {
        b.iter(|| {
            let world = MpiWorld::new(Fabric::new(ClusterSpec::paper_testbed(4)), 16);
            let mut sim = Simulation::new();
            for rank in 0..16 {
                let mut comm = world.comm(rank);
                sim.spawn(&format!("r{rank}"), move |ctx| {
                    let data = vec![rank as f32; 4096];
                    comm.allreduce_wire(&ctx, data, 53_500_000);
                });
            }
            sim.run()
        });
    });
}

fn bench_shmcaffe_a(c: &mut Criterion) {
    c.bench_function("seasgd_16x10_iterations", |b| {
        b.iter(|| {
            let cfg = ShmCaffeConfig {
                max_iters: 10,
                progress_every: 5,
                jitter: JitterModel::NONE,
                ..Default::default()
            };
            ShmCaffeA::new(ClusterSpec::paper_testbed(4), 16, cfg)
                .run(ModeledTrainerFactory::new(
                    WorkloadModel::from_cnn(CnnModel::InceptionV1),
                    JitterModel::NONE,
                    1,
                ))
                .unwrap()
        });
    });
}

fn bench_caffe_mpi(c: &mut Criterion) {
    c.bench_function("ssgd_star_16x5_iterations", |b| {
        b.iter(|| {
            CaffeMpi::new(
                ClusterSpec::paper_testbed(4),
                16,
                SsgdConfig { max_iters: 5, ..Default::default() },
            )
            .run(ModeledTrainerFactory::new(
                WorkloadModel::from_cnn(CnnModel::InceptionV1),
                JitterModel::NONE,
                1,
            ))
            .unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    // Whole-platform iterations run full simulations; keep sampling light.
    config = Criterion::default().sample_size(10);
    targets = bench_smb_exchange, bench_allreduce, bench_shmcaffe_a, bench_caffe_mpi
}
criterion_main!(benches);
