use std::fmt;

use shmcaffe_rdma::RdmaError;

use crate::server::ShmKey;

/// Errors produced by SMB operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmbError {
    /// The SHM key does not name a live segment.
    UnknownKey(ShmKey),
    /// A buffer name was created twice.
    DuplicateName(String),
    /// Source and destination of an accumulate differ in length.
    LengthMismatch {
        /// Source segment length (elements).
        src: usize,
        /// Destination segment length (elements).
        dst: usize,
    },
    /// The client buffer length does not match the caller's slice.
    SizeMismatch {
        /// Segment length (elements).
        expected: usize,
        /// Slice length provided by the caller.
        got: usize,
    },
    /// No memory server exists on this fabric.
    NoMemoryServer,
    /// An underlying RDMA failure.
    Rdma(RdmaError),
}

impl fmt::Display for SmbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmbError::UnknownKey(k) => write!(f, "unknown SHM key {k}"),
            SmbError::DuplicateName(n) => write!(f, "buffer name already exists: {n}"),
            SmbError::LengthMismatch { src, dst } => {
                write!(f, "accumulate length mismatch: src {src} vs dst {dst}")
            }
            SmbError::SizeMismatch { expected, got } => {
                write!(f, "buffer has {expected} elements but caller passed {got}")
            }
            SmbError::NoMemoryServer => write!(f, "fabric has no memory server endpoint"),
            SmbError::Rdma(e) => write!(f, "rdma error: {e}"),
        }
    }
}

impl std::error::Error for SmbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmbError::Rdma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RdmaError> for SmbError {
    fn from(e: RdmaError) -> Self {
        SmbError::Rdma(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SmbError::Rdma(RdmaError::UnknownRegion(shmcaffe_rdma::RemoteKey(3)));
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
        assert!(SmbError::NoMemoryServer.source().is_none());
    }
}
