//! ShmCaffe-H: the hybrid platform (paper §III-D, Fig. 4).

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_collectives::IntraNodeGroup;
use shmcaffe_mpi::{MpiData, MpiWorld};
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::progress::ProgressBoard;
use shmcaffe_smb::{ShmKey, SmbClient, SmbServer};

use crate::config::ShmCaffeConfig;
use crate::hybrid::{run_group_member, HybridHarness, RootHarness};
use crate::report::TrainingReport;
use crate::seasgd::SeasgdBuffers;
use crate::trainer::{Trainer, TrainerFactory};
use crate::PlatformError;

use super::run_sim;

/// The hybrid ShmCaffe platform (paper "ShmCaffe-H"): `groups` worker
/// groups of `group_size` GPUs, one group per node. Within a group, SSGD
/// via ncclAllReduce; between groups, SEASGD through the SMB server. The
/// configuration `16 (S4×A4)` of Table III is `groups = 4, group_size = 4`.
#[derive(Debug, Clone)]
pub struct ShmCaffeH {
    spec: ClusterSpec,
    groups: usize,
    group_size: usize,
    cfg: ShmCaffeConfig,
}

impl ShmCaffeH {
    /// Configures the platform.
    pub fn new(spec: ClusterSpec, groups: usize, group_size: usize, cfg: ShmCaffeConfig) -> Self {
        ShmCaffeH { spec, groups, group_size, cfg }
    }

    /// Total workers (`S × A` in the paper's notation).
    pub fn total_workers(&self) -> usize {
        self.groups * self.group_size
    }

    /// Runs distributed training and returns the fleet report (worker
    /// reports indexed `group * group_size + member`).
    ///
    /// # Errors
    ///
    /// Returns configuration errors or any propagated worker failure.
    pub fn run<F: TrainerFactory>(&self, factory: F) -> Result<TrainingReport, PlatformError> {
        self.cfg.validate().map_err(PlatformError::BadConfig)?;
        if self.groups == 0 || self.group_size == 0 {
            return Err(PlatformError::BadConfig("groups and group_size must be positive".into()));
        }
        if self.groups > self.spec.gpu_nodes {
            return Err(PlatformError::BadConfig(format!(
                "{} groups do not fit {} nodes",
                self.groups, self.spec.gpu_nodes
            )));
        }
        if self.group_size > self.spec.gpus_per_node {
            return Err(PlatformError::BadConfig(format!(
                "group size {} exceeds {} GPUs per node",
                self.group_size, self.spec.gpus_per_node
            )));
        }
        if self.spec.memory_servers == 0 {
            return Err(PlatformError::BadConfig(
                "ShmCaffe requires a memory server on the fabric".to_string(),
            ));
        }

        let fabric = Fabric::new(self.spec);
        let rdma = RdmaFabric::new(fabric.clone());
        let server = SmbServer::new(rdma)?;
        // Root-to-root communicator for the key broadcast: one rank per
        // group, pinned to the group's node.
        let root_world =
            MpiWorld::with_layout(fabric.clone(), (0..self.groups).map(NodeId).collect());
        let factory = Arc::new(factory);
        let cfg = self.cfg;
        let (groups, group_size) = (self.groups, self.group_size);
        let total = self.total_workers();
        let report = Arc::new(Mutex::new(TrainingReport::new("ShmCaffe-H", total)));

        let mut sim = Simulation::new();
        for g in 0..groups {
            let clique = IntraNodeGroup::new(fabric.clone(), NodeId(g), group_size);
            for m in 0..group_size {
                let gpu = clique.comm(m);
                let server = server.clone();
                let factory = Arc::clone(&factory);
                let report = Arc::clone(&report);
                let root_comm = (m == 0).then(|| root_world.comm(g));
                sim.spawn(&format!("shmcaffe_h_g{g}m{m}"), move |ctx| {
                    let global_rank = g * group_size + m;
                    let mut trainer = factory.make(global_rank, total);
                    let param_len = trainer.param_len();
                    let wire = trainer.wire_bytes();

                    let root = root_comm.map(|mut comm| {
                        let client = SmbClient::new(server, NodeId(g));
                        // The master group's root creates the shared
                        // segments and seeds the global weights (Fig. 4:
                        // the master-worker role is played by the root of
                        // Master Worker Group 1).
                        let (wg_key, board_key) = if g == 0 {
                            let wg_key = client
                                .create(&ctx, "W_g", param_len, Some(wire))
                                .expect("fresh server");
                            let (_board, board_key) =
                                ProgressBoard::create(&client, &ctx, "control_info", groups)
                                    .expect("fresh server");
                            let wg = client.alloc(&ctx, wg_key).expect("just created");
                            let mut w0 = vec![0.0f32; param_len];
                            trainer.read_weights(&mut w0);
                            client.write(&ctx, &wg, &w0).expect("sizes match");
                            comm.broadcast(
                                &ctx,
                                0,
                                Some(MpiData::U64s(vec![wg_key.0, board_key.0])),
                            );
                            (wg_key, board_key)
                        } else {
                            let keys = comm.broadcast(&ctx, 0, None).into_u64s();
                            (ShmKey(keys[0]), ShmKey(keys[1]))
                        };
                        let wg = client.alloc(&ctx, wg_key).expect("created by master root");
                        let dw_key = client
                            .create(&ctx, &format!("dW_grp{g}"), param_len, Some(wire))
                            .expect("per-group names are unique");
                        let dw = client.alloc(&ctx, dw_key).expect("just created");
                        let board = ProgressBoard::attach(&client, &ctx, board_key, groups)
                            .expect("board sized for groups");
                        RootHarness { client, buffers: SeasgdBuffers { wg, dw }, board }
                    });

                    let harness = HybridHarness {
                        gpu,
                        group: g,
                        member: m,
                        n_groups: groups,
                        root,
                        cfg,
                        target_iters: cfg.max_iters as u64,
                    };
                    let outcome = run_group_member(&ctx, harness, &mut trainer)
                        .expect("smb operations on live segments succeed");
                    let mut report = report.lock();
                    report.workers[global_rank] = outcome.report;
                    if global_rank == 0 {
                        report.evals = outcome.evals;
                        let mut final_w = vec![0.0f32; param_len];
                        trainer.read_weights(&mut final_w);
                        report.final_weights = Some(final_w);
                    }
                });
            }
        }

        let wall = run_sim(sim)?;
        let mut final_report =
            Arc::try_unwrap(report).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        final_report.wall = wall;
        Ok(final_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModeledTrainerFactory;
    use shmcaffe_models::WorkloadModel;
    use shmcaffe_simnet::jitter::JitterModel;
    use shmcaffe_simnet::SimDuration;

    fn quick_cfg(iters: usize) -> ShmCaffeConfig {
        ShmCaffeConfig {
            max_iters: iters,
            progress_every: 4,
            jitter: JitterModel::NONE,
            ..Default::default()
        }
    }

    fn factory(wire: u64) -> ModeledTrainerFactory {
        ModeledTrainerFactory::new(
            WorkloadModel::custom("t", wire, SimDuration::from_millis(25)),
            JitterModel::NONE,
            11,
        )
    }

    #[test]
    fn s4_a4_topology_runs() {
        let report = ShmCaffeH::new(ClusterSpec::paper_testbed(4), 4, 4, quick_cfg(8))
            .run(factory(8_000_000))
            .unwrap();
        assert_eq!(report.workers.len(), 16);
        for w in &report.workers {
            assert_eq!(w.iters, 8);
        }
        assert!(report.final_weights.is_some());
    }

    #[test]
    fn hybrid_reduces_smb_traffic_versus_async() {
        // Same 16 GPUs: H sends 4 group exchanges per round, A sends 16.
        use crate::platforms::ShmCaffeA;
        let wire = 50_000_000u64;
        let h = ShmCaffeH::new(ClusterSpec::paper_testbed(4), 4, 4, quick_cfg(6))
            .run(factory(wire))
            .unwrap();
        let a = ShmCaffeA::new(ClusterSpec::paper_testbed(4), 16, quick_cfg(6))
            .run(factory(wire))
            .unwrap();
        // The hybrid run's SMB-bound communication per member must be
        // smaller: compare fleet comm ratios.
        assert!(
            h.mean_comm_ms() < a.mean_comm_ms() * 1.5,
            "H comm {} vs A comm {}",
            h.mean_comm_ms(),
            a.mean_comm_ms()
        );
    }

    #[test]
    fn rejects_oversized_groups() {
        let spec = ClusterSpec::paper_testbed(2);
        assert!(matches!(
            ShmCaffeH::new(spec, 3, 4, quick_cfg(5)).run(factory(1_000_000)),
            Err(PlatformError::BadConfig(_))
        ));
        assert!(matches!(
            ShmCaffeH::new(spec, 2, 5, quick_cfg(5)).run(factory(1_000_000)),
            Err(PlatformError::BadConfig(_))
        ));
    }
}
