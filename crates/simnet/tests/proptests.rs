//! Property tests of the virtual-time engine: causal ordering, bandwidth
//! conservation, and determinism under arbitrary process programs.

use parking_lot::Mutex;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::resource::{BandwidthResource, LinkModel};
use shmcaffe_simnet::stats::RunningStats;
use shmcaffe_simnet::{SimDuration, Simulation};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Events observed by any single process are monotone in virtual time,
    /// and the simulation end equals the max process clock, for arbitrary
    /// sleep programs.
    #[test]
    fn per_process_time_is_monotone(programs in pvec(pvec(0u64..50, 1..20), 1..6)) {
        let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let mut expected_end = 0u64;
        for (pid, prog) in programs.iter().enumerate() {
            expected_end = expected_end.max(prog.iter().sum::<u64>() * 1000);
            let prog = prog.clone();
            let log = Arc::clone(&log);
            sim.spawn(&format!("p{pid}"), move |ctx| {
                for d in prog {
                    ctx.sleep(SimDuration::from_micros(d));
                    log.lock().push((pid, ctx.now().as_nanos()));
                }
            });
        }
        let end = sim.run();
        prop_assert_eq!(end.as_nanos(), expected_end);
        // Per process, timestamps never decrease; globally, the trace is
        // sorted (the scheduler always runs the earliest process).
        let trace = log.lock().clone();
        let mut last_global = 0u64;
        let mut last_per: std::collections::HashMap<usize, u64> = Default::default();
        for (pid, t) in trace {
            prop_assert!(t >= last_global, "global order violated");
            last_global = t;
            let e = last_per.entry(pid).or_insert(0);
            prop_assert!(t >= *e);
            *e = t;
        }
    }

    /// A shared link never moves more bytes per second than its bandwidth:
    /// total service time ≥ total bytes / bandwidth (exact for FIFO).
    #[test]
    fn link_conserves_bandwidth(
        transfers in pvec((1u64..50_000_000, 0u64..10), 1..12),
        bw_gbps in 1u64..20,
    ) {
        let bw = bw_gbps as f64 * 1e9;
        let link = BandwidthResource::new("l", LinkModel::new(bw, SimDuration::ZERO));
        let mut sim = Simulation::new();
        let total_bytes: u64 = transfers.iter().map(|(b, _)| *b).sum();
        for (i, (bytes, delay)) in transfers.into_iter().enumerate() {
            let l = link.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                ctx.sleep(SimDuration::from_micros(delay));
                l.transfer(&ctx, bytes);
            });
        }
        let end = sim.run();
        prop_assert_eq!(link.total_bytes(), total_bytes);
        let min_time = total_bytes as f64 / bw;
        prop_assert!(end.as_secs_f64() >= min_time * 0.999,
            "finished impossibly fast: {} < {}", end.as_secs_f64(), min_time);
        // Busy time is exactly the service integral.
        prop_assert!((link.total_busy().as_secs_f64() - min_time).abs() < 1e-6);
    }

    /// Channels deliver every message exactly once, FIFO per sender, for
    /// arbitrary message counts and pacing.
    #[test]
    fn channels_deliver_exactly_once(counts in pvec(1usize..30, 1..4), pace in 0u64..5) {
        let n_senders = counts.len();
        let total: usize = counts.iter().sum();
        let ch: SimChannel<(usize, usize)> = SimChannel::new("t");
        let got: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for (s, count) in counts.clone().into_iter().enumerate() {
            let ch = ch.clone();
            sim.spawn(&format!("tx{s}"), move |ctx| {
                for i in 0..count {
                    ch.send(&ctx, (s, i));
                    ctx.sleep(SimDuration::from_micros(pace + 1));
                }
            });
        }
        {
            let ch = ch.clone();
            let got = Arc::clone(&got);
            sim.spawn("rx", move |ctx| {
                for _ in 0..total {
                    let msg = ch.recv(&ctx);
                    got.lock().push(msg);
                }
            });
        }
        sim.run();
        let msgs = got.lock().clone();
        prop_assert_eq!(msgs.len(), total);
        // FIFO per sender.
        for s in 0..n_senders {
            let seq: Vec<usize> = msgs.iter().filter(|(x, _)| *x == s).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq.clone(), (0..seq.len()).collect::<Vec<_>>());
        }
    }

    /// RunningStats::merge is associative-enough: merging any split of a
    /// stream matches the whole stream.
    #[test]
    fn stats_merge_any_split(data in pvec(-1e3f64..1e3, 2..60), split in 1usize..59) {
        let split = split.min(data.len() - 1);
        let mut whole = RunningStats::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &v in &data[..split] {
            a.record(v);
        }
        for &v in &data[split..] {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.std_dev() - whole.std_dev()).abs() < 1e-6 * (1.0 + whole.std_dev()));
    }

    /// The whole engine is deterministic: identical programs produce
    /// identical event traces.
    #[test]
    fn engine_is_deterministic(programs in pvec(pvec(0u64..30, 1..10), 2..5)) {
        let run = |programs: &[Vec<u64>]| -> Vec<(usize, u64)> {
            let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let link = BandwidthResource::new("l", LinkModel::new(1e9, SimDuration::ZERO));
            let mut sim = Simulation::new();
            for (pid, prog) in programs.iter().enumerate() {
                let prog = prog.clone();
                let log = Arc::clone(&log);
                let l = link.clone();
                sim.spawn(&format!("p{pid}"), move |ctx| {
                    for d in prog {
                        l.transfer(&ctx, d * 1000 + 1);
                        log.lock().push((pid, ctx.now().as_nanos()));
                    }
                });
            }
            sim.run();
            let out = log.lock().clone();
            out
        };
        prop_assert_eq!(run(&programs), run(&programs));
    }
}
