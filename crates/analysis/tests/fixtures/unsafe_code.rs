// Lint fixture: unsafe outside the audited tensor hot paths.
pub fn reinterpret(x: u32) -> f32 {
    unsafe { std::mem::transmute::<u32, f32>(x) }
}
