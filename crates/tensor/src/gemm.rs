//! Single-precision general matrix multiply.
//!
//! `C = alpha * op(A) * op(B) + beta * C`, row-major, with optional
//! transposition of either operand — the same contract as `cblas_sgemm`,
//! which Caffe calls for inner-product layers and im2col-based convolution.
//!
//! The implementation is a BLIS-style packed kernel: operands are copied
//! into contiguous zero-padded panels (`MR`-row panels of `op(A)`, `NR`-
//! column panels of `op(B)`), and a register-blocked `MR x NR` micro-kernel
//! accumulates along `k`. Packing makes all four transpose combinations hit
//! the same inner loop with unit-stride reads, so transposed layers run as
//! fast as plain ones.
//!
//! Row panels of `C` are distributed over the crate worker pool
//! ([`crate::parallel`]). Split points are fixed multiples of `MC` derived
//! only from the matrix shape — never from the thread count — and each task
//! writes a disjoint row range of `C`, so the result is **bit-identical**
//! at any `SHMCAFFE_THREADS` setting.

use crate::parallel::{self, Task};

/// Whether an operand is transposed, matching BLAS `CblasTrans`/`NoTrans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Rows per micro-tile (accumulator rows held in registers).
const MR: usize = 4;
/// Columns per micro-tile.
const NR: usize = 8;
/// Rows of `op(A)` per cache block — also the parallel split granularity.
const MC: usize = 64;
/// Depth of one packed `k` block.
const KC: usize = 256;

/// Computes `C = alpha * op(A) * op(B) + beta * C` for row-major matrices.
///
/// * `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
/// * `A` is stored `m x k` when `trans_a == No`, otherwise `k x m`.
/// * `B` is stored `k x n` when `trans_b == No`, otherwise `n x k`.
///
/// # Panics
///
/// Panics if any slice is shorter than the implied matrix size.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::gemm::{gemm, Transpose};
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [1.0, 0.0, 0.0, 1.0]; // identity
/// let mut c = [0.0; 4];
/// gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: Transpose,
    trans_b: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);

    // When no product contributes, fall back to the pure beta update. In
    // the common path the beta scaling is fused into the first-k-block
    // write-back below, so `C` is traversed exactly once.
    if alpha == 0.0 || k == 0 {
        scale_c(m, n, beta, c);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }

    // Pack op(B) for one k-block at a time (shared read-only across row
    // tasks), then fan row panels of C out over the worker pool.
    let n_panels = n.div_ceil(NR);
    let mut packed_b = vec![0.0f32; KC.min(k) * n_panels * NR];
    for (pc, kcb) in blocks(k, KC) {
        pack_b(trans_b, n, k, pc, kcb, b, &mut packed_b);
        let first_block = pc == 0;
        let packed_b = &packed_b[..kcb * n_panels * NR];

        // Borrow C as disjoint MC-row panels with fixed boundaries.
        let mut c_rest = &mut c[..m * n];
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(m.div_ceil(MC));
        for (ic, mcb) in blocks(m, MC) {
            let (c_panel, rest) = c_rest.split_at_mut(mcb * n);
            c_rest = rest;
            tasks.push(Box::new(move || {
                gemm_block(
                    trans_a,
                    m,
                    ic,
                    mcb,
                    n,
                    k,
                    pc,
                    kcb,
                    alpha,
                    beta,
                    first_block,
                    a,
                    packed_b,
                    c_panel,
                );
            }));
        }
        parallel::run_tasks(tasks);
    }
}

/// `C *= beta` (with the `beta == 0` NaN-overwriting semantics of BLAS).
fn scale_c(m: usize, n: usize, beta: f32, c: &mut [f32]) {
    if beta == 1.0 {
        return;
    }
    parallel::par_chunks_mut(&mut c[..m * n], parallel::ELEMWISE_CHUNK, |_, chunk| {
        if beta == 0.0 {
            chunk.iter_mut().for_each(|v| *v = 0.0);
        } else {
            chunk.iter_mut().for_each(|v| *v *= beta);
        }
    });
}

/// Fixed block decomposition: `(start, len)` pairs covering `0..total`.
fn blocks(total: usize, step: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..total).step_by(step).map(move |s| (s, step.min(total - s)))
}

/// `op(A)` element at logical `(i, p)`.
#[inline(always)]
fn a_at(trans_a: Transpose, m: usize, k: usize, a: &[f32], i: usize, p: usize) -> f32 {
    match trans_a {
        Transpose::No => a[i * k + p],
        Transpose::Yes => a[p * m + i],
    }
}

/// Packs `op(B)[pc..pc+kcb, 0..n]` into NR-column panels: panel `jp` holds,
/// for each `p`, the `NR` consecutive columns starting at `jp * NR`
/// (zero-padded past `n`).
fn pack_b(
    trans_b: Transpose,
    n: usize,
    k: usize,
    pc: usize,
    kcb: usize,
    b: &[f32],
    out: &mut [f32],
) {
    let n_panels = n.div_ceil(NR);
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let panel = &mut out[jp * kcb * NR..(jp + 1) * kcb * NR];
        match trans_b {
            Transpose::No => {
                for (pp, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let row = &b[(pc + pp) * n + j0..(pc + pp) * n + j0 + cols];
                    dst[..cols].copy_from_slice(row);
                    dst[cols..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
            Transpose::Yes => {
                // B stored n x k: column j of op(B) is row j of storage.
                for (pp, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    for (jj, d) in dst.iter_mut().enumerate() {
                        *d = if jj < cols { b[(j0 + jj) * k + pc + pp] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Packs `op(A)[ic..ic+mcb, pc..pc+kcb]` into MR-row panels: panel `ip`
/// holds, for each `p`, the `MR` consecutive rows starting at `ic + ip*MR`
/// (zero-padded past `m`).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    trans_a: Transpose,
    m: usize,
    k: usize,
    ic: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    a: &[f32],
    out: &mut [f32],
) {
    let m_panels = mcb.div_ceil(MR);
    for ip in 0..m_panels {
        let i0 = ic + ip * MR;
        let rows = MR.min(ic + mcb - i0);
        let panel = &mut out[ip * kcb * MR..(ip + 1) * kcb * MR];
        for (pp, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = if ii < rows { a_at(trans_a, m, k, a, i0 + ii, pc + pp) } else { 0.0 };
            }
        }
    }
}

/// One `MC x n` row panel of C for one k-block: packs the A block locally,
/// then sweeps the `MR x NR` micro-kernel over the tile grid.
///
/// `c_panel` is the `mcb x n` sub-slice of C starting at row `ic`.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    trans_a: Transpose,
    m: usize,
    ic: usize,
    mcb: usize,
    n: usize,
    k: usize,
    pc: usize,
    kcb: usize,
    alpha: f32,
    beta: f32,
    first_block: bool,
    a: &[f32],
    packed_b: &[f32],
    c_panel: &mut [f32],
) {
    let mut packed_a = vec![0.0f32; mcb.div_ceil(MR) * MR * kcb];
    pack_a(trans_a, m, k, ic, mcb, pc, kcb, a, &mut packed_a);

    let n_panels = n.div_ceil(NR);
    let mut acc = [[0.0f32; NR]; MR];
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let b_panel = &packed_b[jp * kcb * NR..(jp + 1) * kcb * NR];
        for ip in 0..mcb.div_ceil(MR) {
            let i0 = ip * MR;
            let rows = MR.min(mcb - i0);
            let a_panel = &packed_a[ip * kcb * MR..(ip + 1) * kcb * MR];
            micro_kernel_dispatch(kcb, a_panel, b_panel, &mut acc);
            // Write-back with the alpha/beta update fused: the first k-block
            // applies beta exactly once (beta == 0 overwrites, so stale NaNs
            // never survive), later blocks accumulate.
            for (ii, acc_row) in acc.iter_mut().enumerate().take(rows) {
                let c_row = &mut c_panel[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + cols];
                if first_block {
                    if beta == 0.0 {
                        for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                            *cv = alpha * av;
                        }
                    } else {
                        for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                            *cv = alpha * av + beta * *cv;
                        }
                    }
                } else {
                    for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                        *cv += alpha * av;
                    }
                }
            }
            acc.iter_mut().for_each(|r| r.iter_mut().for_each(|v| *v = 0.0));
        }
    }
}

/// The register-blocked core: `acc += A_panel * B_panel` over `kc` steps.
///
/// `a` is `kc` groups of `MR` values (one per micro-row), `b` is `kc`
/// groups of `NR` values (one per micro-column). Fixed-size array views
/// let the compiler keep the `MR x NR` accumulator in registers and
/// vectorise the column loop.
#[inline(always)]
fn micro_kernel_body(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        let av: &[f32; MR] = av.try_into().expect("MR chunk");
        let bv: &[f32; NR] = bv.try_into().expect("NR chunk");
        for (ii, acc_row) in acc.iter_mut().enumerate() {
            let ai = av[ii];
            for (jj, accv) in acc_row.iter_mut().enumerate() {
                *accv += ai * bv[jj];
            }
        }
    }
}

/// Baseline-ISA compilation of the micro-kernel.
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel_body(kc, a, b, acc);
}

/// The same micro-kernel recompiled with AVX2 enabled, so the `NR`-wide
/// column loop becomes one 256-bit lane instead of two 128-bit ones.
///
/// This performs the *identical* sequence of IEEE multiplies and adds as
/// [`micro_kernel`] (Rust never contracts `a * b + c` into an FMA), just on
/// wider registers — results stay bit-identical to the baseline path.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn micro_kernel_avx2(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel_body(kc, a, b, acc);
}

/// Runtime micro-kernel selector, detected once per process. Compiled out
/// under Miri (scripts/miri.sh), which does not model `target_feature`
/// recompilation — the baseline kernel is bit-identical anyway.
#[cfg(all(target_arch = "x86_64", not(miri)))]
fn use_avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[inline(always)]
fn micro_kernel_dispatch(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if use_avx2() {
        // SAFETY: guarded by the runtime AVX2 detection above.
        #[allow(unsafe_code)]
        unsafe {
            micro_kernel_avx2(kc, a, b, acc);
        }
        return;
    }
    micro_kernel(kc, a, b, acc);
}

/// Matrix-vector product `y = alpha * op(A) * x + beta * y` (row-major).
///
/// `op(A)` is `m x n`; `x` has length `n`, `y` has length `m`.
///
/// # Panics
///
/// Panics if any slice is shorter than the implied size.
#[allow(clippy::too_many_arguments)] // BLAS-compatible signature
pub fn gemv(
    trans: Transpose,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    gemm(trans, Transpose::No, m, 1, n, alpha, a, x, beta, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple-loop reference used to validate the packed kernels.
    fn reference(
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let get_a = |i: usize, p: usize| match trans_a {
            Transpose::No => a[i * k + p],
            Transpose::Yes => a[p * m + i],
        };
        let get_b = |p: usize, j: usize| match trans_b {
            Transpose::No => b[p * n + j],
            Transpose::Yes => b[j * k + p],
        };
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += get_a(i, p) * get_b(p, j);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn deterministic_matrix(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG keeps tests dependency-free and reproducible.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as f32 / 65536.0) - 0.5
            })
            .collect()
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let (m, n, k) = (7, 5, 9);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let a = deterministic_matrix(m * k, 1);
                let b = deterministic_matrix(k * n, 2);
                let expected = reference(ta, tb, m, n, k, &a, &b);
                let mut c = vec![0.0; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                for (got, want) in c.iter().zip(expected.iter()) {
                    assert!((got - want).abs() < 1e-4, "{got} vs {want} ({ta:?},{tb:?})");
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_matches_reference_on_large_sizes() {
        let (m, n, k) = (130, 70, 90);
        let a = deterministic_matrix(m * k, 3);
        let b = deterministic_matrix(k * n, 4);
        let expected = reference(Transpose::No, Transpose::No, m, n, k, &a, &b);
        let mut c = vec![0.0; m * n];
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        for (got, want) in c.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-3);
        }
    }

    #[test]
    fn deep_k_crosses_multiple_packed_blocks() {
        // k > KC exercises the multi-block accumulate path (beta fused only
        // into the first block's write-back).
        let (m, n, k) = (9, 11, 2 * KC + 37);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let a = deterministic_matrix(m * k, 5);
                let b = deterministic_matrix(k * n, 6);
                let expected = reference(ta, tb, m, n, k, &a, &b);
                let mut c = deterministic_matrix(m * n, 7);
                let c0 = c.clone();
                gemm(ta, tb, m, n, k, 0.5, &a, &b, 2.0, &mut c);
                for (idx, (got, want)) in c.iter().zip(expected.iter()).enumerate() {
                    let full = 0.5 * want + 2.0 * c0[idx];
                    assert!((got - full).abs() < 2e-2, "{got} vs {full} ({ta:?},{tb:?})");
                }
            }
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        gemm(Transpose::No, Transpose::No, 2, 2, 2, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, [9.0, 11.0, 13.0, 15.0]);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = [1.0];
        let b = [1.0];
        let mut c = [f32::NAN];
        gemm(Transpose::No, Transpose::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, [1.0]);
    }

    #[test]
    fn alpha_zero_still_applies_beta() {
        let mut c = [f32::NAN, 3.0];
        gemm(Transpose::No, Transpose::No, 1, 2, 3, 0.0, &[0.0; 3], &[0.0; 6], 0.0, &mut c);
        assert_eq!(c, [0.0, 0.0]);
        let mut c = [2.0, 3.0];
        gemm(Transpose::No, Transpose::No, 1, 2, 3, 0.0, &[0.0; 3], &[0.0; 6], 0.5, &mut c);
        assert_eq!(c, [1.0, 1.5]);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c = [5.0];
        gemm(Transpose::No, Transpose::No, 1, 1, 0, 1.0, &[], &[], 1.0, &mut c);
        assert_eq!(c, [5.0]);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let (m, n, k) = (150, 67, 300);
        let a = deterministic_matrix(m * k, 8);
        let b = deterministic_matrix(k * n, 9);
        let run = |threads: usize| {
            crate::parallel::with_threads(threads, || {
                let mut c = vec![0.0f32; m * n];
                gemm(Transpose::No, Transpose::Yes, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                c
            })
        };
        let serial = run(1);
        for t in [2, 4, 7] {
            let par = run(t);
            assert!(
                serial.iter().zip(par.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={t} diverged"
            );
        }
    }

    #[test]
    fn gemv_matches_manual() {
        // A = [[1,2],[3,4],[5,6]] (3x2), x = [1, -1]
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv(Transpose::No, 3, 2, 1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
        // A^T * v for v of length 3.
        let v = [1.0, 1.0, 1.0];
        let mut z = [0.0; 2];
        gemv(Transpose::Yes, 2, 3, 1.0, &a, &v, 0.0, &mut z);
        assert_eq!(z, [9.0, 12.0]);
    }
}
