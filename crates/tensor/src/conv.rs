//! 2-D convolution via im2col + gemm, exactly as BVLC Caffe implements it.
//!
//! Layout conventions follow Caffe blobs:
//!
//! * inputs and outputs are `(N, C, H, W)` row-major,
//! * weights are `(C_out, C_in, KH, KW)`,
//! * the im2col matrix is `(C_in*KH*KW) x (H_out*W_out)` per image.
//!
//! The batch loop is the parallel axis: each image's im2col + gemm is an
//! independent task on the crate worker pool (per-image output rows and
//! input-gradient rows are disjoint). Weight/bias gradients, which reduce
//! over the batch, are computed into per-image partial buffers and combined
//! **in image order** on the calling thread, so the result is bit-identical
//! at any `SHMCAFFE_THREADS` — the decomposition depends only on the batch
//! size, never on the thread count.

use crate::gemm::{gemm, Transpose};
use crate::ops;
use crate::parallel::{self, Task};
use crate::TensorError;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical zero padding.
    pub pad_h: usize,
    /// Horizontal zero padding.
    pub pad_w: usize,
}

impl Conv2dGeometry {
    /// Square-kernel convenience constructor.
    pub fn square(
        in_channels: usize,
        in_hw: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Conv2dGeometry {
            in_channels,
            in_h: in_hw,
            in_w: in_hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
        }
    }

    /// Output height `(H + 2*pad - KH) / stride + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if the window does not fit.
    pub fn out_h(&self) -> Result<usize, TensorError> {
        out_extent(self.in_h, self.kernel_h, self.stride_h, self.pad_h)
    }

    /// Output width `(W + 2*pad - KW) / stride + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if the window does not fit.
    pub fn out_w(&self) -> Result<usize, TensorError> {
        out_extent(self.in_w, self.kernel_w, self.stride_w, self.pad_w)
    }

    /// Rows of the im2col matrix: `C_in * KH * KW`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the im2col matrix: `H_out * W_out`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if the window does not fit.
    pub fn col_cols(&self) -> Result<usize, TensorError> {
        Ok(self.out_h()? * self.out_w()?)
    }

    /// Elements of one input image: `C_in * H * W`.
    pub fn in_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }
}

fn out_extent(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::BadGeometry("stride must be positive".into()));
    }
    let padded = input + 2 * pad;
    if kernel == 0 || kernel > padded {
        return Err(TensorError::BadGeometry(format!(
            "kernel {kernel} does not fit input {input} with pad {pad}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Unrolls one image `(C, H, W)` into the column matrix used by gemm.
///
/// `col` must have `geom.col_rows() * geom.col_cols()` elements.
///
/// # Panics
///
/// Panics if buffer sizes do not match the geometry.
pub fn im2col(geom: &Conv2dGeometry, image: &[f32], col: &mut [f32]) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    assert_eq!(image.len(), geom.in_len(), "image buffer size mismatch");
    assert_eq!(col.len(), geom.col_rows() * out_h * out_w, "col buffer size mismatch");

    let mut col_idx = 0;
    for c in 0..geom.in_channels {
        let chan = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                for oh in 0..out_h {
                    let ih = (oh * geom.stride_h + kh) as isize - geom.pad_h as isize;
                    for ow in 0..out_w {
                        let iw = (ow * geom.stride_w + kw) as isize - geom.pad_w as isize;
                        col[col_idx] = if ih >= 0
                            && iw >= 0
                            && (ih as usize) < geom.in_h
                            && (iw as usize) < geom.in_w
                        {
                            chan[ih as usize * geom.in_w + iw as usize]
                        } else {
                            0.0
                        };
                        col_idx += 1;
                    }
                }
            }
        }
    }
}

/// Accumulates a column matrix back into an image (adjoint of [`im2col`]).
///
/// The image buffer is *not* cleared; contributions are added, which is what
/// the backward pass needs when accumulating input gradients.
///
/// # Panics
///
/// Panics if buffer sizes do not match the geometry.
pub fn col2im(geom: &Conv2dGeometry, col: &[f32], image: &mut [f32]) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    assert_eq!(image.len(), geom.in_len(), "image buffer size mismatch");
    assert_eq!(col.len(), geom.col_rows() * out_h * out_w, "col buffer size mismatch");

    let mut col_idx = 0;
    for c in 0..geom.in_channels {
        let base = c * geom.in_h * geom.in_w;
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                for oh in 0..out_h {
                    let ih = (oh * geom.stride_h + kh) as isize - geom.pad_h as isize;
                    for ow in 0..out_w {
                        let iw = (ow * geom.stride_w + kw) as isize - geom.pad_w as isize;
                        if ih >= 0
                            && iw >= 0
                            && (ih as usize) < geom.in_h
                            && (iw as usize) < geom.in_w
                        {
                            image[base + ih as usize * geom.in_w + iw as usize] += col[col_idx];
                        }
                        col_idx += 1;
                    }
                }
            }
        }
    }
}

/// Convolution forward for a batch.
///
/// * `input`: `(N, C_in, H, W)` flattened,
/// * `weights`: `(C_out, C_in*KH*KW)` flattened,
/// * `bias`: length `C_out` (may be empty for no bias),
/// * `output`: `(N, C_out, H_out, W_out)` flattened,
/// * `col_buf`: scratch of `col_rows * col_cols` elements (used when the
///   batch runs on the calling thread; parallel image tasks carry their own
///   scratch so they never contend for it).
///
/// Images are processed as independent parallel tasks; see the module docs
/// for the determinism contract.
///
/// # Panics
///
/// Panics on buffer size mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    geom: &Conv2dGeometry,
    batch: usize,
    out_channels: usize,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    output: &mut [f32],
    col_buf: &mut [f32],
) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let spatial = out_h * out_w;
    let in_len = geom.in_len();
    let out_len = out_channels * spatial;
    let col_len = geom.col_rows() * spatial;
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(output.len(), batch * out_len, "output size mismatch");
    assert_eq!(weights.len(), out_channels * geom.col_rows(), "weight size mismatch");
    assert!(bias.is_empty() || bias.len() == out_channels, "bias size mismatch");
    assert_eq!(col_buf.len(), col_len, "col buffer size mismatch");

    let forward_one = |image: &[f32], out_image: &mut [f32], col: &mut [f32]| {
        im2col(geom, image, col);
        // (C_out x K) * (K x spatial) = C_out x spatial
        gemm(
            Transpose::No,
            Transpose::No,
            out_channels,
            spatial,
            geom.col_rows(),
            1.0,
            weights,
            col,
            0.0,
            out_image,
        );
        if !bias.is_empty() {
            for (c, &b) in bias.iter().enumerate() {
                for v in &mut out_image[c * spatial..(c + 1) * spatial] {
                    *v += b;
                }
            }
        }
    };

    if batch <= 1 || parallel::current_threads() <= 1 {
        for (image, out_image) in input.chunks(in_len).zip(output.chunks_mut(out_len)) {
            forward_one(image, out_image, col_buf);
        }
        return;
    }
    let forward_one = &forward_one;
    let tasks: Vec<Task<'_>> = input
        .chunks(in_len)
        .zip(output.chunks_mut(out_len))
        .map(|(image, out_image)| -> Task<'_> {
            Box::new(move || {
                let mut col = vec![0.0f32; col_len];
                forward_one(image, out_image, &mut col);
            })
        })
        .collect();
    parallel::run_tasks(tasks);
}

/// Convolution backward for a batch.
///
/// Computes weight/bias gradients (accumulated into `d_weights`/`d_bias`)
/// and, when `d_input` is non-empty, the input gradient (overwritten).
///
/// Per-image work (im2col, both gemms, col2im) runs as parallel tasks;
/// the batch reductions into `d_weights`/`d_bias` go through per-image
/// partial buffers combined in image order on the calling thread, keeping
/// the result independent of the thread count.
///
/// # Panics
///
/// Panics on buffer size mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    geom: &Conv2dGeometry,
    batch: usize,
    out_channels: usize,
    input: &[f32],
    weights: &[f32],
    d_output: &[f32],
    d_weights: &mut [f32],
    d_bias: &mut [f32],
    d_input: &mut [f32],
    col_buf: &mut [f32],
) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let spatial = out_h * out_w;
    let in_len = geom.in_len();
    let out_len = out_channels * spatial;
    let col_len = geom.col_rows() * spatial;
    let dw_len = out_channels * geom.col_rows();
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(d_output.len(), batch * out_len, "d_output size mismatch");
    assert_eq!(d_weights.len(), dw_len, "d_weights size mismatch");
    assert!(d_bias.is_empty() || d_bias.len() == out_channels, "d_bias size mismatch");
    assert!(d_input.is_empty() || d_input.len() == batch * in_len, "d_input size mismatch");
    assert_eq!(col_buf.len(), col_len, "col buffer size mismatch");

    if !d_input.is_empty() {
        d_input.iter_mut().for_each(|v| *v = 0.0);
    }

    // One task per image: gradients that reduce over the batch land in the
    // image's own partial slice (computed with beta = 0), everything else
    // writes disjoint per-image rows directly.
    let backward_one = |n: usize,
                        dw_partial: &mut [f32],
                        db_partial: &mut [f32],
                        d_image: &mut [f32],
                        col: &mut [f32]| {
        let image = &input[n * in_len..(n + 1) * in_len];
        let d_out_image = &d_output[n * out_len..(n + 1) * out_len];

        // dW_n = dY_n * col_n^T : (C_out x spatial) * (spatial x K)
        im2col(geom, image, col);
        gemm(
            Transpose::No,
            Transpose::Yes,
            out_channels,
            geom.col_rows(),
            spatial,
            1.0,
            d_out_image,
            col,
            0.0,
            dw_partial,
        );

        for (c, db) in db_partial.iter_mut().enumerate() {
            *db = d_out_image[c * spatial..(c + 1) * spatial].iter().sum::<f32>();
        }

        if !d_image.is_empty() {
            // d_col = W^T * dY : (K x C_out) * (C_out x spatial)
            gemm(
                Transpose::Yes,
                Transpose::No,
                geom.col_rows(),
                spatial,
                out_channels,
                1.0,
                weights,
                d_out_image,
                0.0,
                col,
            );
            col2im(geom, col, d_image);
        }
    };

    let mut dw_partials = vec![0.0f32; batch * dw_len];
    let mut db_partials = vec![0.0f32; batch * out_channels];
    if batch <= 1 || parallel::current_threads() <= 1 {
        let mut d_rest = &mut d_input[..];
        for n in 0..batch {
            let d_image = if d_rest.is_empty() {
                &mut [][..]
            } else {
                let (head, tail) = d_rest.split_at_mut(in_len);
                d_rest = tail;
                head
            };
            backward_one(
                n,
                &mut dw_partials[n * dw_len..(n + 1) * dw_len],
                &mut db_partials[n * out_channels..(n + 1) * out_channels],
                d_image,
                col_buf,
            );
        }
    } else {
        let backward_one = &backward_one;
        let mut d_in_chunks: Vec<&mut [f32]> = if d_input.is_empty() {
            (0..batch).map(|_| &mut [][..]).collect()
        } else {
            d_input.chunks_mut(in_len).collect()
        };
        let tasks: Vec<Task<'_>> = dw_partials
            .chunks_mut(dw_len)
            .zip(db_partials.chunks_mut(out_channels))
            .zip(d_in_chunks.drain(..))
            .enumerate()
            .map(|(n, ((dw_partial, db_partial), d_image))| -> Task<'_> {
                Box::new(move || {
                    let mut col = vec![0.0f32; col_len];
                    backward_one(n, dw_partial, db_partial, d_image, &mut col);
                })
            })
            .collect();
        parallel::run_tasks(tasks);
    }

    // Deterministic reduction: image order, on the calling thread.
    for n in 0..batch {
        ops::axpy_serial(1.0, &dw_partials[n * dw_len..(n + 1) * dw_len], d_weights);
        if !d_bias.is_empty() {
            ops::axpy_serial(1.0, &db_partials[n * out_channels..(n + 1) * out_channels], d_bias);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_formula() {
        // 5x5 input, 3x3 kernel, stride 1, no pad -> 3x3 output.
        let g = Conv2dGeometry::square(1, 5, 3, 1, 0);
        assert_eq!(g.out_h().unwrap(), 3);
        // pad 1 -> same-size output.
        let g = Conv2dGeometry::square(1, 5, 3, 1, 1);
        assert_eq!(g.out_h().unwrap(), 5);
        // stride 2.
        let g = Conv2dGeometry::square(1, 5, 3, 2, 0);
        assert_eq!(g.out_h().unwrap(), 2);
    }

    #[test]
    fn bad_geometry_is_reported() {
        let g = Conv2dGeometry::square(1, 2, 5, 1, 0);
        assert!(g.out_h().is_err());
        let g = Conv2dGeometry { stride_h: 0, ..Conv2dGeometry::square(1, 5, 3, 1, 0) };
        assert!(g.out_h().is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is the identity.
        let g = Conv2dGeometry::square(2, 3, 1, 1, 0);
        let image: Vec<f32> = (0..18).map(|v| v as f32).collect();
        let mut col = vec![0.0; 18];
        im2col(&g, &image, &mut col);
        assert_eq!(col, image);
    }

    #[test]
    fn im2col_known_patch() {
        // 3x3 image, 2x2 kernel, stride 1, no pad -> 2x2 output, 4 rows.
        let g = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let image = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let mut col = vec![0.0; 4 * 4];
        im2col(&g, &image, &mut col);
        // Row 0 = kernel offset (0,0) over outputs: 1,2,4,5
        assert_eq!(&col[0..4], &[1., 2., 4., 5.]);
        // Row 3 = kernel offset (1,1): 5,6,8,9
        assert_eq!(&col[12..16], &[5., 6., 8., 9.]);
    }

    #[test]
    fn conv_forward_matches_manual() {
        // Single channel 3x3 image, one 2x2 kernel of ones -> sum pooling.
        let g = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let input = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let weights = vec![1.0; 4];
        let bias = vec![0.5];
        let mut output = vec![0.0; 4];
        let mut col = vec![0.0; g.col_rows() * g.col_cols().unwrap()];
        conv2d_forward(&g, 1, 1, &input, &weights, &bias, &mut output, &mut col);
        assert_eq!(output, vec![12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_forward_with_padding_zero_fills() {
        let g = Conv2dGeometry::square(1, 2, 3, 1, 1);
        let input = vec![1., 1., 1., 1.];
        let weights = vec![1.0; 9];
        let mut output = vec![0.0; 4];
        let mut col = vec![0.0; g.col_rows() * g.col_cols().unwrap()];
        conv2d_forward(&g, 1, 1, &input, &weights, &[], &mut output, &mut col);
        // Every 3x3 window over the padded 4x4 contains the full 2x2 block.
        assert_eq!(output, vec![4.0; 4]);
    }

    /// Numerical gradient check of the full conv backward pass.
    #[test]
    fn conv_backward_matches_finite_difference() {
        let g = Conv2dGeometry::square(2, 4, 3, 1, 1);
        let batch = 2;
        let out_channels = 3;
        let in_len = g.in_len();
        let out_len = out_channels * g.col_cols().unwrap();

        let mut input: Vec<f32> =
            (0..batch * in_len).map(|i| ((i % 7) as f32 - 3.0) * 0.3).collect();
        let weights: Vec<f32> =
            (0..out_channels * g.col_rows()).map(|i| ((i % 5) as f32 - 2.0) * 0.1).collect();
        let bias = vec![0.1, -0.2, 0.3];
        let d_output: Vec<f32> =
            (0..batch * out_len).map(|i| ((i % 3) as f32 - 1.0) * 0.5).collect();

        let loss = |input: &[f32], weights: &[f32], bias: &[f32]| -> f32 {
            let mut output = vec![0.0; batch * out_len];
            let mut col = vec![0.0; g.col_rows() * g.col_cols().unwrap()];
            conv2d_forward(&g, batch, out_channels, input, weights, bias, &mut output, &mut col);
            // Loss = <output, d_output>, so dL/d* flows through d_output.
            output.iter().zip(d_output.iter()).map(|(o, d)| o * d).sum()
        };

        let mut d_weights = vec![0.0; weights.len()];
        let mut d_bias = vec![0.0; bias.len()];
        let mut d_input = vec![0.0; input.len()];
        let mut col = vec![0.0; g.col_rows() * g.col_cols().unwrap()];
        conv2d_backward(
            &g,
            batch,
            out_channels,
            &input,
            &weights,
            &d_output,
            &mut d_weights,
            &mut d_bias,
            &mut d_input,
            &mut col,
        );

        let eps = 1e-2;
        // Spot-check a handful of weight gradients.
        for &wi in &[0usize, 7, 19, weights.len() - 1] {
            let mut wp = weights.clone();
            wp[wi] += eps;
            let mut wm = weights.clone();
            wm[wi] -= eps;
            let numeric = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (d_weights[wi] - numeric).abs() < 1e-2,
                "dW[{wi}]: analytic {} vs numeric {numeric}",
                d_weights[wi]
            );
        }
        // Bias gradients.
        for bi in 0..bias.len() {
            let mut bp = bias.clone();
            bp[bi] += eps;
            let mut bm = bias.clone();
            bm[bi] -= eps;
            let numeric = (loss(&input, &weights, &bp) - loss(&input, &weights, &bm)) / (2.0 * eps);
            assert!((d_bias[bi] - numeric).abs() < 1e-2);
        }
        // Input gradients.
        for &ii in &[0usize, 5, 17, input.len() - 1] {
            let orig = input[ii];
            input[ii] = orig + eps;
            let lp = loss(&input, &weights, &bias);
            input[ii] = orig - eps;
            let lm = loss(&input, &weights, &bias);
            input[ii] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((d_input[ii] - numeric).abs() < 1e-2);
        }
    }

    /// col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let g = Conv2dGeometry::square(2, 5, 3, 2, 1);
        let cols = g.col_rows() * g.col_cols().unwrap();
        let x: Vec<f32> = (0..g.in_len()).map(|i| (i as f32 * 0.37).sin()).collect();
        let c: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.11).cos()).collect();

        let mut col = vec![0.0; cols];
        im2col(&g, &x, &mut col);
        let lhs: f32 = col.iter().zip(c.iter()).map(|(a, b)| a * b).sum();

        let mut img = vec![0.0; g.in_len()];
        col2im(&g, &c, &mut img);
        let rhs: f32 = x.iter().zip(img.iter()).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
