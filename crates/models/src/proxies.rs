//! Trainable proxy networks for the convergence experiments.
//!
//! Convergence behaviour of SEASGD / SSGD / HSGD (Figs 8 and 11) is a
//! property of the optimizer dynamics, not the model scale (DESIGN.md §1),
//! so the convergence harness trains these small real networks built from
//! the same layer library.

use shmcaffe_dnn::layers::{
    BatchNorm, Conv2d, Dropout, Inception, InceptionSpec, InnerProduct, Lrn, Pool2d, Relu,
};
use shmcaffe_dnn::{DnnError, Net};
use shmcaffe_tensor::conv::Conv2dGeometry;
use shmcaffe_tensor::init::Filler;

/// A two-hidden-layer MLP classifier for vector datasets (blobs, spirals).
///
/// `seed` controls weight initialisation; replicas built from the same seed
/// are bitwise identical, which the distributed platforms rely on.
pub fn mlp(input_dim: usize, hidden: usize, classes: usize, seed: u64) -> Net {
    let mut net = Net::new("mlp_proxy");
    net.add(InnerProduct::new("fc1", input_dim, hidden, Filler::Msra, seed));
    net.add(Relu::new("relu1"));
    net.add(InnerProduct::new("fc2", hidden, hidden, Filler::Msra, seed));
    net.add(Relu::new("relu2"));
    net.add(InnerProduct::new("fc3", hidden, classes, Filler::Xavier, seed));
    net
}

/// An MLP with dropout regularisation (for the larger synthetic tasks).
pub fn mlp_dropout(input_dim: usize, hidden: usize, classes: usize, ratio: f32, seed: u64) -> Net {
    let mut net = Net::new("mlp_dropout_proxy");
    net.add(InnerProduct::new("fc1", input_dim, hidden, Filler::Msra, seed));
    net.add(Relu::new("relu1"));
    net.add(Dropout::new("drop1", ratio, seed));
    net.add(InnerProduct::new("fc2", hidden, classes, Filler::Xavier, seed));
    net
}

/// A LeNet-style CNN for `channels × hw × hw` synthetic images:
/// conv-pool-conv-pool-fc-relu-fc, the canonical Caffe example topology.
///
/// # Errors
///
/// Returns an error if `hw` is too small for the conv/pool geometry
/// (minimum 12).
pub fn small_cnn(channels: usize, hw: usize, classes: usize, seed: u64) -> Result<Net, DnnError> {
    let mut net = Net::new("small_cnn_proxy");
    let g1 = Conv2dGeometry::square(channels, hw, 3, 1, 1);
    net.add(Conv2d::new("conv1", g1, 8, Filler::Msra, seed)?);
    net.add(Relu::new("relu1"));
    net.add(Pool2d::max_square("pool1", 8, hw, 2, 2)?);
    let hw2 = hw / 2;
    let g2 = Conv2dGeometry::square(8, hw2, 3, 1, 1);
    net.add(Conv2d::new("conv2", g2, 16, Filler::Msra, seed)?);
    net.add(Relu::new("relu2"));
    net.add(Pool2d::max_square("pool2", 16, hw2, 2, 2)?);
    let hw4 = hw2 / 2;
    net.add(InnerProduct::new("fc1", 16 * hw4 * hw4, 64, Filler::Msra, seed));
    net.add(Relu::new("relu3"));
    net.add(InnerProduct::new("fc2", 64, classes, Filler::Xavier, seed));
    Ok(net)
}

/// A batch-normalised CNN variant (exercises running-statistics layers in
/// the distributed setting).
///
/// # Errors
///
/// Returns an error if `hw` is too small for the geometry (minimum 8).
pub fn bn_cnn(channels: usize, hw: usize, classes: usize, seed: u64) -> Result<Net, DnnError> {
    let mut net = Net::new("bn_cnn_proxy");
    let g1 = Conv2dGeometry::square(channels, hw, 3, 1, 1);
    net.add(Conv2d::new("conv1", g1, 8, Filler::Msra, seed)?);
    net.add(BatchNorm::new("bn1", 8));
    net.add(Relu::new("relu1"));
    net.add(Pool2d::max_square("pool1", 8, hw, 2, 2)?);
    let hw2 = hw / 2;
    net.add(InnerProduct::new("fc1", 8 * hw2 * hw2, 32, Filler::Msra, seed));
    net.add(Relu::new("relu2"));
    net.add(InnerProduct::new("fc2", 32, classes, Filler::Xavier, seed));
    Ok(net)
}

/// A miniature GoogLeNet: stem conv + LRN, two stacked Inception modules,
/// pooling and a linear classifier — the same architectural ingredients as
/// the paper's Inception_v1 at toy scale.
///
/// Input `(N, channels, hw, hw)` with `hw` divisible by 4 and ≥ 8.
///
/// # Errors
///
/// Returns an error if the geometry does not fit.
pub fn mini_inception(
    channels: usize,
    hw: usize,
    classes: usize,
    seed: u64,
) -> Result<Net, DnnError> {
    let mut net = Net::new("mini_inception_proxy");
    // Stem: 3x3 conv -> ReLU -> LRN -> 2x2 pool.
    let g_stem = Conv2dGeometry::square(channels, hw, 3, 1, 1);
    net.add(Conv2d::new("stem/conv", g_stem, 8, Filler::Msra, seed)?);
    net.add(Relu::new("stem/relu"));
    net.add(Lrn::with_defaults("stem/lrn"));
    net.add(Pool2d::max_square("stem/pool", 8, hw, 2, 2)?);
    let hw2 = hw / 2;
    // Inception 3a / 3b.
    let spec_a = InceptionSpec { c1: 4, c3_reduce: 4, c3: 8, c5_reduce: 2, c5: 2, pool_proj: 2 };
    net.add(Inception::new("inception_3a", 8, hw2, spec_a, seed)?);
    let spec_b = InceptionSpec { c1: 6, c3_reduce: 4, c3: 8, c5_reduce: 2, c5: 4, pool_proj: 6 };
    net.add(Inception::new("inception_3b", spec_a.out_channels(), hw2, spec_b, seed)?);
    // Pool and classify.
    net.add(Pool2d::max_square("pool4", spec_b.out_channels(), hw2, 2, 2)?);
    let hw4 = hw2 / 2;
    net.add(InnerProduct::new(
        "classifier",
        spec_b.out_channels() * hw4 * hw4,
        classes,
        Filler::Xavier,
        seed,
    ));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_dnn::data::{Dataset, SyntheticBlobs, SyntheticImages};
    use shmcaffe_dnn::metrics::evaluate;
    use shmcaffe_dnn::{LrPolicy, Phase, Solver, SolverConfig};
    use shmcaffe_tensor::Tensor;

    #[test]
    fn mlp_replicas_are_identical_per_seed() {
        let mut a = mlp(4, 8, 3, 42);
        let mut b = mlp(4, 8, 3, 42);
        let n = a.param_len();
        let mut wa = vec![0.0; n];
        let mut wb = vec![0.0; n];
        a.copy_weights_to(&mut wa).unwrap();
        b.copy_weights_to(&mut wb).unwrap();
        assert_eq!(wa, wb);
        let mut c = mlp(4, 8, 3, 43);
        let mut wc = vec![0.0; n];
        c.copy_weights_to(&mut wc).unwrap();
        assert_ne!(wa, wc);
    }

    #[test]
    fn small_cnn_shapes_flow() {
        let mut net = small_cnn(3, 16, 5, 1).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, Phase::Test).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    fn small_cnn_learns_synthetic_images() {
        let ds = SyntheticImages::new(3, 1, 12, 120, 0.05, 3);
        let net = small_cnn(1, 12, 3, 5).unwrap();
        let mut solver = Solver::new(
            net,
            SolverConfig {
                base_lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
                policy: LrPolicy::Fixed,
                clip_gradients: None,
            },
        );
        for _ in 0..15 {
            for start in (0..120).step_by(24) {
                let idx: Vec<usize> = (start..start + 24).collect();
                let (x, y) = ds.minibatch(&idx).unwrap();
                solver.step(&x, &y).unwrap();
            }
        }
        let mut net = solver.into_net();
        let res = evaluate(&mut net, &ds, 40, 2).unwrap();
        assert!(res.top1 > 0.8, "cnn should learn oriented gratings: {}", res.top1);
    }

    #[test]
    fn mlp_dropout_still_learns() {
        let ds = SyntheticBlobs::new(3, 6, 150, 0.3, 9);
        let net = mlp_dropout(6, 32, 3, 0.2, 7);
        let mut solver = Solver::new(net, SolverConfig { base_lr: 0.05, ..Default::default() });
        for _ in 0..40 {
            for start in (0..150).step_by(30) {
                let idx: Vec<usize> = (start..start + 30).collect();
                let (x, y) = ds.minibatch(&idx).unwrap();
                solver.step(&x, &y).unwrap();
            }
        }
        let mut net = solver.into_net();
        let res = evaluate(&mut net, &ds, 50, 2).unwrap();
        assert!(res.top1 > 0.85, "{}", res.top1);
    }

    #[test]
    fn bn_cnn_builds_and_runs() {
        let mut net = bn_cnn(1, 8, 4, 2).unwrap();
        let x = Tensor::zeros(&[3, 1, 8, 8]);
        let (loss, _) = net.forward_loss(&x, &[0, 1, 2], Phase::Train).unwrap();
        assert!(loss.is_finite());
        net.backward_from_loss(&[0, 1, 2]).unwrap();
    }

    #[test]
    fn bad_geometry_is_an_error_not_a_panic() {
        assert!(small_cnn(1, 2, 3, 0).is_err());
    }

    #[test]
    fn mini_inception_shapes_flow() {
        let mut net = mini_inception(1, 8, 4, 3).unwrap();
        let x = Tensor::zeros(&[2, 1, 8, 8]);
        let y = net.forward(&x, Phase::Test).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        assert!(net.param_len() > 1000, "inception modules carry real weights");
    }

    #[test]
    fn mini_inception_learns_gratings() {
        let ds = SyntheticImages::new(3, 1, 8, 90, 0.05, 4);
        let net = mini_inception(1, 8, 3, 6).unwrap();
        let mut solver = Solver::new(
            net,
            SolverConfig {
                base_lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
                policy: LrPolicy::Fixed,
                clip_gradients: Some(5.0),
            },
        );
        for _ in 0..12 {
            for start in (0..90).step_by(30) {
                let idx: Vec<usize> = (start..start + 30).collect();
                let (x, y) = ds.minibatch(&idx).unwrap();
                solver.step(&x, &y).unwrap();
            }
        }
        let mut net = solver.into_net();
        let res = evaluate(&mut net, &ds, 45, 2).unwrap();
        assert!(res.top1 > 0.7, "mini inception should learn: {}", res.top1);
    }
}
