//! CNN model zoo: the paper's four evaluated networks plus trainable
//! proxies.
//!
//! The paper evaluates Inception_v1, ResNet_50, Inception_ResNet_v2 and
//! VGG16 (Table IV). Running those on CPU is infeasible, and the timing
//! experiments only need two numbers per model — parameter bytes and
//! per-iteration computation time — both published in the paper. This
//! crate provides:
//!
//! * [`CnnModel`] — descriptors with calibrated constants (see DESIGN.md
//!   §1 for provenance),
//! * [`WorkloadModel`] — the timed-mode training workload: a decimated
//!   physical parameter vector that still carries real SEASGD algebra,
//!   paired with the full logical wire size and compute-time distribution,
//! * [`proxies`] — small *real* networks built on `shmcaffe-dnn` used by the
//!   convergence experiments (Figs 8 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxies;

use serde::{Deserialize, Serialize};
use shmcaffe_simnet::SimDuration;

/// The four CNN models of the paper's evaluation (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CnnModel {
    /// GoogLeNet / Inception-v1 (the headline model, Figs 8–11).
    InceptionV1,
    /// ResNet-50 ("about twice as many parameters as Inception_v1").
    ResNet50,
    /// Inception-ResNet-v2 (320×320 inputs, 214 MB of parameters).
    InceptionResnetV2,
    /// VGG16 (528 MB of parameters — the multi-node-unfriendly case).
    Vgg16,
}

impl CnnModel {
    /// All four models in the paper's presentation order.
    pub const ALL: [CnnModel; 4] =
        [CnnModel::InceptionV1, CnnModel::ResNet50, CnnModel::InceptionResnetV2, CnnModel::Vgg16];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CnnModel::InceptionV1 => "Inception_v1",
            CnnModel::ResNet50 => "ResNet_50",
            CnnModel::InceptionResnetV2 => "Inception_resnet_v2",
            CnnModel::Vgg16 => "VGG16",
        }
    }

    /// Parameter size in bytes (f32 weights, Caffe caffemodel sizes).
    ///
    /// Inception-ResNet-v2's 214 MB is stated directly in the paper
    /// ("6848 MB = 214 MB × 2 × 16"); the others are the standard Caffe
    /// model sizes consistent with the paper's prose.
    pub fn param_bytes(self) -> u64 {
        match self {
            CnnModel::InceptionV1 => 53_500_000,
            CnnModel::ResNet50 => 102_500_000,
            CnnModel::InceptionResnetV2 => 214_000_000,
            CnnModel::Vgg16 => 528_000_000,
        }
    }

    /// Parameter count in f32 elements.
    pub fn param_elems(self) -> usize {
        (self.param_bytes() / 4) as usize
    }

    /// Per-iteration single-GPU computation time (forward + backward +
    /// local update) on a GTX Titan X Pascal at the paper's minibatch size.
    ///
    /// Inception_v1's 257 ms makes 15 ImageNet epochs at batch 60 take
    /// 22 h 52 m, matching the paper's 22:59 for Caffe on one GPU; VGG16's
    /// 194.9 ms comes from "the time for the 2 iterations with 1 GPU,
    /// 389.8 ms".
    pub fn comp_time(self) -> SimDuration {
        match self {
            CnnModel::InceptionV1 => SimDuration::from_millis_f64(257.0),
            CnnModel::ResNet50 => SimDuration::from_millis_f64(330.0),
            CnnModel::InceptionResnetV2 => SimDuration::from_millis_f64(443.0),
            CnnModel::Vgg16 => SimDuration::from_millis_f64(194.9),
        }
    }

    /// Forward-pass share of the computation (roughly one third in Caffe's
    /// profile; backward plus weight update takes the rest).
    pub fn forward_time(self) -> SimDuration {
        self.comp_time().mul_f64(1.0 / 3.0)
    }

    /// Backward-pass (plus local update) share of the computation.
    pub fn backward_time(self) -> SimDuration {
        self.comp_time() - self.forward_time()
    }

    /// Per-GPU training minibatch size used in the paper (60, except VGG16
    /// which needs the smaller batch to fit in 12 GB).
    pub fn minibatch(self) -> usize {
        match self {
            CnnModel::Vgg16 => 32,
            _ => 60,
        }
    }

    /// Input image side length (pixels).
    pub fn image_hw(self) -> usize {
        match self {
            CnnModel::InceptionResnetV2 => 320,
            _ => 224,
        }
    }
}

impl std::fmt::Display for CnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A timed-mode training workload: decimated physical parameters with the
/// full logical wire size.
///
/// The physical vector (default 4096 elements) keeps the SEASGD algebra
/// real — reads, increments and accumulates actually happen — while the
/// `wire_bytes` drive the fabric model at the model's true size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Workload name (for reports).
    pub name: String,
    /// Physical parameter vector length (elements).
    pub param_elems: usize,
    /// Logical wire size of a full parameter transfer (bytes).
    pub wire_bytes: u64,
    /// Base per-iteration computation time.
    pub comp_time: SimDuration,
    /// Per-GPU minibatch size (for epoch accounting).
    pub minibatch: usize,
}

impl WorkloadModel {
    /// Default decimated physical vector length.
    pub const DEFAULT_PARAM_ELEMS: usize = 4096;

    /// Builds the workload descriptor for one of the paper's CNNs.
    pub fn from_cnn(model: CnnModel) -> Self {
        WorkloadModel {
            name: model.name().to_string(),
            param_elems: Self::DEFAULT_PARAM_ELEMS,
            wire_bytes: model.param_bytes(),
            comp_time: model.comp_time(),
            minibatch: model.minibatch(),
        }
    }

    /// A custom workload (for ablations and tests).
    pub fn custom(name: &str, wire_bytes: u64, comp_time: SimDuration) -> Self {
        WorkloadModel {
            name: name.to_string(),
            param_elems: Self::DEFAULT_PARAM_ELEMS,
            wire_bytes,
            comp_time,
            minibatch: 60,
        }
    }

    /// Iterations for `epochs` epochs of a dataset of `dataset_size`
    /// samples split across `n_workers` (data parallelism without
    /// duplication: each worker sees `1/n` of the data per epoch).
    pub fn iters_for_epochs(&self, dataset_size: usize, epochs: usize, n_workers: usize) -> usize {
        let per_worker = dataset_size / n_workers.max(1);
        (per_worker * epochs).div_ceil(self.minibatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_constants_are_paper_consistent() {
        // Inception-ResNet-v2's size is stated verbatim in the paper.
        assert_eq!(CnnModel::InceptionResnetV2.param_bytes(), 214_000_000);
        // ResNet_50 "has about twice as many parameters as Inception_v1".
        let ratio =
            CnnModel::ResNet50.param_bytes() as f64 / CnnModel::InceptionV1.param_bytes() as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
        // VGG16: 2 iterations on 1 GPU take 389.8 ms.
        assert!((CnnModel::Vgg16.comp_time().as_millis_f64() * 2.0 - 389.8).abs() < 0.1);
    }

    #[test]
    fn inception_single_gpu_fifteen_epochs_matches_caffe_baseline() {
        // 1,281,167 images / batch 60 = 21,353 iters/epoch; x15 epochs at
        // 257 ms/iter = ~22.9 h. The paper reports 22:59 for Caffe (1 GPU).
        let m = CnnModel::InceptionV1;
        let iters = (1_281_167f64 / m.minibatch() as f64).ceil() * 15.0;
        let hours = iters * m.comp_time().as_secs_f64() / 3600.0;
        assert!((hours - 22.98).abs() < 0.2, "estimated {hours} h");
    }

    #[test]
    fn forward_backward_partition() {
        for m in CnnModel::ALL {
            let total = m.forward_time() + m.backward_time();
            assert_eq!(total, m.comp_time());
        }
    }

    #[test]
    fn workload_from_cnn_carries_wire_size() {
        let w = WorkloadModel::from_cnn(CnnModel::Vgg16);
        assert_eq!(w.wire_bytes, 528_000_000);
        assert_eq!(w.param_elems, WorkloadModel::DEFAULT_PARAM_ELEMS);
        assert_eq!(w.minibatch, 32);
    }

    #[test]
    fn iters_for_epochs_scales_inversely_with_workers() {
        let w = WorkloadModel::from_cnn(CnnModel::InceptionV1);
        let one = w.iters_for_epochs(1_281_167, 15, 1);
        let sixteen = w.iters_for_epochs(1_281_167, 15, 16);
        assert!((one as f64 / sixteen as f64 - 16.0).abs() < 0.1);
    }

    #[test]
    fn display_matches_table_names() {
        assert_eq!(CnnModel::InceptionV1.to_string(), "Inception_v1");
        assert_eq!(CnnModel::Vgg16.to_string(), "VGG16");
    }
}
