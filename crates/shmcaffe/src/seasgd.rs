//! The SEASGD worker protocol (paper §III-C, §III-G, Fig. 6), run as a
//! pipelined chunk stream over a fixed grid.
//!
//! Per exchange iteration the main thread walks the chunk grid; for each
//! tile *k* it:
//!
//! 1. waits for the *previous* exchange's tile-*k* push to finish (the
//!    per-tile T.A5 gate — mutual exclusion with the update thread),
//! 2. **T1** has a reader process stream-read the `W_g` tile from the SMB
//!    buffer — the read for tile *k+1* is issued before tile *k* is
//!    consumed, so the next range-read is on the wire while this one mixes
//!    (double buffering),
//! 3. **T2** computes the tile's weight increment `ΔW_x = α (W_x − W_g)`
//!    (eq. 5) and updates the local weights `W''_x = W'_x − ΔW_x` (eq. 6),
//! 4. **T3** hands the finished ΔW tile to the update thread immediately,
//!    which **T.A1** range-writes it into the worker's private SMB buffer,
//!    **T.A2** sends the range-accumulate request, and the server **T.A3**
//!    folds it into the global buffer `W'_g = W'_g + ΔW_x` (eq. 7) — all
//!    overlapping with the remaining tiles' reads and mixing,
//! 5. **T4** trains one minibatch and **T5** applies the local SGD update
//!    (eq. 2), overlapping with the update thread's remaining pushes.
//!
//! The grid is derived only from `param_len` and the
//! [`ShmCaffeConfig::exchange_chunk_elems`] knob — never from timing — and
//! the mixing is elementwise, so the chunked stream produces **bit-identical
//! weights** to the monolithic exchange (`pipelined_exchange: false`, which
//! runs the same machinery with a single whole-vector tile per shard).
//! When the buffers stripe across several memory servers
//! ([`ElasticExchanger::spawn_sharded`]), the grid is additionally cut at
//! shard boundaries and every tile streams down its own shard's lane, so
//! tiles on different servers transfer in parallel.
//!
//! [`ElasticExchanger`] packages steps 1–4 so that both the pure
//! asynchronous worker ([`run_worker`]) and the Hybrid-SGD group root
//! ([`crate::hybrid`]) share one implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::{SimContext, SimDuration, SimTime};
use shmcaffe_smb::progress::ProgressBoard;
use shmcaffe_smb::{RetryPolicy, SmbBuffer, SmbClient, SmbError, SmbServer};

use crate::config::{ShmCaffeConfig, DEFAULT_EXCHANGE_CHUNKS};
use crate::report::{EvalPoint, WorkerReport};
use crate::trainer::Trainer;
use crate::PlatformError;

/// The SMB buffers of one SEASGD participant (Fig. 5 layout): the shared
/// global buffer plus this worker's private increment buffer.
#[derive(Debug, Clone, Copy)]
pub struct SeasgdBuffers {
    /// The global weight buffer `W_g`, shared by every worker.
    pub wg: SmbBuffer,
    /// This worker's private `ΔW_x` buffer (not shared with other workers).
    pub dw: SmbBuffer,
}

/// One tile of the fixed exchange chunk grid.
#[derive(Debug, Clone, Copy)]
struct GridChunk {
    /// Index of the shard lane the tile lives on.
    lane: usize,
    /// Offset within the lane's buffers, in elements.
    local_off: usize,
    /// Offset within the whole parameter vector, in elements.
    global_off: usize,
    /// Tile length in elements.
    len: usize,
}

/// Builds the deterministic chunk grid: cut the parameter vector at every
/// multiple of the chunk size and additionally at every shard boundary.
/// The grid depends only on lengths and the config knob — never on timing —
/// which is what makes the chunked and monolithic paths bit-identical.
fn exchange_grid(lane_lens: &[usize], cfg: &ShmCaffeConfig) -> Vec<GridChunk> {
    let param_len: usize = lane_lens.iter().sum();
    let chunk_elems = if !cfg.pipelined_exchange {
        // Monolithic: one whole-vector tile (one per shard when striped).
        param_len.max(1)
    } else if cfg.exchange_chunk_elems > 0 {
        cfg.exchange_chunk_elems
    } else {
        param_len.div_ceil(DEFAULT_EXCHANGE_CHUNKS).max(1)
    };
    let mut grid = Vec::new();
    let mut lane_start = 0usize;
    for (lane, &lane_len) in lane_lens.iter().enumerate() {
        let mut off = 0usize;
        while off < lane_len {
            let global_off = lane_start + off;
            let next_line = (global_off / chunk_elems + 1) * chunk_elems;
            let len = (next_line - global_off).min(lane_len - off);
            grid.push(GridChunk { lane, local_off: off, global_off, len });
            off += len;
        }
        lane_start += lane_len;
    }
    grid
}

/// Request to a lane's reader process.
enum ReadRequest {
    /// Stream-read one `W_g` tile into `buf` (sized to the tile).
    Read { chunk: usize, local_off: usize, buf: Vec<f32> },
    /// Terminate the reader.
    Shutdown,
}

/// Reply from a lane's reader process, carrying the tile buffer back for
/// reuse (the read path is allocation-free in steady state).
enum ReadReply {
    /// The tile was read; `buf` holds fresh `W_g` data.
    Fresh { chunk: usize, buf: Vec<f32> },
    /// A partition swallowed the read: keep the stale local `W_g` tile
    /// (degraded mode — same contract as the monolithic read).
    Stale { buf: Vec<f32> },
    /// A non-partition failure the worker must surface.
    Failed { error: SmbError },
}

/// Request to a lane's update thread.
enum UpdateRequest {
    /// Push ΔW tile `chunk` (grid order) and range-accumulate it into the
    /// global buffer.
    Chunk { chunk: usize, buf: Vec<f32> },
    /// Return a prefetch buffer for reuse (`hide_global_read` mode).
    PrefetchReturn(Vec<f32>),
    /// Terminate the update thread.
    Shutdown,
}

/// Reply from a lane's update thread.
enum UpdateDone {
    /// Tile `chunk` has been pushed (or definitively disposed of); `buf`
    /// is the recycled ΔW tile buffer. The k-th done of a lane is the
    /// T.A5 gate for the next exchange's k-th tile on that lane.
    Chunk { chunk: usize, buf: Vec<f32> },
    /// `hide_global_read` only: the freshly read (one exchange stale)
    /// `W_g` slice of this lane, `None` if the read failed.
    Prefetch(Option<Vec<f32>>),
}

/// How long the main thread waits for the update thread before declaring
/// it dead. Generous: the update thread's own retry deadlines are in the
/// hundreds of milliseconds, so only a genuinely wedged thread trips this.
const EXCHANGE_TIMEOUT: SimDuration = SimDuration::from_secs(60);

/// Degraded-mode accounting of one exchanger's update thread: what
/// happened to increments pushed while a network partition cut the worker
/// off from the memory server (paper-style minority-side behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedStats {
    /// Increments buffered for replay after the partition heals.
    pub partition_buffered: u64,
    /// Increments dropped because the staleness-capped buffer was full
    /// (or still held entries at shutdown).
    pub partition_dropped: u64,
    /// Buffered increments successfully replayed into `W_g`.
    pub reconciled_updates: u64,
}

#[derive(Debug, Default)]
struct DegradedCounters {
    buffered: AtomicU64,
    dropped: AtomicU64,
    reconciled: AtomicU64,
    /// Entries currently sitting in the update thread's backlog. A
    /// snapshot folds them into `partition_dropped`: they are only ever
    /// replayed by a *later* successful push, so at any observation point
    /// they have not reached the global buffer.
    pending: AtomicU64,
}

impl DegradedCounters {
    fn snapshot(&self) -> DegradedStats {
        DegradedStats {
            partition_buffered: self.buffered.load(Ordering::Relaxed),
            partition_dropped: self.dropped.load(Ordering::Relaxed)
                + self.pending.load(Ordering::Relaxed),
            reconciled_updates: self.reconciled.load(Ordering::Relaxed),
        }
    }
}

/// Per-phase breakdown of the last [`ElasticExchanger::exchange`]: how
/// much of the non-overlapped communication time went to the T.A5 gates,
/// the `W_g` read stream, and the elastic mixing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangePhases {
    /// Time waiting for the previous exchange's ΔW pushes (T.A5 gates).
    pub wait: SimDuration,
    /// Time blocked on `W_g` tile reads (T1) — with double buffering only
    /// the first tile's fill and any reader stall shows up here.
    pub read: SimDuration,
    /// Time in the elastic mixing pass (T2).
    pub mix: SimDuration,
}

impl Default for ExchangePhases {
    fn default() -> Self {
        ExchangePhases { wait: SimDuration::ZERO, read: SimDuration::ZERO, mix: SimDuration::ZERO }
    }
}

/// One shard lane: the client, channels, and grid bookkeeping for a
/// single memory server's slice of the parameter vector.
struct Lane {
    /// Client handle kept for zero-cost partition probes; all actual SMB
    /// traffic goes through the lane's reader and update threads.
    client: SmbClient,
    read_req: SimChannel<ReadRequest>,
    read_reply: SimChannel<ReadReply>,
    upd_req: SimChannel<UpdateRequest>,
    upd_done: SimChannel<UpdateDone>,
    /// Tiles of the grid on this lane.
    n_chunks: usize,
    /// Global offset of this lane's slice.
    global_off: usize,
    /// Elements in this lane's slice.
    len: usize,
}

/// The fencing epoch this client currently observes (0 on a single-server
/// route, where there is no failover and hence no epoch).
fn fence_epoch_of(client: &SmbClient) -> u64 {
    client.pair().map_or(0, |p| p.fence_epoch())
}

/// T.A1 + T.A2–T.A3 for one tile: range-write the increment into the
/// worker's private buffer, then server-side range-accumulate it into the
/// global buffer.
fn push_range(
    ctx: &SimContext,
    client: &SmbClient,
    bufs: &SeasgdBuffers,
    local_off: usize,
    data: &[f32],
    retry: &RetryPolicy,
) -> Result<(), SmbError> {
    client.write_range_retrying(ctx, &bufs.dw, local_off, data, retry)?;
    client
        .accumulate_range_retrying(ctx, &bufs.dw, &bufs.wg, local_off, data.len(), retry)
        .map(|_| ())
}

/// Whole-lane push (backlog replay and compensation paths): one atomic
/// write + accumulate, so a replayed increment can never land torn.
fn push_full(
    ctx: &SimContext,
    client: &SmbClient,
    bufs: &SeasgdBuffers,
    data: &[f32],
    retry: &RetryPolicy,
) -> Result<(), SmbError> {
    client.write_retrying(ctx, &bufs.dw, data, retry)?;
    client.accumulate_retrying(ctx, &bufs.dw, &bufs.wg, retry).map(|_| ())
}

/// The worker-side half of the SEASGD exchange: owns the per-lane reader
/// processes and update threads plus the elastic-mixing buffers.
pub struct ElasticExchanger {
    lanes: Vec<Lane>,
    grid: Vec<GridChunk>,
    pending: bool,
    moving_rate: f32,
    hide_global_read: bool,
    local_mix_bps: f64,
    wire_bytes: u64,
    param_len: usize,
    /// Recycled `W_g` tile buffers (at most two in flight: double buffer).
    read_pool: Vec<Vec<f32>>,
    /// Recycled ΔW tile buffers, ping-ponged through the done channel so
    /// steady-state exchanges are allocation-free.
    dw_pool: Vec<Vec<f32>>,
    /// Per-lane: a fresh prefetched `W_g` slice replaced this exchange's
    /// read stream (`hide_global_read` mode).
    lane_prefetched: Vec<bool>,
    /// Per-lane: a partition swallowed a tile read — stop issuing reads on
    /// the lane and keep the whole stale `W_g` slice (same degraded
    /// contract as the monolithic read, and it keeps a partitioned
    /// exchange from burning one retry budget per tile). Sticky across
    /// exchanges: a stale lane is re-probed (zero cost) at the next
    /// exchange and resumes reading once the partition heals, instead of
    /// re-paying the full read-retry budget every iteration of an outage.
    lane_stale: Vec<bool>,
    /// Per-tile: a read was issued this exchange (reads are issued one
    /// tile ahead, so a lane can go stale with one read still in flight).
    read_issued: Vec<bool>,
    /// Per-lane: T.A5 gates still to consume from the previous exchange.
    gate_left: Vec<usize>,
    dropped: Arc<AtomicU64>,
    degraded: Arc<DegradedCounters>,
    wg: Vec<f32>,
    wx: Vec<f32>,
    phases: ExchangePhases,
}

impl std::fmt::Debug for ElasticExchanger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticExchanger")
            .field("pending", &self.pending)
            .field("wire_bytes", &self.wire_bytes)
            .field("chunks", &self.grid.len())
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

fn stalled() -> PlatformError {
    PlatformError::Timeout(format!("update thread unresponsive for {EXCHANGE_TIMEOUT}"))
}

fn out_of_sync() -> PlatformError {
    PlatformError::WorkerFailed("exchange pipeline protocol out of sync".to_string())
}

impl ElasticExchanger {
    /// Spawns the reader process and update thread for a single memory
    /// server and prepares the mixing buffers.
    pub fn spawn(
        ctx: &SimContext,
        client: SmbClient,
        buffers: SeasgdBuffers,
        param_len: usize,
        wire_bytes: u64,
        cfg: &ShmCaffeConfig,
        label: &str,
    ) -> Self {
        debug_assert_eq!(buffers.wg.len(), param_len);
        Self::spawn_sharded(ctx, vec![(client, buffers)], wire_bytes, cfg, label)
    }

    /// Spawns a striped exchanger over several memory-server shards: the
    /// chunk grid is additionally cut at shard boundaries and every tile's
    /// read/push rides its own shard's lane (one reader process and one
    /// update thread per shard), so tiles on different servers stream in
    /// parallel. `parts` are `(client, buffers)` pairs in parameter order;
    /// the shard slice lengths come from the buffers themselves.
    pub fn spawn_sharded(
        ctx: &SimContext,
        parts: Vec<(SmbClient, SeasgdBuffers)>,
        wire_bytes: u64,
        cfg: &ShmCaffeConfig,
        label: &str,
    ) -> Self {
        let lane_lens: Vec<usize> = parts.iter().map(|(_, b)| b.wg.len()).collect();
        let param_len: usize = lane_lens.iter().sum();
        let grid = exchange_grid(&lane_lens, cfg);
        // Per-worker retry seed, so identical runs retry identically;
        // deadlines are sized to outlast short fault windows.
        let retry_seed =
            label.bytes().fold(cfg.seed, |acc, b| acc.wrapping_mul(31).wrapping_add(u64::from(b)));
        let dropped = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(DegradedCounters::default());
        let mut lanes = Vec::with_capacity(parts.len());
        let mut global_off = 0usize;
        for (lane_idx, (client, buffers)) in parts.into_iter().enumerate() {
            let lane_len = buffers.wg.len();
            let retry = RetryPolicy {
                max_attempts: 8,
                deadline: SimDuration::from_millis(500),
                ..RetryPolicy::with_seed(
                    retry_seed.wrapping_add((lane_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )
            };
            let read_req: SimChannel<ReadRequest> =
                SimChannel::new(&format!("seasgd_read_req_{label}_s{lane_idx}"));
            let read_reply: SimChannel<ReadReply> =
                SimChannel::new(&format!("seasgd_read_reply_{label}_s{lane_idx}"));
            let upd_req: SimChannel<UpdateRequest> =
                SimChannel::new(&format!("seasgd_req_{label}_s{lane_idx}"));
            let upd_done: SimChannel<UpdateDone> =
                SimChannel::new(&format!("seasgd_done_{label}_s{lane_idx}"));
            // Tiles of this lane, in grid order: (global index, local
            // offset, length).
            let lane_chunks: Vec<(usize, usize, usize)> = grid
                .iter()
                .enumerate()
                .filter(|(_, c)| c.lane == lane_idx)
                .map(|(k, c)| (k, c.local_off, c.len))
                .collect();
            let n_chunks = lane_chunks.len();
            {
                // T1 as a stream: the reader fetches W_g tiles on demand so
                // the main thread can mix tile k while tile k+1 is on the
                // wire.
                let client = client.clone();
                let retry = retry.clone();
                let read_req = read_req.clone();
                let read_reply = read_reply.clone();
                let wg = buffers.wg;
                ctx.spawn(&format!("reader_{label}_s{lane_idx}"), move |rctx| {
                    while let ReadRequest::Read { chunk, local_off, mut buf } = read_req.recv(&rctx)
                    {
                        let reply = match client
                            .read_range_retrying(&rctx, &wg, local_off, &mut buf, &retry)
                        {
                            Ok(()) => ReadReply::Fresh { chunk, buf },
                            Err(_) if client.partitioned_from_server(&rctx) => {
                                ReadReply::Stale { buf }
                            }
                            Err(error) if error.is_corruption() => {
                                // A tile that stays corrupt through the
                                // retry/repair loop degrades exactly like a
                                // partition-stale tile: mix against the
                                // last-known W_g — poisoned bytes must
                                // never reach ΔW. The lane re-probes at
                                // the next exchange.
                                ReadReply::Stale { buf }
                            }
                            Err(error) => ReadReply::Failed { error },
                        };
                        read_reply.send(&rctx, reply);
                    }
                });
            }
            {
                let client = client.clone();
                let upd_req = upd_req.clone();
                let upd_done = upd_done.clone();
                let hide_read = cfg.hide_global_read;
                let staleness_cap = cfg.partition_staleness_cap;
                let retry = retry.clone();
                let dropped = Arc::clone(&dropped);
                let degraded = Arc::clone(&degraded);
                let lane_chunks = lane_chunks.clone();
                ctx.spawn(&format!("update_thread_{label}_s{lane_idx}"), move |uctx| {
                    update_thread(
                        &uctx,
                        &client,
                        buffers,
                        &lane_chunks,
                        &upd_req,
                        &upd_done,
                        hide_read,
                        staleness_cap,
                        &retry,
                        &dropped,
                        &degraded,
                    );
                });
            }
            lanes.push(Lane {
                client,
                read_req,
                read_reply,
                upd_req,
                upd_done,
                n_chunks,
                global_off,
                len: lane_len,
            });
            global_off += lane_len;
        }
        let n_lanes = lanes.len();
        let n_tiles = grid.len();
        ElasticExchanger {
            lanes,
            grid,
            pending: false,
            moving_rate: cfg.moving_rate,
            hide_global_read: cfg.hide_global_read,
            local_mix_bps: cfg.local_mix_bps,
            wire_bytes,
            param_len,
            read_pool: Vec::new(),
            dw_pool: Vec::new(),
            lane_prefetched: vec![false; n_lanes],
            lane_stale: vec![false; n_lanes],
            read_issued: vec![false; n_tiles],
            gate_left: vec![0; n_lanes],
            dropped,
            degraded,
            wg: vec![0.0; param_len],
            wx: vec![0.0; param_len],
            phases: ExchangePhases::default(),
        }
    }

    /// Consumes one T.A5 gate for tile `k` if its lane still has dones
    /// outstanding from the previous exchange. Returns the time waited.
    fn gate(&mut self, ctx: &SimContext, k: usize) -> Result<SimDuration, PlatformError> {
        let lane = self.grid[k].lane;
        if self.gate_left[lane] == 0 {
            return Ok(SimDuration::ZERO);
        }
        let t0 = ctx.now();
        match self.lanes[lane].upd_done.recv_timeout(ctx, EXCHANGE_TIMEOUT) {
            Some(UpdateDone::Chunk { chunk, buf }) => {
                // The grid is identical every exchange, so per-lane FIFO
                // order means this done is the previous exchange's tile k.
                debug_assert_eq!(chunk, k);
                self.dw_pool.push(buf);
                self.gate_left[lane] -= 1;
                Ok(ctx.now() - t0)
            }
            Some(UpdateDone::Prefetch(_)) => Err(out_of_sync()),
            None => Err(stalled()),
        }
    }

    /// Issues the stream-read for tile `k` to its lane's reader, unless
    /// the lane's slice already arrived via prefetch or went stale.
    fn issue_read(&mut self, ctx: &SimContext, k: usize) {
        let c = self.grid[k];
        if self.lane_prefetched[c.lane] || self.lane_stale[c.lane] {
            self.read_issued[k] = false;
            return;
        }
        let mut buf = self.read_pool.pop().unwrap_or_default();
        buf.resize(c.len, 0.0);
        self.lanes[c.lane]
            .read_req
            .send(ctx, ReadRequest::Read { chunk: k, local_off: c.local_off, buf });
        self.read_issued[k] = true;
    }

    /// Receives tile `k`'s read reply and installs it into the local `W_g`
    /// copy (a partition-stale tile keeps the last-known data). Returns
    /// the time blocked.
    fn recv_read(&mut self, ctx: &SimContext, k: usize) -> Result<SimDuration, PlatformError> {
        let c = self.grid[k];
        let t0 = ctx.now();
        let reply = self.lanes[c.lane]
            .read_reply
            .recv_timeout(ctx, EXCHANGE_TIMEOUT)
            .ok_or_else(stalled)?;
        let blocked = ctx.now() - t0;
        match reply {
            ReadReply::Fresh { chunk, buf } => {
                debug_assert_eq!(chunk, k);
                self.wg[c.global_off..c.global_off + c.len].copy_from_slice(&buf[..c.len]);
                self.read_pool.push(buf);
            }
            ReadReply::Stale { buf } => {
                self.lane_stale[c.lane] = true;
                self.read_pool.push(buf);
            }
            ReadReply::Failed { error } => return Err(error.into()),
        }
        Ok(blocked)
    }

    /// One exchange, streamed over the chunk grid: per tile, wait for the
    /// previous exchange's push of that tile (T.A5), read `W_g` (T1, double
    /// buffered), elastically mix the trainer's weights (T2, eqs. 5–6) and
    /// hand the ΔW tile to the update thread (T3). Returns the time spent,
    /// which is the non-overlapped communication cost of the exchange.
    ///
    /// # Errors
    ///
    /// Propagates SMB failures.
    pub fn exchange<T: Trainer + ?Sized>(
        &mut self,
        ctx: &SimContext,
        trainer: &mut T,
    ) -> Result<SimDuration, PlatformError> {
        let start = ctx.now();
        let mut wait = SimDuration::ZERO;
        let mut read = SimDuration::ZERO;
        let mut mix = SimDuration::ZERO;
        let n = self.grid.len();
        for p in self.lane_prefetched.iter_mut() {
            *p = false;
        }
        for (s, lane) in self.lane_stale.iter_mut().zip(&self.lanes) {
            // Sticky staleness: while the probe still sees the partition,
            // skip the lane's reads outright (mix against the stale W_g);
            // once it heals, resume the read stream.
            if *s && !lane.client.partitioned_from_server(ctx) {
                *s = false;
            }
        }
        if self.pending {
            if self.hide_global_read {
                // Drain the previous exchange wholesale: all tile dones
                // plus each lane's prefetched W_g slice. A fresh prefetch
                // replaces the lane's read stream this exchange (the
                // deliberately reproduced stale-parameter trade-off of
                // §III-G); a failed one falls back to synchronous tile
                // reads.
                let t0 = ctx.now();
                for li in 0..self.lanes.len() {
                    for _ in 0..self.lanes[li].n_chunks {
                        match self.lanes[li]
                            .upd_done
                            .recv_timeout(ctx, EXCHANGE_TIMEOUT)
                            .ok_or_else(stalled)?
                        {
                            UpdateDone::Chunk { buf, .. } => self.dw_pool.push(buf),
                            UpdateDone::Prefetch(_) => return Err(out_of_sync()),
                        }
                    }
                    match self.lanes[li]
                        .upd_done
                        .recv_timeout(ctx, EXCHANGE_TIMEOUT)
                        .ok_or_else(stalled)?
                    {
                        UpdateDone::Prefetch(Some(buf)) => {
                            let (g0, l) = (self.lanes[li].global_off, self.lanes[li].len);
                            self.wg[g0..g0 + l].copy_from_slice(&buf[..l]);
                            self.lanes[li].upd_req.send(ctx, UpdateRequest::PrefetchReturn(buf));
                            self.lane_prefetched[li] = true;
                        }
                        UpdateDone::Prefetch(None) => {}
                        UpdateDone::Chunk { .. } => return Err(out_of_sync()),
                    }
                }
                for g in self.gate_left.iter_mut() {
                    *g = 0;
                }
                wait += ctx.now() - t0;
            } else {
                // Per-tile lazy gating: tile k's gate is consumed right
                // before its read is issued, so this exchange's stream
                // overlaps the previous exchange's tail instead of
                // barriering on it.
                for (li, g) in self.gate_left.iter_mut().enumerate() {
                    *g = self.lanes[li].n_chunks;
                }
            }
            self.pending = false;
        } else {
            for g in self.gate_left.iter_mut() {
                *g = 0;
            }
        }

        trainer.read_weights(&mut self.wx);
        if n > 0 {
            wait += self.gate(ctx, 0)?;
            self.issue_read(ctx, 0);
        }
        for k in 0..n {
            if k + 1 < n {
                // Double buffering: tile k+1's range-read goes on the wire
                // before tile k is consumed and mixed.
                wait += self.gate(ctx, k + 1)?;
                self.issue_read(ctx, k + 1);
            }
            if self.read_issued[k] {
                read += self.recv_read(ctx, k)?;
            }
            let c = self.grid[k];
            let r = c.global_off..c.global_off + c.len;
            let mut dbuf = self.dw_pool.pop().unwrap_or_default();
            dbuf.resize(c.len, 0.0);
            // T2 on the tile (eqs. 5–6), vectorized and
            // decomposition-invariant: same bits whatever the grid.
            shmcaffe_tensor::ops::elastic_mix(
                self.moving_rate,
                &mut self.wx[r.clone()],
                &mut dbuf[..c.len],
                &self.wg[r],
            );
            let tile_wire = self.wire_bytes as f64 * c.len as f64 / self.param_len.max(1) as f64;
            let mix_step = SimDuration::from_secs_f64(tile_wire * 2.0 / self.local_mix_bps);
            ctx.sleep(mix_step);
            mix += mix_step;
            // T3: hand the finished tile to its lane's update thread.
            self.lanes[c.lane].upd_req.send(ctx, UpdateRequest::Chunk { chunk: k, buf: dbuf });
        }
        trainer.write_weights(&self.wx);
        self.pending = true;
        self.phases = ExchangePhases { wait, read, mix };
        Ok(ctx.now() - start)
    }

    /// The mixed local weights after the last [`ElasticExchanger::exchange`]
    /// (what the Hybrid-SGD root broadcasts to its group).
    pub fn mixed_weights(&self) -> &[f32] {
        &self.wx
    }

    /// The global weights `W_g` as read at the last exchange (T1) — the
    /// center variable the master checkpoints.
    pub fn global_weights(&self) -> &[f32] {
        &self.wg
    }

    /// Per-phase timing (wait/read/mix) of the last exchange.
    pub fn phase_times(&self) -> ExchangePhases {
        self.phases
    }

    /// Number of weight increments dropped because pushing them kept
    /// failing (fault injection).
    pub fn dropped_updates(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Degraded-mode accounting: increments buffered, dropped, and
    /// replayed across partition windows (see
    /// [`crate::ShmCaffeConfig::partition_staleness_cap`]).
    pub fn degraded_stats(&self) -> DegradedStats {
        self.degraded.snapshot()
    }

    /// Stops the reader processes and update threads. Queued tiles drain
    /// in FIFO order before the shutdown is seen, so a pending exchange
    /// still completes its pushes.
    pub fn finish(self, ctx: &SimContext) {
        for lane in &self.lanes {
            lane.upd_req.send(ctx, UpdateRequest::Shutdown);
            lane.read_req.send(ctx, ReadRequest::Shutdown);
        }
    }
}

/// One lane's update thread: receives mixed ΔW tiles in grid order and
/// pushes each immediately (T.A1–T.A3), overlapping with the main thread's
/// remaining reads/mixing and with T4/T5 compute.
///
/// Failure semantics are exchange-grained — never a torn half-exchange:
///
/// * a mid-stream *failover* (fencing epoch change) refolds the tiles
///   whose folds died with the old primary onto the promoted server (the
///   accumulate-stream guard kept half-folded state off the standby);
/// * a mid-stream *partition* failure backlogs the whole exchange with
///   already-folded tiles zeroed, replayed as one atomic push after heal;
/// * any other persistent failure compensates the folded tiles with one
///   atomic negated push and drops the exchange.
#[allow(clippy::too_many_arguments)]
fn update_thread(
    uctx: &SimContext,
    client: &SmbClient,
    buffers: SeasgdBuffers,
    lane_chunks: &[(usize, usize, usize)],
    upd_req: &SimChannel<UpdateRequest>,
    upd_done: &SimChannel<UpdateDone>,
    hide_read: bool,
    staleness_cap: usize,
    retry: &RetryPolicy,
    dropped: &AtomicU64,
    degraded: &DegradedCounters,
) {
    let lane_len = buffers.wg.len();
    let n = lane_chunks.len();
    // The exchange's full ΔW slice, staged tile by tile: the backlog,
    // refold, and compensation paths all need tiles that already went
    // back to the main thread for recycling.
    let mut staging = vec![0.0f32; lane_len];
    let mut scratch: Vec<f32> = Vec::new();
    let mut readback: Option<Vec<f32>> = None;
    // Increments held back while a partition cuts this worker off from
    // the memory server, replayed once it heals. Already-folded tiles are
    // zeroed at capture, so a replayed entry folds exactly once.
    let mut backlog: Vec<Vec<f32>> = Vec::new();
    let mut pos = 0usize;
    let mut folded = vec![false; n];
    let mut exchange_failed = false;
    let mut partition_fail = false;
    let mut guard: Option<SmbServer> = None;
    let mut epoch = 0u64;
    loop {
        match upd_req.recv(uctx) {
            UpdateRequest::Shutdown => break,
            UpdateRequest::PrefetchReturn(buf) => readback = Some(buf),
            UpdateRequest::Chunk { chunk, buf } => {
                let (gidx, off, len) = lane_chunks[pos];
                debug_assert_eq!(gidx, chunk);
                staging[off..off + len].copy_from_slice(&buf[..len]);
                if pos == 0 {
                    for f in folded.iter_mut() {
                        *f = false;
                    }
                    exchange_failed = false;
                    partition_fail = false;
                    // Torn-replication guard: while this exchange's tiles
                    // stream into W_g, the replicator must not ship a
                    // half-folded snapshot to the standby.
                    let server = client.server();
                    server.begin_accumulate_stream(uctx, buffers.wg.key);
                    guard = Some(server);
                    epoch = fence_epoch_of(client);
                }
                if !exchange_failed {
                    match push_range(uctx, client, &buffers, off, &buf[..len], retry) {
                        Ok(()) => {
                            folded[pos] = true;
                            let now_epoch = fence_epoch_of(client);
                            if now_epoch != epoch {
                                // Failover mid-stream: the earlier tiles'
                                // folds died with the old primary (the
                                // stream guard kept them off the standby)
                                // while this tile just landed on the
                                // promoted server. Refold the lost tiles
                                // there so exactly one full exchange lands.
                                if let Some(g) = guard.take() {
                                    g.end_accumulate_stream(uctx, buffers.wg.key);
                                }
                                let server = client.server();
                                server.begin_accumulate_stream(uctx, buffers.wg.key);
                                guard = Some(server);
                                epoch = now_epoch;
                                for j in 0..pos {
                                    if !folded[j] {
                                        continue;
                                    }
                                    let (_, joff, jlen) = lane_chunks[j];
                                    let data = &staging[joff..joff + jlen];
                                    if push_range(uctx, client, &buffers, joff, data, retry)
                                        .is_err()
                                    {
                                        folded[j] = false;
                                        exchange_failed = true;
                                        partition_fail = staleness_cap > 0
                                            && client.partitioned_from_server(uctx);
                                        break;
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            exchange_failed = true;
                            partition_fail =
                                staleness_cap > 0 && client.partitioned_from_server(uctx);
                        }
                    }
                }
                // The done is the next exchange's T.A5 gate for this tile
                // and carries the buffer back for recycling — sent even on
                // failure so the main thread never wedges.
                upd_done.send(uctx, UpdateDone::Chunk { chunk, buf });
                pos += 1;
                if pos == n {
                    pos = 0;
                    if let Some(g) = guard.take() {
                        g.end_accumulate_stream(uctx, buffers.wg.key);
                    }
                    if !exchange_failed {
                        // Replay partition backlog newest-first:
                        // accumulation is commutative, so order is free.
                        while let Some(entry) = backlog.last() {
                            if push_full(uctx, client, &buffers, entry, retry).is_err() {
                                break;
                            }
                            degraded.reconciled.fetch_add(1, Ordering::Relaxed);
                            degraded.pending.fetch_sub(1, Ordering::Relaxed);
                            backlog.pop();
                        }
                    } else if partition_fail {
                        if backlog.len() < staleness_cap {
                            let mut entry = staging.clone();
                            for (j, &(_, joff, jlen)) in lane_chunks.iter().enumerate() {
                                if folded[j] {
                                    entry[joff..joff + jlen].fill(0.0);
                                }
                            }
                            backlog.push(entry);
                            degraded.buffered.fetch_add(1, Ordering::Relaxed);
                            degraded.pending.fetch_add(1, Ordering::Relaxed);
                        } else {
                            degraded.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        // A push that cannot go through within the retry
                        // budget drops the exchange: elastic averaging
                        // re-derives the lost force from the next
                        // W_x − W_g difference, whereas dying here would
                        // take the whole worker down. Tiles already folded
                        // are compensated with one atomic negated push so
                        // W_g never keeps half an exchange.
                        if folded.iter().any(|&f| f) {
                            scratch.clear();
                            scratch.resize(lane_len, 0.0);
                            for (j, &(_, joff, jlen)) in lane_chunks.iter().enumerate() {
                                if folded[j] {
                                    for (s, &v) in scratch[joff..joff + jlen]
                                        .iter_mut()
                                        .zip(&staging[joff..joff + jlen])
                                    {
                                        *s = -v;
                                    }
                                }
                            }
                            let _ = push_full(uctx, client, &buffers, &scratch, retry);
                        }
                        dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    if hide_read {
                        // On failure fall back to a synchronous read at
                        // the next exchange instead of serving stale
                        // weights.
                        let mut rb = readback.take().unwrap_or_default();
                        rb.resize(lane_len, 0.0);
                        let reply = match client.read_retrying(uctx, &buffers.wg, &mut rb, retry) {
                            Ok(()) => Some(rb),
                            Err(_) => {
                                readback = Some(rb);
                                None
                            }
                        };
                        upd_done.send(uctx, UpdateDone::Prefetch(reply));
                    }
                }
            }
        }
    }
}

/// The checkpoint segments of a run: the center variable `W_g` snapshot
/// plus a small metadata record `[checkpoint iteration, valid flag]`. Both
/// are written with the versioned checkpoint protocol
/// ([`SmbClient::checkpoint_write`]) because the master's checkpoint write
/// and a rejoining worker's read share no happens-before edge — the
/// rejoiner discovers the checkpoint through the segment table, not
/// through a message from the writer.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPlan {
    /// The checkpointed center variable (same length as `W_g`).
    pub weights: SmbBuffer,
    /// `[iter as f32, valid]` — `valid == 1.0` once any checkpoint exists.
    pub meta: SmbBuffer,
}

/// Length in f32 elements of [`CheckpointPlan::meta`].
pub const CHECKPOINT_META_LEN: usize = 2;

/// Everything a SEASGD participant needs besides its trainer.
pub struct SeasgdHarness {
    /// SMB client bound to this worker's node.
    pub client: SmbClient,
    /// The worker's buffers on the SMB server.
    pub buffers: SeasgdBuffers,
    /// The shared progress board (control info).
    pub board: ProgressBoard,
    /// Platform configuration.
    pub cfg: ShmCaffeConfig,
    /// This worker's rank.
    pub rank: usize,
    /// Iteration budget before termination alignment.
    pub target_iters: u64,
    /// Injected crash time: the worker dies at the first iteration boundary
    /// at or after this instant (`None` = never).
    pub crash_at: Option<SimTime>,
    /// Checkpoint segments: rank 0 writes the center variable there every
    /// [`ShmCaffeConfig::checkpoint_every`] iterations; a crashed worker
    /// rejoins from it when [`ShmCaffeConfig::rejoin_delay`] is set.
    pub checkpoint: Option<CheckpointPlan>,
}

/// Outcome of [`run_worker`]: the filled report plus rank-0 evaluations.
#[derive(Debug)]
pub struct SeasgdOutcome {
    /// The worker's timing report.
    pub report: WorkerReport,
    /// Evaluation trajectory (non-empty only when `eval_every > 0`, on
    /// rank 0, and the trainer supports evaluation).
    pub evals: Vec<EvalPoint>,
}

/// Runs the SEASGD protocol for one worker until its budget or the
/// termination policy stops it. Returns the timing report and evaluations.
///
/// # Errors
///
/// Propagates SMB failures.
pub fn run_worker<T: Trainer>(
    ctx: &SimContext,
    harness: SeasgdHarness,
    trainer: &mut T,
) -> Result<SeasgdOutcome, PlatformError> {
    let SeasgdHarness { client, mut buffers, board, cfg, rank, target_iters, crash_at, checkpoint } =
        harness;
    let mut report = WorkerReport::new(rank);
    let mut evals = Vec::new();
    let param_len = trainer.param_len();
    let wire_bytes = trainer.wire_bytes();

    // `None` only between a crash and a successful rejoin.
    let mut exchanger = Some(ElasticExchanger::spawn(
        ctx,
        client.clone(),
        buffers,
        param_len,
        wire_bytes,
        &cfg,
        &format!("w{rank}"),
    ));
    // Retry policy for this worker's checkpoint traffic, seeded apart from
    // the exchanger's stream so both stay deterministic.
    let ckpt_retry = RetryPolicy {
        max_attempts: 8,
        deadline: SimDuration::from_millis(500),
        ..RetryPolicy::with_seed(cfg.seed.wrapping_add(0xC4B7 + rank as u64))
    };
    let mut loss_ema = f32::NAN;
    let mut iter: u64 = 0;
    let mut stop = false;

    while !stop {
        // Injected worker death: stop publishing, heartbeating, and
        // exchanging. The exchanger teardown models the OS reaping the
        // dead process's update thread. With a checkpoint plan and a
        // rejoin delay configured, the crashed rank later comes back and
        // resumes from the latest center-variable checkpoint.
        if !report.crashed && crash_at.is_some_and(|t| ctx.now() >= t) {
            report.crashed = true;
            let dead = exchanger.take().expect("live incarnation has an exchanger");
            report.dropped_updates += dead.dropped_updates();
            let degraded = dead.degraded_stats();
            report.partition_buffered += degraded.partition_buffered;
            report.partition_dropped += degraded.partition_dropped;
            report.reconciled_updates += degraded.reconciled_updates;
            dead.finish(ctx);
            let (Some(ckpt), Some(delay)) = (checkpoint, cfg.rejoin_delay) else { break };
            ctx.sleep(delay);
            // Elastic rejoin: read the checkpoint metadata first (the
            // versioned protocol — no happens-before edge to the writer).
            let mut meta = [0.0f32; CHECKPOINT_META_LEN];
            let meta_ok = client.checkpoint_read(ctx, &ckpt.meta, &mut meta, &ckpt_retry).is_ok();
            if !meta_ok || meta[1] != 1.0 {
                // No valid checkpoint to rejoin from: announce the aborted
                // attempt on the board (so survivors stop waiting for this
                // rank) and stay dead.
                board.publish(&client, ctx, rank, iter, true)?;
                break;
            }
            let ckpt_iter = meta[0] as u64;
            let mut w = vec![0.0f32; param_len];
            client.checkpoint_read(ctx, &ckpt.weights, &mut w, &ckpt_retry)?;
            trainer.write_weights(&w);
            // Reclaim the dead incarnation's SMB state: free the old
            // increment buffer if the lease eviction has not beaten us to
            // it, acknowledge any eviction verdicts (GC'ing this rank's
            // tombstones), and resume heartbeating under a fresh lease.
            let _ = client.free(ctx, buffers.dw);
            client.ack_eviction(ctx, rank);
            let dw_key = client.create_owned(
                ctx,
                &format!("dW_{rank}_r"),
                param_len,
                Some(wire_bytes),
                rank,
            )?;
            let dw = client.alloc(ctx, dw_key)?;
            buffers = SeasgdBuffers { wg: buffers.wg, dw };
            client.heartbeat(ctx, rank);
            // Staleness accounting: how far the fleet ran ahead of the
            // checkpoint this worker restarts from.
            let snap = board.snapshot(&client, ctx)?;
            let fleet_max = snap.workers.iter().map(|p| p.iterations).max().unwrap_or(0);
            report.rejoin_staleness_iters = fleet_max.saturating_sub(ckpt_iter);
            report.rejoined = true;
            exchanger = Some(ElasticExchanger::spawn(
                ctx,
                client.clone(),
                buffers,
                param_len,
                wire_bytes,
                &cfg,
                &format!("w{rank}_r"),
            ));
            loss_ema = f32::NAN;
            iter = ckpt_iter;
            continue;
        }
        let exchanger = exchanger.as_mut().expect("only a crashed incarnation lacks one");
        if iter.is_multiple_of(cfg.update_interval as u64) {
            let comm = exchanger.exchange(ctx, trainer)?;
            report.comm_ms.record_duration_ms(comm);
            let phases = exchanger.phase_times();
            report.wait_ms.record_duration_ms(phases.wait);
            report.read_ms.record_duration_ms(phases.read);
            report.mix_ms.record_duration_ms(phases.mix);
        }

        // T4 + T5: train one minibatch and apply the local update (eq. 2).
        let comp_start = ctx.now();
        let loss = trainer.compute_gradients(ctx);
        trainer.apply_update(ctx);
        report.comp_ms.record_duration_ms(ctx.now() - comp_start);
        loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };
        iter += 1;

        // Center-variable checkpointing (rank 0 only): publish the W_g
        // snapshot of the last exchange plus `[iter, valid]` metadata via
        // the versioned checkpoint protocol. The segments live on the SMB
        // server and ride the replication stream to the standby, so the
        // checkpoint survives a memory-server failover.
        if rank == 0 && cfg.checkpoint_every > 0 && iter.is_multiple_of(cfg.checkpoint_every as u64)
        {
            if let Some(ckpt) = &checkpoint {
                client.checkpoint_write(
                    ctx,
                    &ckpt.weights,
                    exchanger.global_weights(),
                    &ckpt_retry,
                )?;
                client.checkpoint_write(ctx, &ckpt.meta, &[iter as f32, 1.0], &ckpt_retry)?;
            }
        }

        // Convergence instrumentation (rank 0 only).
        if rank == 0 && cfg.eval_every > 0 && iter.is_multiple_of(cfg.eval_every as u64) {
            if let Some(sample) = trainer.evaluate() {
                evals.push(EvalPoint {
                    iter,
                    time: ctx.now(),
                    loss: sample.loss,
                    top1: sample.top1,
                    topk: sample.topk,
                });
            }
        }

        // Progress sharing and termination alignment (§III-E). The
        // heartbeat keeps this worker's SMB leases alive; a crashed worker
        // stops sending them and is eventually evicted by the server.
        if iter.is_multiple_of(cfg.progress_every as u64) || iter >= target_iters {
            client.heartbeat(ctx, rank);
            board.publish(&client, ctx, rank, iter, iter >= target_iters)?;
            let snapshot = board.snapshot(&client, ctx)?;
            stop = cfg.termination.should_stop(&snapshot, iter, target_iters);
        }
    }

    if let Some(live) = exchanger {
        report.dropped_updates += live.dropped_updates();
        let degraded = live.degraded_stats();
        report.partition_buffered += degraded.partition_buffered;
        report.partition_dropped += degraded.partition_dropped;
        report.reconciled_updates += degraded.reconciled_updates;
        live.finish(ctx);
    }
    // A rejoined worker finished a full incarnation and must announce it;
    // a worker that died without rejoining never reaches the board again.
    if !report.crashed || report.rejoined {
        board.publish(&client, ctx, rank, iter, true)?;
    }

    let fault_stats = client.fault_stats();
    report.faults = fault_stats.faults;
    report.retries = fault_stats.retries;
    report.recovery_ms = fault_stats.max_recovery_ms;
    report.fenced_writes = fault_stats.fenced;
    report.corruptions_detected = fault_stats.corruptions_detected;
    report.corruptions_repaired = fault_stats.corruptions_repaired;
    report.corruptions_unrepairable = fault_stats.corruptions_unrepairable;
    report.iters = iter;
    report.finished_at = ctx.now();
    report.final_loss = loss_ema;
    Ok(SeasgdOutcome { report, evals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::TerminationPolicy;
    use crate::trainer::{ModeledTrainerFactory, TrainerFactory};
    use parking_lot::Mutex;
    use shmcaffe_models::WorkloadModel;
    use shmcaffe_mpi::{MpiData, MpiWorld};
    use shmcaffe_rdma::RdmaFabric;
    use shmcaffe_simnet::jitter::JitterModel;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;
    use shmcaffe_smb::{ShmKey, SmbServer};
    use std::sync::Arc;

    #[test]
    fn grid_covers_every_element_exactly_once() {
        for (lanes, cfg) in [
            (vec![1_000_000], ShmCaffeConfig::default()),
            (vec![1_000_000], ShmCaffeConfig { exchange_chunk_elems: 7, ..Default::default() }),
            (
                vec![999_999],
                ShmCaffeConfig { exchange_chunk_elems: 1_000_000, ..Default::default() },
            ),
            (vec![1], ShmCaffeConfig::default()),
            (
                vec![300_000, 300_000, 400_001],
                ShmCaffeConfig { exchange_chunk_elems: 123_457, ..Default::default() },
            ),
            (
                vec![500_000, 500_000],
                ShmCaffeConfig { pipelined_exchange: false, ..Default::default() },
            ),
        ] {
            let grid = exchange_grid(&lanes, &cfg);
            let total: usize = lanes.iter().sum();
            let mut next = 0usize;
            let mut lane_start = 0usize;
            let mut lane = 0usize;
            for c in &grid {
                assert_eq!(c.global_off, next, "tiles are contiguous");
                while c.global_off >= lane_start + lanes[lane] {
                    lane_start += lanes[lane];
                    lane += 1;
                }
                assert_eq!(c.lane, lane, "tile assigned to the lane holding it");
                assert_eq!(c.local_off, c.global_off - lane_start);
                assert!(
                    c.local_off + c.len <= lanes[lane],
                    "tile never straddles a shard boundary"
                );
                assert!(c.len > 0);
                next += c.len;
            }
            assert_eq!(next, total, "grid covers the whole vector");
        }
    }

    #[test]
    fn default_grid_targets_the_paper_chunk_count() {
        let grid = exchange_grid(&[13_375_000], &ShmCaffeConfig::default());
        assert_eq!(grid.len(), DEFAULT_EXCHANGE_CHUNKS);
        let mono = exchange_grid(
            &[13_375_000],
            &ShmCaffeConfig { pipelined_exchange: false, ..Default::default() },
        );
        assert_eq!(mono.len(), 1);
    }

    /// Assembles the full master/slave handshake and runs `n` workers.
    fn run_seasgd(
        n_workers: usize,
        nodes: usize,
        cfg: ShmCaffeConfig,
        workload: WorkloadModel,
    ) -> Vec<SeasgdOutcome> {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(nodes));
        let rdma = RdmaFabric::new(fabric.clone());
        let server = SmbServer::new(rdma).unwrap();
        let mpi = MpiWorld::new(fabric, n_workers);
        let factory = ModeledTrainerFactory::new(workload, cfg.jitter, cfg.seed);
        let outcomes: Arc<Mutex<Vec<Option<SeasgdOutcome>>>> =
            Arc::new(Mutex::new((0..n_workers).map(|_| None).collect()));

        let mut sim = Simulation::new();
        for rank in 0..n_workers {
            let server = server.clone();
            let mut comm = mpi.comm(rank);
            let factory = factory.clone();
            let outcomes = Arc::clone(&outcomes);
            let node = mpi.node_of(rank);
            sim.spawn(&format!("worker{rank}"), move |ctx| {
                let mut trainer = factory.make(rank, n_workers);
                let client = SmbClient::new(server, node);
                let (wg_key, board_key) = if rank == 0 {
                    let wg_key = client
                        .create(&ctx, "W_g", trainer.param_len(), Some(trainer.wire_bytes()))
                        .unwrap();
                    let (_board, board_key) =
                        ProgressBoard::create(&client, &ctx, "ctrl", n_workers).unwrap();
                    comm.broadcast(&ctx, 0, Some(MpiData::U64s(vec![wg_key.0, board_key.0])));
                    (wg_key, board_key)
                } else {
                    let keys = comm.broadcast(&ctx, 0, None).into_u64s();
                    (ShmKey(keys[0]), ShmKey(keys[1]))
                };
                let wg = client.alloc(&ctx, wg_key).unwrap();
                let dw_key = client
                    .create(
                        &ctx,
                        &format!("dW_{rank}"),
                        trainer.param_len(),
                        Some(trainer.wire_bytes()),
                    )
                    .unwrap();
                let dw = client.alloc(&ctx, dw_key).unwrap();
                let board = ProgressBoard::attach(&client, &ctx, board_key, n_workers).unwrap();
                let harness = SeasgdHarness {
                    client,
                    buffers: SeasgdBuffers { wg, dw },
                    board,
                    cfg,
                    rank,
                    target_iters: cfg.max_iters as u64,
                    crash_at: None,
                    checkpoint: None,
                };
                let outcome = run_worker(&ctx, harness, &mut trainer).unwrap();
                outcomes.lock()[rank] = Some(outcome);
            });
        }
        sim.run();
        let outcome_slots = std::mem::take(&mut *outcomes.lock());
        outcome_slots.into_iter().map(|o| o.expect("worker finished")).collect()
    }

    fn quick_workload() -> WorkloadModel {
        WorkloadModel::custom("test", 1_000_000, SimDuration::from_millis(10))
    }

    fn quiet(cfg: ShmCaffeConfig) -> ShmCaffeConfig {
        ShmCaffeConfig { jitter: JitterModel::NONE, ..cfg }
    }

    #[test]
    fn single_worker_completes_budget() {
        let cfg = quiet(ShmCaffeConfig { max_iters: 20, progress_every: 5, ..Default::default() });
        let out = run_seasgd(1, 1, cfg, quick_workload());
        assert_eq!(out[0].report.iters, 20);
        assert!(out[0].report.comp_ms.mean() >= 10.0);
        assert!(out[0].report.comm_ms.count() > 0);
        assert!(out[0].report.mix_ms.count() > 0, "phase timing is recorded");
    }

    #[test]
    fn sixteen_workers_all_finish_and_contend() {
        let cfg = quiet(ShmCaffeConfig { max_iters: 10, progress_every: 5, ..Default::default() });
        // Big 100 MB wire: contention at the server must make comm visible.
        let wl = WorkloadModel::custom("big", 100_000_000, SimDuration::from_millis(100));
        let out = run_seasgd(16, 4, cfg, wl);
        for o in &out {
            assert_eq!(o.report.iters, 10);
            assert!(o.report.comm_ms.mean() > 1.0, "comm {:.3}", o.report.comm_ms.mean());
        }
    }

    #[test]
    fn update_interval_reduces_comm() {
        let wl = quick_workload();
        let every = run_seasgd(
            4,
            1,
            quiet(ShmCaffeConfig { max_iters: 20, update_interval: 1, ..Default::default() }),
            wl.clone(),
        );
        let sparse = run_seasgd(
            4,
            1,
            quiet(ShmCaffeConfig { max_iters: 20, update_interval: 5, ..Default::default() }),
            wl,
        );
        let comm_every: f64 = every.iter().map(|o| o.report.comm_ms.sum()).sum();
        let comm_sparse: f64 = sparse.iter().map(|o| o.report.comm_ms.sum()).sum();
        assert!(
            comm_sparse < comm_every / 2.0,
            "update_interval=5 should cut communication: {comm_sparse} vs {comm_every}"
        );
    }

    #[test]
    fn first_finisher_policy_stops_early_under_skew() {
        // Strong jitter so workers drift apart; FirstFinisher should cut
        // slow workers short.
        let cfg = ShmCaffeConfig {
            max_iters: 60,
            progress_every: 2,
            termination: TerminationPolicy::FirstFinisher,
            jitter: JitterModel { sigma: 0.5, stall_probability: 0.2, stall_factor: 2.0 },
            ..Default::default()
        };
        let out = run_seasgd(4, 1, cfg, quick_workload());
        let iters: Vec<u64> = out.iter().map(|o| o.report.iters).collect();
        assert!(iters.iter().any(|&i| i >= 60), "someone reaches the budget: {iters:?}");
        assert!(iters.iter().any(|&i| i < 60), "someone stops early: {iters:?}");
    }

    #[test]
    fn zero_moving_rate_produces_zero_increments() {
        // With moving_rate = 0 no elastic force: the protocol still runs
        // (reads, writes, accumulates of zeros) and nothing diverges.
        let cfg = quiet(ShmCaffeConfig { max_iters: 5, moving_rate: 0.0, ..Default::default() });
        let out = run_seasgd(2, 1, cfg, quick_workload());
        assert_eq!(out.len(), 2);
        for o in &out {
            assert!(o.report.comm_ms.count() >= 5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ShmCaffeConfig { max_iters: 8, ..Default::default() };
        let a = run_seasgd(4, 1, cfg, quick_workload());
        let b = run_seasgd(4, 1, cfg, quick_workload());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.report.finished_at, y.report.finished_at);
            assert_eq!(x.report.comm_ms, y.report.comm_ms);
        }
    }

    #[test]
    fn chunked_pipeline_cuts_nonoverlapped_comm() {
        // Same workload, same fleet: the pipelined chunk stream must spend
        // visibly less non-overlapped time than the monolithic exchange
        // (the reads for later tiles ride under earlier tiles' mixing, and
        // the T.A5 gates drain per tile under compute).
        let wl = WorkloadModel::custom("mid", 50_000_000, SimDuration::from_millis(120));
        let mono = run_seasgd(
            2,
            1,
            quiet(ShmCaffeConfig {
                max_iters: 10,
                pipelined_exchange: false,
                ..Default::default()
            }),
            wl.clone(),
        );
        let chunked = run_seasgd(
            2,
            1,
            quiet(ShmCaffeConfig { max_iters: 10, pipelined_exchange: true, ..Default::default() }),
            wl,
        );
        let t_mono: f64 = mono.iter().map(|o| o.report.comm_ms.mean()).sum();
        let t_chunk: f64 = chunked.iter().map(|o| o.report.comm_ms.mean()).sum();
        assert!(
            t_chunk < t_mono,
            "chunked pipeline must reduce non-overlapped comm: {t_chunk:.3} vs {t_mono:.3}"
        );
    }

    #[test]
    fn hide_global_read_shifts_time_out_of_main_path() {
        // Compute-dominated regime (the update thread's work fits inside
        // T_comp): hiding the read removes T_rgw from the critical path.
        // When the server is saturated instead, hiding buys nothing — the
        // update thread just gets longer — which is part of why the paper
        // keeps the read synchronous.
        let wl = WorkloadModel::custom("w", 200_000_000, SimDuration::from_millis(300));
        let visible = run_seasgd(
            2,
            1,
            quiet(ShmCaffeConfig { max_iters: 15, hide_global_read: false, ..Default::default() }),
            wl.clone(),
        );
        let hidden = run_seasgd(
            2,
            1,
            quiet(ShmCaffeConfig { max_iters: 15, hide_global_read: true, ..Default::default() }),
            wl,
        );
        let t_visible = visible.iter().map(|o| o.report.finished_at).max().unwrap();
        let t_hidden = hidden.iter().map(|o| o.report.finished_at).max().unwrap();
        assert!(
            t_hidden < t_visible,
            "hiding the read must shorten the run: {t_hidden} vs {t_visible}"
        );
    }
}
