//! Non-overlapped SEASGD exchange time: monolithic vs chunked-pipelined
//! vs sharded+chunked.
//!
//! One worker runs the real exchange loop (T1 read → T2 mix → T3 push,
//! paper Fig. 6) against a live SMB server on the simulated FDR fabric
//! and measures what `ElasticExchanger::exchange` actually blocks on —
//! the non-overlapped communication time. The monolithic mode
//! (`pipelined_exchange = false`) serialises the whole-vector read before
//! any mixing starts; the chunked mode streams the exchange over the
//! fixed chunk grid so the `W_g` read of tile *k+1* rides the wire while
//! tile *k* mixes; the sharded modes additionally stripe the grid over 2
//! and 4 memory servers. Results land in `BENCH_comm.json` at the repo
//! root.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin exchange_bench`.
//!
//! `--checksum mono|chunked` instead runs a short single-worker training
//! loop and prints an FNV-1a hash of the final mixed weights; CI diffs
//! the output across the two modes and across `SHMCAFFE_THREADS=1` and
//! `=4` to prove the chunked pipeline is bit-identical to the monolithic
//! exchange.

use parking_lot::Mutex;
use shmcaffe::seasgd::{ElasticExchanger, SeasgdBuffers};
use shmcaffe::trainer::{ModeledTrainerFactory, Trainer, TrainerFactory};
use shmcaffe::ShmCaffeConfig;
use shmcaffe_bench::json::{write_bench_json, Json};
use shmcaffe_bench::table::Table;
use shmcaffe_models::{CnnModel, WorkloadModel};
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{SmbClient, SmbCluster};
use std::sync::Arc;

/// Exchanges discarded before measuring: the first fills the pipeline
/// (no pending push to gate on), the second reaches steady state.
const WARMUP: usize = 2;
/// Measured steady-state exchanges per configuration.
const MEASURED: usize = 8;
/// Training iterations of the `--checksum` probe.
const CHECKSUM_ITERS: usize = 6;

/// Mean per-exchange timings of one configuration, in milliseconds.
#[derive(Clone, Copy, Default)]
struct Run {
    total_ms: f64,
    wait_ms: f64,
    read_ms: f64,
    mix_ms: f64,
}

/// Runs one worker for `WARMUP + MEASURED` iterations against `shards`
/// memory servers and returns the mean steady-state exchange timings.
/// The weights vector is striped over the shards proportionally (same
/// bounds as `SmbCluster`'s own `i * total / parts` split).
fn measure(workload: &WorkloadModel, shards: usize, pipelined: bool) -> Run {
    let (run, _) = run_exchanges(workload, shards, pipelined, WARMUP + MEASURED);
    run
}

fn run_exchanges(
    workload: &WorkloadModel,
    shards: usize,
    pipelined: bool,
    iters: usize,
) -> (Run, Vec<f32>) {
    let spec = ClusterSpec { memory_servers: shards, ..ClusterSpec::paper_testbed(1) };
    let rdma = RdmaFabric::new(Fabric::new(spec));
    let cluster = SmbCluster::new(rdma).expect("fresh fabric");
    let cfg = ShmCaffeConfig {
        pipelined_exchange: pipelined,
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let factory = ModeledTrainerFactory::new(workload.clone(), JitterModel::NONE, 20180707);
    let out = Arc::new(Mutex::new((Run::default(), Vec::new())));

    let mut sim = Simulation::new();
    {
        let servers = cluster.servers().to_vec();
        let out = Arc::clone(&out);
        sim.spawn("bench_worker", move |ctx| {
            let mut trainer = factory.make(0, 1);
            let param_len = trainer.param_len();
            let wire = trainer.wire_bytes();
            let mut w0 = vec![0.0f32; param_len];
            trainer.read_weights(&mut w0);

            // Per-shard clients and segments, in parameter order.
            let n = servers.len();
            let mut parts = Vec::with_capacity(n);
            for (k, server) in servers.into_iter().enumerate() {
                let lo = k * param_len / n;
                let hi = (k + 1) * param_len / n;
                let lane_wire = wire * (hi - lo) as u64 / param_len as u64;
                let client = SmbClient::new(server, NodeId(0));
                let wg_key = client
                    .create(&ctx, &format!("W_g.s{k}"), hi - lo, Some(lane_wire))
                    .expect("unique names");
                let wg = client.alloc(&ctx, wg_key).expect("just created");
                client.write(&ctx, &wg, &w0[lo..hi]).expect("sizes match");
                let dw_key = client
                    .create(&ctx, &format!("dW.s{k}"), hi - lo, Some(lane_wire))
                    .expect("unique names");
                let dw = client.alloc(&ctx, dw_key).expect("just created");
                parts.push((client, SeasgdBuffers { wg, dw }));
            }

            let mut ex = ElasticExchanger::spawn_sharded(&ctx, parts, wire, &cfg, "bench");
            let mut sums = Run::default();
            for iter in 0..iters {
                let _loss = trainer.compute_gradients(&ctx);
                trainer.apply_update(&ctx);
                let blocked = ex.exchange(&ctx, &mut trainer).expect("fault-free fabric");
                if iter >= WARMUP {
                    let phases = ex.phase_times();
                    sums.total_ms += blocked.as_millis_f64();
                    sums.wait_ms += phases.wait.as_millis_f64();
                    sums.read_ms += phases.read.as_millis_f64();
                    sums.mix_ms += phases.mix.as_millis_f64();
                }
            }
            let weights = ex.mixed_weights().to_vec();
            ex.finish(&ctx);
            let measured = (iters - WARMUP.min(iters)) as f64;
            let mean = Run {
                total_ms: sums.total_ms / measured,
                wait_ms: sums.wait_ms / measured,
                read_ms: sums.read_ms / measured,
                mix_ms: sums.mix_ms / measured,
            };
            *out.lock() = (mean, weights);
        });
    }
    sim.run();
    let result = out.lock().clone();
    result
}

/// FNV-1a over the weight bits — the same hash `kernel_bench --checksum`
/// uses, so CI can diff outputs textually.
fn fnv1a(weights: &[f32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in weights {
        for byte in w.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Short single-worker training run; the hash covers the mixed weights
/// `W_x` after the final exchange.
fn training_checksum(pipelined: bool) -> u64 {
    let workload = WorkloadModel::from_cnn(CnnModel::InceptionV1);
    let (_, weights) = run_exchanges(&workload, 1, pipelined, CHECKSUM_ITERS);
    fnv1a(&weights)
}

fn mode_json(run: Run) -> Json {
    Json::obj(vec![
        ("ms", Json::Num(run.total_ms)),
        ("wait_ms", Json::Num(run.wait_ms)),
        ("read_ms", Json::Num(run.read_ms)),
        ("mix_ms", Json::Num(run.mix_ms)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--checksum") {
        let mode = args.get(i + 1).map_or("chunked", String::as_str);
        let pipelined = match mode {
            "mono" | "monolithic" => false,
            "chunked" | "pipelined" => true,
            other => {
                eprintln!("unknown --checksum mode {other:?} (want mono|chunked)");
                std::process::exit(2);
            }
        };
        println!("exchange_checksum=0x{:016x}", training_checksum(pipelined));
        return;
    }

    println!("SEASGD non-overlapped exchange time, monolithic vs chunked-pipelined");
    println!("(single worker, simulated FDR fabric, {MEASURED} steady-state exchanges)\n");

    let mut table = Table::new(
        "Non-overlapped exchange time (ms per exchange)",
        &["model", "wire MB", "mono", "chunked", "speedup", "2 shards", "4 shards", "x4 speedup"],
    );
    let mut models = Vec::new();
    let mut largest_speedup = 0.0f64;
    let mut largest_wire = 0u64;
    for &cnn in &CnnModel::ALL {
        let workload = WorkloadModel::from_cnn(cnn);
        let mono = measure(&workload, 1, false);
        let chunked = measure(&workload, 1, true);
        let sharded2 = measure(&workload, 2, true);
        let sharded4 = measure(&workload, 4, true);
        let speedup = mono.total_ms / chunked.total_ms;
        let speedup4 = mono.total_ms / sharded4.total_ms;
        if workload.wire_bytes > largest_wire {
            largest_wire = workload.wire_bytes;
            largest_speedup = speedup;
        }
        table.row_owned(vec![
            workload.name.clone(),
            format!("{:.1}", workload.wire_bytes as f64 / 1e6),
            format!("{:.2}", mono.total_ms),
            format!("{:.2}", chunked.total_ms),
            format!("{speedup:.2}x"),
            format!("{:.2}", sharded2.total_ms),
            format!("{:.2}", sharded4.total_ms),
            format!("{speedup4:.2}x"),
        ]);
        models.push(Json::obj(vec![
            ("model", Json::str(workload.name.clone())),
            ("wire_mb", Json::Num(workload.wire_bytes as f64 / 1e6)),
            ("comp_ms", Json::Num(workload.comp_time.as_millis_f64())),
            ("monolithic", mode_json(mono)),
            ("chunked", mode_json(chunked)),
            ("speedup", Json::Num(speedup)),
            (
                "sharded",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("shards", Json::Int(2)),
                        ("chunked", mode_json(sharded2)),
                        ("speedup", Json::Num(mono.total_ms / sharded2.total_ms)),
                    ]),
                    Json::obj(vec![
                        ("shards", Json::Int(4)),
                        ("chunked", mode_json(sharded4)),
                        ("speedup", Json::Num(speedup4)),
                    ]),
                ]),
            ),
        ]));
    }
    table.print();

    let doc = Json::obj(vec![
        ("benchmark", Json::str("exchange_bench")),
        ("warmup_exchanges", Json::Int(WARMUP as i64)),
        ("measured_exchanges", Json::Int(MEASURED as i64)),
        (
            "note",
            Json::str(
                "ms = mean virtual time ElasticExchanger::exchange blocks the worker \
                 (non-overlapped comm); wait = gating on the previous push, read = W_g \
                 stream stalls, mix = elastic mixing; pushes overlap compute in every mode",
            ),
        ),
        ("models", Json::Arr(models)),
        ("largest_model_speedup", Json::Num(largest_speedup)),
        ("table", Json::from(&table)),
    ]);
    match write_bench_json("comm", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_comm.json: {e}"),
    }
    println!(
        "\nlargest model chunked-vs-monolithic speedup: {largest_speedup:.2}x (target >= 1.50x)"
    );
}
