//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/figNN_*.rs` binary reproduces one evaluation artifact;
//! this library holds the shared machinery:
//!
//! * [`table`] — fixed-width table rendering for terminal output,
//! * [`json`] — dependency-free ordered JSON emission (`BENCH_*.json`
//!   perf-trajectory files and per-figure machine-readable output),
//! * [`experiments`] — the parameterised experiment runners (platform ×
//!   model × worker-count sweeps) used by both the binaries and the
//!   criterion benches,
//! * [`convergence`] — real-training convergence runs on proxy networks.
//!
//! See EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod experiments;
pub mod json;
pub mod table;
