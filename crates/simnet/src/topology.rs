//! Cluster topology: GPU nodes, InfiniBand fabric, PCIe buses, memory server.
//!
//! Mirrors the paper's testbed (§IV-A): 4-GPU SuperMicro servers with one
//! 56 Gbps FDR HCA each (≈7 GB/s), a non-blocking Mellanox switch, and a
//! dedicated SMB memory server on the same fabric.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::fault::{FaultError, FaultInjector, FaultPlan};
use crate::resource::{BandwidthResource, LinkModel, TransferReport};
use crate::{SimContext, SimDuration};

/// Identifies an endpoint (GPU node or memory server) on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static description of a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of GPU servers.
    pub gpu_nodes: usize,
    /// GPUs per server (the paper's servers have 4).
    pub gpus_per_node: usize,
    /// Per-node HCA model, applied to each direction independently.
    pub hca: LinkModel,
    /// Per-node shared PCIe bus model (intra-node GPU↔GPU traffic).
    pub pcie: LinkModel,
    /// Number of dedicated memory servers (SMB hosts) attached. The paper
    /// evaluates a single server and names "multiple SMB servers" as future
    /// work (§V); this reproduction implements both.
    pub memory_servers: usize,
    /// Whether the memory servers' HCAs behave half-duplex (reads and
    /// writes share one 7 GB/s pipe). The paper's SMB transport is derived
    /// from the kernel RDS module and saturates at 6.7 GB/s *aggregate*
    /// for a 50/50 read/write mix (Fig. 7), i.e. the two directions are
    /// not independent.
    pub half_duplex_memory_server: bool,
}

impl ClusterSpec {
    /// 56 Gbps FDR InfiniBand HCA: 7 GB/s, ~2 µs latency (paper §IV-B).
    pub fn fdr_hca() -> LinkModel {
        LinkModel::new(7.0e9, SimDuration::from_micros(2))
    }

    /// PCIe 3.0 x16 effective bandwidth shared per node: ~12 GB/s, ~1 µs.
    pub fn pcie3_bus() -> LinkModel {
        LinkModel::new(12.0e9, SimDuration::from_micros(1))
    }

    /// The paper's testbed: `gpu_nodes` servers of 4 GPUs plus the memory
    /// server, all on FDR InfiniBand.
    pub fn paper_testbed(gpu_nodes: usize) -> Self {
        ClusterSpec {
            gpu_nodes,
            gpus_per_node: 4,
            hca: Self::fdr_hca(),
            pcie: Self::pcie3_bus(),
            memory_servers: 1,
            half_duplex_memory_server: true,
        }
    }

    /// Total worker slots (GPUs) in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.gpu_nodes * self.gpus_per_node
    }
}

/// The instantiated fabric: shared bandwidth resources for every endpoint.
///
/// Endpoints `0..gpu_nodes` are GPU servers; if a memory server is present it
/// is the last endpoint (see [`Fabric::memory_server`]).
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::{Simulation, topology::{ClusterSpec, Fabric, NodeId}};
///
/// let fabric = Fabric::new(ClusterSpec::paper_testbed(4));
/// let mem = fabric.memory_server().unwrap();
/// let mut sim = Simulation::new();
/// let f = fabric.clone();
/// sim.spawn("w", move |ctx| {
///     // Push 53.5 MB (Inception_v1 weights) from node 0 to the SMB server.
///     f.net_transfer(&ctx, NodeId(0), mem, 53_500_000);
/// });
/// let end = sim.run();
/// assert!(end.as_millis_f64() > 7.0); // 53.5 MB / 7 GB/s ≈ 7.6 ms
/// ```
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

struct FabricInner {
    spec: ClusterSpec,
    hca_tx: Vec<BandwidthResource>,
    hca_rx: Vec<BandwidthResource>,
    pcie: Vec<BandwidthResource>,
    injector: Option<FaultInjector>,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric").field("spec", &self.inner.spec).finish()
    }
}

impl Fabric {
    /// Instantiates the fabric for a cluster description.
    pub fn new(spec: ClusterSpec) -> Self {
        Self::build(spec, None)
    }

    /// Instantiates the fabric with a deterministic fault-injection plan
    /// (see [`crate::fault`]). Every transfer consults the shared
    /// [`FaultInjector`], so identical plans yield identical fault
    /// sequences.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn with_faults(spec: ClusterSpec, plan: FaultPlan) -> Self {
        Self::build(spec, Some(FaultInjector::new(plan)))
    }

    fn build(spec: ClusterSpec, injector: Option<FaultInjector>) -> Self {
        let endpoints = spec.gpu_nodes + spec.memory_servers;
        let hca_tx: Vec<BandwidthResource> = (0..endpoints)
            .map(|n| BandwidthResource::new(&format!("hca_tx[{n}]"), spec.hca))
            .collect();
        let mut hca_rx: Vec<BandwidthResource> = (0..endpoints)
            .map(|n| BandwidthResource::new(&format!("hca_rx[{n}]"), spec.hca))
            .collect();
        if spec.half_duplex_memory_server {
            // Each memory server's rx shares its tx pipe: one queue for
            // both directions.
            hca_rx[spec.gpu_nodes..endpoints].clone_from_slice(&hca_tx[spec.gpu_nodes..endpoints]);
        }
        let pcie = (0..spec.gpu_nodes)
            .map(|n| BandwidthResource::new(&format!("pcie[{n}]"), spec.pcie))
            .collect();
        Fabric { inner: Arc::new(FabricInner { spec, hca_tx, hca_rx, pcie, injector }) }
    }

    /// The attached fault injector, if the fabric was built with one.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.inner.injector.as_ref()
    }

    /// The cluster description this fabric was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Number of fabric endpoints (GPU nodes plus memory server).
    pub fn endpoints(&self) -> usize {
        self.inner.hca_tx.len()
    }

    /// The first memory server's endpoint id, if one exists.
    pub fn memory_server(&self) -> Option<NodeId> {
        self.memory_server_at(0)
    }

    /// The `i`-th memory server's endpoint id, if it exists.
    pub fn memory_server_at(&self, i: usize) -> Option<NodeId> {
        (i < self.inner.spec.memory_servers).then(|| NodeId(self.inner.spec.gpu_nodes + i))
    }

    /// Number of memory servers on this fabric.
    pub fn memory_server_count(&self) -> usize {
        self.inner.spec.memory_servers
    }

    /// Which endpoint hosts a given worker rank under the paper's layout
    /// (workers fill nodes in order, `gpus_per_node` per node).
    pub fn node_of_worker(&self, rank: usize) -> NodeId {
        NodeId(rank / self.inner.spec.gpus_per_node)
    }

    /// Moves `bytes` between endpoints, or over the local PCIe bus when
    /// `from == to`. Blocks in virtual time.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint id is out of range.
    pub fn net_transfer(
        &self,
        ctx: &SimContext,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> TransferReport {
        self.net_transfer_stream(ctx, from, to, bytes, None)
    }

    /// [`Fabric::net_transfer`] with an optional per-stream pacing limit
    /// (see [`crate::resource::BandwidthResource::transfer_stream`]).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint id is out of range.
    pub fn net_transfer_stream(
        &self,
        ctx: &SimContext,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        stream_bps: Option<f64>,
    ) -> TransferReport {
        if from == to {
            return self.pcie_transfer(ctx, from, bytes);
        }
        // The reliable substrate rides out faults, so shaping cannot fail.
        let cap = self
            .fault_shape(ctx, from, to, false)
            .expect("infallible transfers wait out fault windows");
        let tx = &self.inner.hca_tx[from.0];
        let rx = &self.inner.hca_rx[to.0];
        crate::resource::transfer_path_stream(ctx, &[tx, rx], bytes, min_bps(stream_bps, cap))
    }

    /// Fallible variant of [`Fabric::net_transfer_stream`]: a transfer
    /// attempted during a link-down window — or failed by the plan's
    /// per-operation probability — pays the detection latency and returns
    /// a [`FaultError`] instead of waiting the fault out.
    ///
    /// # Errors
    ///
    /// Returns the injected fault. Without an attached plan this never
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint id is out of range.
    pub fn try_net_transfer_stream(
        &self,
        ctx: &SimContext,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        stream_bps: Option<f64>,
    ) -> Result<TransferReport, FaultError> {
        if from == to {
            return Ok(self.pcie_transfer(ctx, from, bytes));
        }
        let cap = self.fault_shape(ctx, from, to, true)?;
        let tx = &self.inner.hca_tx[from.0];
        let rx = &self.inner.hca_rx[to.0];
        Ok(crate::resource::transfer_path_stream(ctx, &[tx, rx], bytes, min_bps(stream_bps, cap)))
    }

    /// Runs the fallible fault gate for a transfer between two endpoints
    /// without moving any bytes. Callers that charge wire time through
    /// their own resource path (the SMB transport) use this to subject
    /// that path to the fabric's fault plan; the returned value is a
    /// per-stream bandwidth cap to apply while degraded.
    ///
    /// # Errors
    ///
    /// Returns the injected fault (after detection latency).
    pub fn fault_check(
        &self,
        ctx: &SimContext,
        from: NodeId,
        to: NodeId,
    ) -> Result<Option<f64>, FaultError> {
        self.fault_shape(ctx, from, to, true)
    }

    /// Sleeps through stall/outage windows and draws the failure coin.
    ///
    /// Returns a bandwidth cap when a degradation window is active.
    /// `fallible` selects fail-fast (RDMA-style) versus ride-it-out
    /// (reliable-stream-style) semantics for outages.
    fn fault_shape(
        &self,
        ctx: &SimContext,
        from: NodeId,
        to: NodeId,
        fallible: bool,
    ) -> Result<Option<f64>, FaultError> {
        let Some(inj) = &self.inner.injector else {
            return Ok(None);
        };
        loop {
            let now = ctx.now();
            // A crashed memory server never comes back: fail fast so the
            // caller can fail over. Crashes only make sense on fallible
            // (RDMA/SMB) paths — the synchronous baselines do not talk to
            // memory servers — so an infallible transfer touching a crashed
            // endpoint is a scenario bug, not something to ride out.
            let crashed = [from, to].iter().copied().find(|&n| inj.memory_server_crashed(n, now));
            if let Some(node) = crashed {
                assert!(
                    fallible,
                    "infallible transfer touches crashed memory server {node} at t={} ns",
                    now.as_nanos()
                );
                inj.record_memory_server_crash_hit();
                ctx.sleep(inj.plan().detection_latency);
                return Err(FaultError::NodeCrashed { node, at: ctx.now() });
            }
            // A stalled endpoint delays the transfer for both semantics.
            let stalled = [from, to].iter().filter_map(|&n| inj.stall_until(n, now)).max();
            if let Some(until) = stalled {
                inj.record_stall();
                ctx.sleep_until(until);
                continue;
            }
            let down = [from, to].iter().find_map(|&n| inj.down_until(n, now).map(|u| (n, u)));
            if let Some((node, until)) = down {
                if fallible {
                    inj.record_link_down_hit();
                    ctx.sleep(inj.plan().detection_latency);
                    return Err(FaultError::LinkDown { node, at: ctx.now() });
                }
                ctx.sleep_until(until);
                continue;
            }
            // A severed partition is directional: only the from->to path is
            // consulted, so an asymmetric plan can black-hole one side while
            // the reverse direction keeps flowing.
            if let Some(heal) = inj.partitioned_until(from, to, now) {
                if fallible {
                    inj.record_partition_hit();
                    ctx.sleep(inj.plan().detection_latency);
                    return Err(FaultError::Partitioned { from, to, at: ctx.now() });
                }
                let until = heal.unwrap_or_else(|| {
                    panic!(
                        "infallible transfer {from}->{to} severed by a partition that never \
                         heals (t={} ns)",
                        now.as_nanos()
                    )
                });
                ctx.sleep_until(until);
                continue;
            }
            break;
        }
        if fallible && inj.draw_op_failure() {
            ctx.sleep(inj.plan().detection_latency);
            return Err(FaultError::Injected { from, to, at: ctx.now() });
        }
        let factor = [from, to]
            .iter()
            .filter_map(|&n| inj.degrade_factor(n, ctx.now()))
            .fold(None, |acc: Option<f64>, f| Some(acc.map_or(f, |a| a.min(f))));
        Ok(factor.map(|f| {
            inj.record_degraded();
            self.inner.spec.hca.bandwidth_bps * f
        }))
    }

    /// Moves `bytes` over a node's shared PCIe bus.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a GPU node (the memory server has no GPUs).
    pub fn pcie_transfer(&self, ctx: &SimContext, node: NodeId, bytes: u64) -> TransferReport {
        let bus = &self.inner.pcie[node.0];
        bus.transfer(ctx, bytes)
    }

    /// Occupies an endpoint's receive side for a fixed service time
    /// (server-side processing such as the SMB accumulate engine).
    pub fn occupy_rx(
        &self,
        ctx: &SimContext,
        node: NodeId,
        service: SimDuration,
    ) -> TransferReport {
        self.inner.hca_rx[node.0].occupy(ctx, service)
    }

    /// The transmit-side HCA resource of an endpoint (for stats inspection).
    pub fn hca_tx(&self, node: NodeId) -> &BandwidthResource {
        &self.inner.hca_tx[node.0]
    }

    /// The receive-side HCA resource of an endpoint (for stats inspection).
    pub fn hca_rx(&self, node: NodeId) -> &BandwidthResource {
        &self.inner.hca_rx[node.0]
    }

    /// The PCIe bus resource of a GPU node (for stats inspection).
    pub fn pcie(&self, node: NodeId) -> &BandwidthResource {
        &self.inner.pcie[node.0]
    }
}

/// The tighter of two optional per-stream bandwidth limits.
fn min_bps(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[test]
    fn paper_testbed_layout() {
        let spec = ClusterSpec::paper_testbed(4);
        assert_eq!(spec.total_gpus(), 16);
        let fabric = Fabric::new(spec);
        assert_eq!(fabric.endpoints(), 5);
        assert_eq!(fabric.memory_server(), Some(NodeId(4)));
        assert_eq!(fabric.node_of_worker(0), NodeId(0));
        assert_eq!(fabric.node_of_worker(3), NodeId(0));
        assert_eq!(fabric.node_of_worker(4), NodeId(1));
        assert_eq!(fabric.node_of_worker(15), NodeId(3));
    }

    #[test]
    fn no_memory_server_when_disabled() {
        let spec = ClusterSpec { memory_servers: 0, ..ClusterSpec::paper_testbed(2) };
        let fabric = Fabric::new(spec);
        assert_eq!(fabric.endpoints(), 2);
        assert_eq!(fabric.memory_server(), None);
    }

    #[test]
    fn inter_node_transfer_uses_hca_bandwidth() {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(2));
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let rep = f.net_transfer(&ctx, NodeId(0), NodeId(1), 7_000_000_000);
            assert_eq!(rep.duration().as_secs_f64(), 1.0);
        });
        sim.run();
        assert_eq!(fabric.hca_tx(NodeId(0)).total_bytes(), 7_000_000_000);
        assert_eq!(fabric.hca_rx(NodeId(1)).total_bytes(), 7_000_000_000);
        assert_eq!(fabric.hca_rx(NodeId(0)).total_bytes(), 0);
    }

    #[test]
    fn same_node_transfer_uses_pcie() {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(1));
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            f.net_transfer(&ctx, NodeId(0), NodeId(0), 12_000_000_000);
        });
        sim.run();
        assert_eq!(fabric.pcie(NodeId(0)).total_bytes(), 12_000_000_000);
        assert_eq!(fabric.hca_tx(NodeId(0)).total_bytes(), 0);
    }

    #[test]
    fn memory_server_is_half_duplex_by_default() {
        // One reader and one writer of the memory server share its pipe:
        // 7 GB in each direction takes 2 s, not 1 s.
        let fabric = Fabric::new(ClusterSpec::paper_testbed(2));
        let mem = fabric.memory_server().unwrap();
        let mut sim = Simulation::new();
        {
            let f = fabric.clone();
            sim.spawn("writer", move |ctx| {
                f.net_transfer(&ctx, NodeId(0), mem, 7_000_000_000);
            });
        }
        {
            let f = fabric.clone();
            sim.spawn("reader", move |ctx| {
                f.net_transfer(&ctx, mem, NodeId(1), 7_000_000_000);
            });
        }
        let end = sim.run();
        assert!((end.as_secs_f64() - 2.0).abs() < 0.01, "{}", end.as_secs_f64());
    }

    #[test]
    fn gpu_node_hcas_remain_full_duplex() {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(3));
        let mut sim = Simulation::new();
        {
            let f = fabric.clone();
            sim.spawn("tx", move |ctx| {
                f.net_transfer(&ctx, NodeId(0), NodeId(1), 7_000_000_000);
            });
        }
        {
            let f = fabric.clone();
            sim.spawn("rx", move |ctx| {
                f.net_transfer(&ctx, NodeId(2), NodeId(0), 7_000_000_000);
            });
        }
        // Node 0 sends and receives concurrently: 1 s total.
        let end = sim.run();
        assert!((end.as_secs_f64() - 1.0).abs() < 0.01, "{}", end.as_secs_f64());
    }

    #[test]
    fn degraded_window_halves_throughput() {
        use crate::fault::FaultPlan;
        use crate::SimTime;
        // 50% degradation active for the whole transfer: 7 GB takes 2 s.
        let plan =
            FaultPlan::new(1).link_degraded(NodeId(0), SimTime::ZERO, SimTime::from_secs(100), 0.5);
        let fabric = Fabric::with_faults(ClusterSpec::paper_testbed(2), plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            f.net_transfer(&ctx, NodeId(0), NodeId(1), 7_000_000_000);
        });
        let end = sim.run();
        assert!((end.as_secs_f64() - 2.0).abs() < 0.01, "{}", end.as_secs_f64());
        assert_eq!(fabric.fault_injector().unwrap().stats().degraded_transfers, 1);
    }

    #[test]
    fn infallible_transfer_rides_out_link_down() {
        use crate::fault::FaultPlan;
        use crate::SimTime;
        let plan = FaultPlan::new(1).link_down(NodeId(1), SimTime::ZERO, SimTime::from_millis(250));
        let fabric = Fabric::with_faults(ClusterSpec::paper_testbed(2), plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let rep = f.net_transfer(&ctx, NodeId(0), NodeId(1), 7_000_000);
            // Started only after the outage cleared at 250 ms.
            assert!(rep.start >= SimTime::from_millis(250));
        });
        let end = sim.run();
        assert!(end.as_millis_f64() >= 250.0, "{}", end.as_millis_f64());
    }

    #[test]
    fn fallible_transfer_fails_fast_during_link_down() {
        use crate::fault::{FaultError, FaultPlan};
        use crate::SimTime;
        let plan = FaultPlan::new(1)
            .link_down(NodeId(1), SimTime::ZERO, SimTime::from_secs(1))
            .with_detection_latency(SimDuration::from_micros(500));
        let fabric = Fabric::with_faults(ClusterSpec::paper_testbed(2), plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let err =
                f.try_net_transfer_stream(&ctx, NodeId(0), NodeId(1), 7_000_000, None).unwrap_err();
            assert!(matches!(err, FaultError::LinkDown { node: NodeId(1), .. }));
            // Paid only detection latency, not the 1 s outage.
            assert_eq!(ctx.now(), SimTime::from_micros(500));
        });
        sim.run();
        assert_eq!(fabric.fault_injector().unwrap().stats().link_down_hits, 1);
    }

    #[test]
    fn fallible_transfer_fails_fast_against_crashed_memory_server() {
        use crate::fault::{FaultError, FaultPlan};
        use crate::SimTime;
        let spec = ClusterSpec::paper_testbed(2);
        let mem = NodeId(spec.gpu_nodes);
        let plan = FaultPlan::new(1)
            .crash_memory_server(mem, SimTime::from_millis(5))
            .with_detection_latency(SimDuration::from_micros(500));
        let fabric = Fabric::with_faults(spec, plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            // Before the crash the path is clean.
            assert!(f.fault_check(&ctx, NodeId(0), mem).is_ok());
            ctx.sleep_until(SimTime::from_millis(5));
            let err = f.try_net_transfer_stream(&ctx, NodeId(0), mem, 7_000, None).unwrap_err();
            assert!(matches!(err, FaultError::NodeCrashed { node, .. } if node == mem));
            // Paid only detection latency; the crash is permanent.
            assert_eq!(ctx.now(), SimTime::from_millis(5) + SimDuration::from_micros(500));
            let err2 = f.fault_check(&ctx, mem, NodeId(1)).unwrap_err();
            assert!(matches!(err2, FaultError::NodeCrashed { node, .. } if node == mem));
        });
        sim.run();
        assert_eq!(fabric.fault_injector().unwrap().stats().memory_server_crash_hits, 2);
    }

    #[test]
    fn fallible_transfer_fails_fast_across_partition() {
        use crate::fault::{FaultError, FaultPlan};
        use crate::SimTime;
        let plan = FaultPlan::new(1)
            .partition_one_way(
                vec![vec![NodeId(0)], vec![NodeId(1)]],
                SimTime::ZERO,
                Some(SimTime::from_secs(1)),
            )
            .with_detection_latency(SimDuration::from_micros(500));
        let fabric = Fabric::with_faults(ClusterSpec::paper_testbed(2), plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let err =
                f.try_net_transfer_stream(&ctx, NodeId(0), NodeId(1), 7_000, None).unwrap_err();
            assert!(matches!(err, FaultError::Partitioned { from: NodeId(0), to: NodeId(1), .. }));
            // Paid only detection latency, not the 1 s outage.
            assert_eq!(ctx.now(), SimTime::from_micros(500));
            // The reverse direction of a one-way partition keeps flowing.
            assert!(f.try_net_transfer_stream(&ctx, NodeId(1), NodeId(0), 7_000, None).is_ok());
        });
        sim.run();
        assert_eq!(fabric.fault_injector().unwrap().stats().partition_hits, 1);
    }

    #[test]
    fn infallible_transfer_rides_out_partition_until_heal() {
        use crate::fault::FaultPlan;
        use crate::SimTime;
        let plan = FaultPlan::new(1).partition(
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            SimTime::ZERO,
            Some(SimTime::from_millis(250)),
        );
        let fabric = Fabric::with_faults(ClusterSpec::paper_testbed(2), plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let rep = f.net_transfer(&ctx, NodeId(0), NodeId(1), 7_000_000);
            // Started only after the partition healed at 250 ms.
            assert!(rep.start >= SimTime::from_millis(250));
        });
        let end = sim.run();
        assert!(end.as_millis_f64() >= 250.0, "{}", end.as_millis_f64());
    }

    #[test]
    fn stall_window_delays_both_semantics() {
        use crate::fault::FaultPlan;
        use crate::SimTime;
        let plan = FaultPlan::new(1).stall(NodeId(0), SimTime::ZERO, SimTime::from_millis(40));
        let fabric = Fabric::with_faults(ClusterSpec::paper_testbed(2), plan);
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let rep = f.try_net_transfer_stream(&ctx, NodeId(0), NodeId(1), 7_000, None).unwrap();
            assert!(rep.start >= SimTime::from_millis(40));
        });
        sim.run();
        assert_eq!(fabric.fault_injector().unwrap().stats().stall_delays, 1);
    }

    #[test]
    fn fabric_without_plan_never_faults() {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(2));
        assert!(fabric.fault_injector().is_none());
        let f = fabric.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            assert!(f.try_net_transfer_stream(&ctx, NodeId(0), NodeId(1), 7_000, None).is_ok());
            assert_eq!(f.fault_check(&ctx, NodeId(0), NodeId(1)), Ok(None));
        });
        sim.run();
    }

    #[test]
    fn many_senders_to_one_receiver_contend_at_receiver() {
        // 4 nodes each send 1 GB to the memory server; its rx HCA (7 GB/s)
        // is the bottleneck: total 4 GB / 7 GB/s ≈ 0.571 s.
        let fabric = Fabric::new(ClusterSpec::paper_testbed(4));
        let mem = fabric.memory_server().unwrap();
        let mut sim = Simulation::new();
        for n in 0..4 {
            let f = fabric.clone();
            sim.spawn(&format!("n{n}"), move |ctx| {
                f.net_transfer(&ctx, NodeId(n), mem, 1_000_000_000);
            });
        }
        let end = sim.run();
        let expect = 4.0 / 7.0;
        assert!((end.as_secs_f64() - expect).abs() < 0.01, "{}", end.as_secs_f64());
    }
}
