//! Inverted dropout layer.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use shmcaffe_tensor::Tensor;

use super::inner_product::hash_name;
use crate::{DnnError, Layer, Phase};

/// Inverted dropout: during training each activation is zeroed with
/// probability `ratio` and survivors are scaled by `1/(1-ratio)`, so the
/// expected activation is unchanged and no test-time rescaling is needed
/// (Caffe's behaviour).
#[derive(Debug)]
pub struct Dropout {
    name: String,
    ratio: f32,
    rng: ChaCha8Rng,
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `ratio`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio < 1.0`.
    pub fn new(name: &str, ratio: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&ratio), "dropout ratio must be in [0, 1)");
        Dropout {
            name: name.to_string(),
            ratio,
            rng: ChaCha8Rng::seed_from_u64(seed ^ hash_name(name)),
            mask: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor, DnnError> {
        match phase {
            Phase::Test => {
                self.mask.clear();
                Ok(input.clone())
            }
            Phase::Train => {
                let scale = 1.0 / (1.0 - self.ratio);
                self.mask = (0..input.len())
                    .map(|_| if self.rng.gen_range(0.0f32..1.0) < self.ratio { 0.0 } else { scale })
                    .collect();
                let mut out = input.clone();
                for (v, &m) in out.data_mut().iter_mut().zip(self.mask.iter()) {
                    *v *= m;
                }
                Ok(out)
            }
        }
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        if self.mask.is_empty() {
            // Test phase (or ratio applied to nothing): pass through.
            return Ok(d_output.clone());
        }
        if d_output.len() != self.mask.len() {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output length does not match forward mask".to_string(),
            });
        }
        let mut d_input = d_output.clone();
        for (v, &m) in d_input.data_mut().iter_mut().zip(self.mask.iter()) {
            *v *= m;
        }
        Ok(d_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_phase_is_identity() {
        let mut d = Dropout::new("d", 0.5, 1);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = d.forward(&x, Phase::Test).unwrap();
        assert_eq!(y, x);
        let dx = d.backward(&x).unwrap();
        assert_eq!(dx, x);
    }

    #[test]
    fn train_phase_preserves_expectation() {
        let mut d = Dropout::new("d", 0.4, 7);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Phase::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Some units dropped, survivors scaled.
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 3_000 && zeros < 5_000);
        assert!(y.data().iter().any(|&v| (v - 1.0 / 0.6).abs() < 1e-5));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new("d", 0.5, 3);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Phase::Train).unwrap();
        let dx = d.backward(&Tensor::ones(&[100])).unwrap();
        for (a, b) in y.data().iter().zip(dx.data().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_ratio_never_drops() {
        let mut d = Dropout::new("d", 0.0, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "ratio must be")]
    fn ratio_one_rejected() {
        Dropout::new("d", 1.0, 0);
    }
}
