//! Reusable per-thread scratch arenas for the packed compute kernels.
//!
//! Every hot kernel in this crate needs transient buffers — packed GEMM
//! panels, the fused-convolution column tile, the backward `d_col` staging
//! strip. Allocating them per call (let alone per task, as the pre-fusion
//! conv path did) puts `malloc` and page-zeroing on the critical path and
//! is why the batch-parallel conv *lost* throughput with more threads.
//!
//! This module replaces those allocations with **tagged thread-local
//! buffers**:
//!
//! * Each [`Tag`] names one logical scratch role. A kernel borrows the
//!   buffer for a tag with [`with_f32`], which hands out a `&mut [f32]` of
//!   exactly the requested length.
//! * Buffers grow **monotonically** and are never freed: after the first
//!   pass over a layer, steady-state forward/backward performs zero
//!   allocations (asserted by `tests/alloc_free.rs`).
//! * Buffers are per OS thread. Pool workers are persistent
//!   ([`crate::parallel`]), so their arenas are warm for the whole
//!   process lifetime; the calling thread has its own arena.
//!
//! Lifetime and tagging rules (see DESIGN.md §5h):
//!
//! 1. A buffer is borrowed for the duration of one `with_f32` closure and
//!    must not escape it (the API makes escape impossible).
//! 2. Nested borrows of *different* tags are fine and are how the kernels
//!    compose (e.g. `ConvDcol` → `ConvPackA` → `ConvPackB`). A nested
//!    borrow of the *same* tag does not alias — the slot is empty while
//!    borrowed, so the inner borrow gets a fresh temporary and the larger
//!    of the two buffers survives — but it allocates, so kernels are
//!    written to never nest a tag inside itself.
//! 3. Contents are **dirty**: a borrowed buffer holds whatever the last
//!    user left. Every kernel fully overwrites the region it reads back
//!    (packing routines write explicit zero padding; tile write-backs
//!    overwrite on the first k-block).
//!
//! Determinism: arenas hold *scratch*, never results. Which thread's
//! arena a task uses can vary with the schedule, but every buffer is
//! fully written before it is read, so outputs cannot observe the
//! difference.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Logical scratch roles. One persistent buffer per tag per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Packed `op(A)` MR-row panels for the generic [`crate::gemm::gemm`].
    GemmPackA,
    /// Packed `op(B)` NR-column panels for the generic gemm.
    GemmPackB,
    /// Fused convolution: packed weight / `dY` / `Wᵀ` row panels.
    ConvPackA,
    /// Fused convolution: packed column panels (the fused im2col output).
    ConvPackB,
    /// Fused convolution backward: the per-task `d_col` staging strip.
    ConvDcol,
}

const TAG_COUNT: usize = 5;

thread_local! {
    static SLOTS: [RefCell<Vec<f32>>; TAG_COUNT] = Default::default();
}

/// Total number of buffer growths across all threads since process start.
/// Growths happen during warm-up only; tests use the counter to prove the
/// steady state is allocation-free.
static GROWTHS: AtomicU64 = AtomicU64::new(0);

/// Number of arena buffer growths (allocations) observed so far, summed
/// over all threads. Monotonic; intended for tests and diagnostics.
pub fn growth_count() -> u64 {
    GROWTHS.load(Ordering::Relaxed)
}

/// Borrows this thread's buffer for `tag`, grown to at least `len`
/// elements, for the duration of `f`.
///
/// The slice contents are unspecified on entry (see the module docs for
/// the overwrite-before-read rule). The buffer is returned to the
/// thread-local slot when `f` finishes, keeping its capacity.
pub fn with_f32<R>(tag: Tag, len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = SLOTS.with(|slots| std::mem::take(&mut *slots[tag as usize].borrow_mut()));
    if buf.len() < len {
        if buf.capacity() < len {
            GROWTHS.fetch_add(1, Ordering::Relaxed);
        }
        buf.resize(len, 0.0);
    }
    let result = f(&mut buf[..len]);
    SLOTS.with(|slots| {
        let mut slot = slots[tag as usize].borrow_mut();
        // Keep the larger buffer if a nested same-tag borrow replaced it.
        if slot.len() < buf.len() {
            *slot = buf;
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_reused_and_grows_monotonically() {
        with_f32(Tag::GemmPackA, 100, |b| {
            assert_eq!(b.len(), 100);
            b[99] = 7.0;
        });
        // Re-borrowing at a smaller length still sees a 100-element slice
        // trimmed to the request; no growth event occurs.
        let before = growth_count();
        with_f32(Tag::GemmPackA, 10, |b| assert_eq!(b.len(), 10));
        with_f32(Tag::GemmPackA, 100, |b| assert_eq!(b.len(), 100));
        assert_eq!(growth_count(), before, "no growth when capacity suffices");
        with_f32(Tag::GemmPackA, 200, |b| assert_eq!(b.len(), 200));
        assert!(growth_count() > before, "growing past capacity is counted");
    }

    #[test]
    fn nested_distinct_tags_do_not_alias() {
        with_f32(Tag::ConvPackA, 8, |a| {
            a.fill(1.0);
            with_f32(Tag::ConvPackB, 8, |b| {
                b.fill(2.0);
                assert_eq!(a[0], 1.0);
                assert_eq!(b[0], 2.0);
            });
        });
    }

    #[test]
    fn nested_same_tag_falls_back_to_fresh_buffer() {
        with_f32(Tag::ConvDcol, 4, |outer| {
            outer.fill(3.0);
            with_f32(Tag::ConvDcol, 4, |inner| {
                inner.fill(4.0);
            });
            assert_eq!(outer, &[3.0; 4][..], "outer borrow survives nesting");
        });
    }
}
