use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Constructs from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier time (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Constructs from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!((t2 - t).as_nanos(), 500_000);
        assert_eq!(t2.since(t).as_nanos(), 500_000);
        // Saturating subtraction.
        assert_eq!((t - t2).as_nanos(), 0);
    }

    #[test]
    fn conversions_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert_eq!(d.as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_millis_f64(2.5).as_nanos(), 2_500_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100).mul_f64(2.5);
        assert_eq!(d.as_millis_f64(), 250.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis_f64(), 10.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        SimDuration::from_secs_f64(-1.0);
    }
}
