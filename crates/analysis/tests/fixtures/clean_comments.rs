// Negative lint fixture: every banned word below appears only in comments,
// strings or identifiers with different boundaries — none may fire.
//
// HashMap HashSet Instant SystemTime thread_rng unsafe /* .sum::<f32>() */

/// Instantiates the report. A HashMap would be wrong here, says this doc.
pub fn describe() -> String {
    let banned = "HashMap Instant thread_rng unsafe .sum::<f32>()";
    let raw = r#"SystemTime::now() and OsRng"#;
    format!("{banned} {raw}")
}

pub struct MyHashMapLike {
    pub instant_count: u64,
}
