use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::topology::{Fabric, NodeId};
use shmcaffe_simnet::SimContext;

/// Message tag, matching MPI's integer tags.
pub type Tag = u32;

/// Message payloads carried by this substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiData {
    /// A vector of parameters or gradients.
    F32s(Vec<f32>),
    /// Small control values (SHM keys, iteration counts, handshakes).
    U64s(Vec<u64>),
}

impl MpiData {
    /// Physical wire size in bytes.
    pub fn byte_len(&self) -> u64 {
        match self {
            MpiData::F32s(v) => (v.len() * 4) as u64,
            MpiData::U64s(v) => (v.len() * 8) as u64,
        }
    }

    /// Extracts an f32 vector.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not `F32s`.
    pub fn into_f32s(self) -> Vec<f32> {
        match self {
            MpiData::F32s(v) => v,
            other => panic!("expected F32s payload, got {other:?}"),
        }
    }

    /// Extracts a u64 vector.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not `U64s`.
    pub fn into_u64s(self) -> Vec<u64> {
        match self {
            MpiData::U64s(v) => v,
            other => panic!("expected U64s payload, got {other:?}"),
        }
    }
}

/// Errors produced by MPI-substrate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A rank id was out of range for the world size.
    BadRank {
        /// The offending rank.
        rank: usize,
        /// World size.
        size: usize,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::BadRank { rank, size } => {
                write!(f, "rank {rank} out of range for world size {size}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    pub data: MpiData,
}

pub(crate) struct WorldInner {
    pub fabric: Fabric,
    pub node_of: Vec<NodeId>,
    pub mailboxes: Vec<SimChannel<Envelope>>,
}

/// A communicator of `size` ranks laid out over the fabric's GPU nodes
/// (`gpus_per_node` ranks per node, in order — the paper's worker layout).
#[derive(Clone)]
pub struct MpiWorld {
    pub(crate) inner: Arc<WorldInner>,
}

impl fmt::Debug for MpiWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpiWorld").field("size", &self.size()).finish()
    }
}

impl MpiWorld {
    /// Creates a world of `size` ranks on `fabric` with the default layout.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds the fabric's GPU slots.
    pub fn new(fabric: Fabric, size: usize) -> Self {
        assert!(size > 0, "world size must be positive");
        assert!(
            size <= fabric.spec().total_gpus(),
            "world size {size} exceeds {} GPU slots",
            fabric.spec().total_gpus()
        );
        let node_of = (0..size).map(|r| fabric.node_of_worker(r)).collect();
        Self::with_layout(fabric, node_of)
    }

    /// Creates a world with an explicit rank→node mapping.
    ///
    /// # Panics
    ///
    /// Panics if the layout is empty.
    pub fn with_layout(fabric: Fabric, node_of: Vec<NodeId>) -> Self {
        assert!(!node_of.is_empty(), "layout must contain at least one rank");
        let mailboxes =
            (0..node_of.len()).map(|r| SimChannel::new(&format!("mpi_mailbox_{r}"))).collect();
        MpiWorld { inner: Arc::new(WorldInner { fabric, node_of, mailboxes }) }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.node_of.len()
    }

    /// The fabric node hosting `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.inner.node_of[rank]
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// Creates the per-rank handle. Each rank's simulated process should
    /// own exactly one `Comm`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn comm(&self, rank: usize) -> Comm {
        assert!(rank < self.size(), "rank {rank} out of range");
        Comm { world: Arc::clone(&self.inner), rank, stash: VecDeque::new() }
    }
}

/// A per-rank communicator handle (the `MPI_COMM_WORLD` view of one rank).
pub struct Comm {
    pub(crate) world: Arc<WorldInner>,
    pub(crate) rank: usize,
    /// Messages received but not yet matched by a selective `recv`.
    stash: VecDeque<Envelope>,
}

impl fmt::Debug for Comm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.world.node_of.len())
            .finish()
    }
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.node_of.len()
    }

    /// The fabric node this rank runs on.
    pub fn node(&self) -> NodeId {
        self.world.node_of[self.rank]
    }

    /// Sends `data` to `dst` with `tag`, charging the physical wire size.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send(&self, ctx: &SimContext, dst: usize, tag: Tag, data: MpiData) {
        let bytes = data.byte_len();
        self.send_wire(ctx, dst, tag, data, bytes);
    }

    /// [`Comm::send`] with an explicit modelled wire size.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send_wire(
        &self,
        ctx: &SimContext,
        dst: usize,
        tag: Tag,
        data: MpiData,
        wire_bytes: u64,
    ) {
        let dst_node = self.world.node_of[dst];
        let src_node = self.node();
        if wire_bytes > 0 && dst != self.rank {
            self.world.fabric.net_transfer(ctx, src_node, dst_node, wire_bytes);
        }
        self.world.mailboxes[dst].send(ctx, Envelope { src: self.rank, tag, data });
    }

    /// Receives the oldest message matching `src` (or any source when
    /// `None`) and `tag`, blocking in virtual time.
    pub fn recv(&mut self, ctx: &SimContext, src: Option<usize>, tag: Tag) -> (usize, MpiData) {
        // Check the stash first (messages popped while matching others).
        if let Some(pos) =
            self.stash.iter().position(|e| e.tag == tag && src.is_none_or(|s| s == e.src))
        {
            let env = self.stash.remove(pos).expect("position is valid");
            return (env.src, env.data);
        }
        loop {
            let env = self.world.mailboxes[self.rank].recv(ctx);
            if env.tag == tag && src.is_none_or(|s| s == env.src) {
                return (env.src, env.data);
            }
            self.stash.push_back(env);
        }
    }

    /// Receives a matching message's f32 payload.
    pub fn recv_f32s(
        &mut self,
        ctx: &SimContext,
        src: Option<usize>,
        tag: Tag,
    ) -> (usize, Vec<f32>) {
        let (s, data) = self.recv(ctx, src, tag);
        (s, data.into_f32s())
    }

    /// Receives the oldest message whose tag is in `tags`, from any source
    /// (a multi-tag `MPI_Recv` with `MPI_ANY_TAG` restricted to a set —
    /// what an event-loop server needs).
    ///
    /// # Panics
    ///
    /// Panics if `tags` is empty.
    pub fn recv_any(&mut self, ctx: &SimContext, tags: &[Tag]) -> (usize, Tag, MpiData) {
        assert!(!tags.is_empty(), "recv_any needs at least one tag");
        if let Some(pos) = self.stash.iter().position(|e| tags.contains(&e.tag)) {
            let env = self.stash.remove(pos).expect("position is valid");
            return (env.src, env.tag, env.data);
        }
        loop {
            let env = self.world.mailboxes[self.rank].recv(ctx);
            if tags.contains(&env.tag) {
                return (env.src, env.tag, env.data);
            }
            self.stash.push_back(env);
        }
    }

    /// Non-blocking receive of a message with `tag` that has already
    /// arrived (stashed or queued with a send time ≤ now).
    pub fn try_recv_tag(&mut self, ctx: &SimContext, tag: Tag) -> Option<(usize, MpiData)> {
        if let Some(pos) = self.stash.iter().position(|e| e.tag == tag) {
            let env = self.stash.remove(pos).expect("position is valid");
            return Some((env.src, env.data));
        }
        while let Some(env) = self.world.mailboxes[self.rank].try_recv(ctx) {
            if env.tag == tag {
                return Some((env.src, env.data));
            }
            self.stash.push_back(env);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_simnet::topology::ClusterSpec;
    use shmcaffe_simnet::{SimDuration, Simulation};

    fn world(ranks: usize, nodes: usize) -> MpiWorld {
        MpiWorld::new(Fabric::new(ClusterSpec::paper_testbed(nodes)), ranks)
    }

    #[test]
    fn layout_follows_gpus_per_node() {
        let w = world(8, 2);
        assert_eq!(w.node_of(0), NodeId(0));
        assert_eq!(w.node_of(3), NodeId(0));
        assert_eq!(w.node_of(4), NodeId(1));
        assert_eq!(w.size(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversubscription_rejected() {
        world(9, 2);
    }

    #[test]
    fn send_recv_roundtrip() {
        let w = world(2, 1);
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c1 = w.comm(1);
        sim.spawn("r0", move |ctx| {
            c0.send(&ctx, 1, 7, MpiData::F32s(vec![1.0, 2.0]));
        });
        sim.spawn("r1", move |ctx| {
            let (src, data) = c1.recv_f32s(&ctx, Some(0), 7);
            assert_eq!(src, 0);
            assert_eq!(data, vec![1.0, 2.0]);
        });
        sim.run();
    }

    #[test]
    fn selective_recv_matches_by_tag() {
        let w = world(2, 1);
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c1 = w.comm(1);
        sim.spawn("r0", move |ctx| {
            c0.send(&ctx, 1, 1, MpiData::U64s(vec![11]));
            c0.send(&ctx, 1, 2, MpiData::U64s(vec![22]));
            c0.send(&ctx, 1, 1, MpiData::U64s(vec![12]));
        });
        sim.spawn("r1", move |ctx| {
            // Ask for tag 2 first: tag-1 messages must be stashed, not lost.
            let (_, d2) = c1.recv(&ctx, None, 2);
            assert_eq!(d2, MpiData::U64s(vec![22]));
            let (_, d1a) = c1.recv(&ctx, Some(0), 1);
            let (_, d1b) = c1.recv(&ctx, Some(0), 1);
            assert_eq!(d1a, MpiData::U64s(vec![11]), "tag-1 order preserved");
            assert_eq!(d1b, MpiData::U64s(vec![12]));
        });
        sim.run();
    }

    #[test]
    fn inter_node_send_charges_wire_time() {
        let w = world(8, 2);
        let fabric = w.fabric().clone();
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c4 = w.comm(4); // on node 1
        sim.spawn("r0", move |ctx| {
            // 70 MB across the 7 GB/s HCA: 10 ms.
            c0.send_wire(&ctx, 4, 0, MpiData::F32s(vec![0.0; 4]), 70_000_000);
            assert!((ctx.now().as_millis_f64() - 10.0).abs() < 0.1);
        });
        sim.spawn("r4", move |ctx| {
            let (_, _d) = c4.recv_f32s(&ctx, Some(0), 0);
            assert!(ctx.now().as_millis_f64() >= 10.0);
        });
        sim.run();
        assert_eq!(fabric.hca_tx(NodeId(0)).total_bytes(), 70_000_000);
    }

    #[test]
    fn same_node_send_uses_pcie() {
        let w = world(4, 1);
        let fabric = w.fabric().clone();
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c1 = w.comm(1);
        sim.spawn("r0", move |ctx| {
            c0.send_wire(&ctx, 1, 0, MpiData::F32s(vec![0.0]), 12_000_000);
        });
        sim.spawn("r1", move |ctx| {
            let _ = c1.recv_f32s(&ctx, None, 0);
        });
        sim.run();
        assert_eq!(fabric.pcie(NodeId(0)).total_bytes(), 12_000_000);
        assert_eq!(fabric.hca_tx(NodeId(0)).total_bytes(), 0);
    }

    #[test]
    fn self_send_is_free_and_delivered() {
        let w = world(1, 1);
        let mut sim = Simulation::new();
        let mut c0 = w.comm(0);
        sim.spawn("r0", move |ctx| {
            c0.send(&ctx, 0, 3, MpiData::U64s(vec![9]));
            let start = ctx.now();
            let (_, d) = c0.recv(&ctx, Some(0), 3);
            assert_eq!(d, MpiData::U64s(vec![9]));
            assert_eq!(ctx.now(), start);
        });
        sim.run();
    }

    #[test]
    fn recv_any_matches_first_of_tag_set() {
        let w = world(2, 1);
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c1 = w.comm(1);
        sim.spawn("r0", move |ctx| {
            c0.send(&ctx, 1, 5, MpiData::U64s(vec![5]));
            c0.send(&ctx, 1, 9, MpiData::U64s(vec![9]));
            c0.send(&ctx, 1, 7, MpiData::U64s(vec![7]));
        });
        sim.spawn("r1", move |ctx| {
            // Tag 5 is not in the set: it must be stashed, not consumed.
            let (src, tag, data) = c1.recv_any(&ctx, &[7, 9]);
            assert_eq!((src, tag), (0, 9));
            assert_eq!(data, MpiData::U64s(vec![9]));
            let (_, tag, _) = c1.recv_any(&ctx, &[7, 9]);
            assert_eq!(tag, 7);
            // The stashed tag-5 message is still retrievable.
            let (_, d) = c1.recv(&ctx, Some(0), 5);
            assert_eq!(d, MpiData::U64s(vec![5]));
        });
        sim.run();
    }

    #[test]
    fn try_recv_tag_is_nonblocking() {
        let w = world(2, 1);
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c1 = w.comm(1);
        sim.spawn("r0", move |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            c0.send(&ctx, 1, 3, MpiData::U64s(vec![3]));
        });
        sim.spawn("r1", move |ctx| {
            // Nothing has arrived yet.
            assert!(c1.try_recv_tag(&ctx, 3).is_none());
            ctx.sleep(SimDuration::from_millis(10));
            let (src, d) = c1.try_recv_tag(&ctx, 3).expect("message arrived");
            assert_eq!(src, 0);
            assert_eq!(d, MpiData::U64s(vec![3]));
            assert!(c1.try_recv_tag(&ctx, 3).is_none());
        });
        sim.run();
    }

    #[test]
    fn message_order_from_one_sender_is_preserved() {
        let w = world(2, 1);
        let mut sim = Simulation::new();
        let c0 = w.comm(0);
        let mut c1 = w.comm(1);
        sim.spawn("r0", move |ctx| {
            for i in 0..10u64 {
                c0.send(&ctx, 1, 0, MpiData::U64s(vec![i]));
                ctx.sleep(SimDuration::from_micros(1));
            }
        });
        sim.spawn("r1", move |ctx| {
            for i in 0..10u64 {
                let (_, d) = c1.recv(&ctx, Some(0), 0);
                assert_eq!(d, MpiData::U64s(vec![i]));
            }
        });
        sim.run();
    }
}
