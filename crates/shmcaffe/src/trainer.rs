//! The worker-side training abstraction.
//!
//! Every distributed algorithm in this crate is written against
//! [`Trainer`], which splits an iteration into Caffe's two halves —
//! gradient computation and weight update — and exposes the flattened
//! parameter/gradient vectors that are exchanged over the fabric.
//!
//! Two implementations exist:
//!
//! * [`RealTrainer`] — actual CPU training of a proxy network on a shard of
//!   a synthetic dataset (convergence experiments, Figs 8/11),
//! * [`ModeledTrainer`] — a calibrated compute-time model with a decimated
//!   parameter vector (timing experiments, Figs 9/10/12–15); the SEASGD
//!   algebra still runs for real over the decimated vector.

use std::sync::Arc;

use shmcaffe_dnn::data::{Dataset, EpochSampler};
use shmcaffe_dnn::metrics::evaluate;
use shmcaffe_dnn::{Net, Solver, SolverConfig};
use shmcaffe_models::WorkloadModel;
use shmcaffe_simnet::jitter::{JitterModel, JitterSampler};
use shmcaffe_simnet::{SimContext, SimDuration};

/// A point-in-time evaluation of the model (convergence tracking).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSample {
    /// Mean cross-entropy loss on the held-out set.
    pub loss: f32,
    /// Top-1 accuracy.
    pub top1: f32,
    /// Top-k accuracy (the paper reports top-5).
    pub topk: f32,
}

/// One worker's local training engine.
pub trait Trainer: Send {
    /// Flattened parameter vector length (physical elements).
    fn param_len(&self) -> usize;

    /// Logical wire size of a full parameter transfer, in bytes.
    fn wire_bytes(&self) -> u64;

    /// Computes gradients on the next local minibatch, charging the
    /// modelled computation time to virtual time. Returns the loss.
    fn compute_gradients(&mut self, ctx: &SimContext) -> f32;

    /// Applies the currently held gradients to the local weights
    /// (paper eq. 2: `W'_x = W_x − η G_x`).
    fn apply_update(&mut self, ctx: &SimContext);

    /// Copies the flattened local weights into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != param_len()`.
    fn read_weights(&mut self, out: &mut [f32]);

    /// Overwrites the flattened local weights from `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != param_len()`.
    fn write_weights(&mut self, w: &[f32]);

    /// Copies the flattened gradients into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != param_len()`.
    fn read_grads(&mut self, out: &mut [f32]);

    /// Overwrites the flattened gradients from `g` (aggregated gradients
    /// handed back by a collective or parameter server).
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != param_len()`.
    fn write_grads(&mut self, g: &[f32]);

    /// Evaluates the current weights on a held-out set, if this trainer
    /// supports evaluation. Instrumentation only: charges no virtual time.
    fn evaluate(&mut self) -> Option<EvalSample>;
}

/// Builds one [`Trainer`] per worker. Shared across worker processes.
pub trait TrainerFactory: Send + Sync + 'static {
    /// The trainer type produced.
    type Output: Trainer + 'static;

    /// Creates the trainer for `rank` of `n_workers`.
    fn make(&self, rank: usize, n_workers: usize) -> Self::Output;
}

// ---------------------------------------------------------------------------
// Real training
// ---------------------------------------------------------------------------

type NetBuilder = dyn Fn(u64) -> Net + Send + Sync;

/// Factory for [`RealTrainer`]s: real nets over disjoint dataset shards.
///
/// All replicas are built from the same initialisation seed, reproducing
/// the master's parameter broadcast at startup (paper §III-A).
#[derive(Clone)]
pub struct RealTrainerFactory {
    dataset: Arc<dyn Dataset>,
    eval_dataset: Option<Arc<dyn Dataset>>,
    net_builder: Arc<NetBuilder>,
    solver: SolverConfig,
    batch: usize,
    init_seed: u64,
    data_seed: u64,
    comp_time: SimDuration,
    jitter: JitterModel,
    eval_topk: usize,
}

impl std::fmt::Debug for RealTrainerFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTrainerFactory")
            .field("batch", &self.batch)
            .field("init_seed", &self.init_seed)
            .finish()
    }
}

/// Builder for [`RealTrainerFactory`].
pub struct RealTrainerFactoryBuilder {
    dataset: Option<Arc<dyn Dataset>>,
    eval_dataset: Option<Arc<dyn Dataset>>,
    net_builder: Option<Arc<NetBuilder>>,
    solver: SolverConfig,
    batch: usize,
    init_seed: u64,
    data_seed: u64,
    comp_time: SimDuration,
    jitter: JitterModel,
    eval_topk: usize,
}

impl RealTrainerFactory {
    /// Starts building a factory.
    pub fn builder() -> RealTrainerFactoryBuilder {
        RealTrainerFactoryBuilder {
            dataset: None,
            eval_dataset: None,
            net_builder: None,
            solver: SolverConfig::default(),
            batch: 32,
            init_seed: 1,
            data_seed: 99,
            comp_time: SimDuration::from_millis(10),
            jitter: JitterModel::NONE,
            eval_topk: 5,
        }
    }
}

impl RealTrainerFactoryBuilder {
    /// The training dataset, sharded across workers without duplication.
    pub fn dataset(mut self, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// A held-out evaluation dataset (defaults to the training set).
    pub fn eval_dataset(mut self, dataset: Arc<dyn Dataset>) -> Self {
        self.eval_dataset = Some(dataset);
        self
    }

    /// The network constructor, called with the shared initialisation seed.
    pub fn net_builder<F>(mut self, f: F) -> Self
    where
        F: Fn(u64) -> Net + Send + Sync + 'static,
    {
        self.net_builder = Some(Arc::new(f));
        self
    }

    /// Caffe solver hyper-parameters.
    pub fn solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Per-worker minibatch size (the paper uses 60 per GPU).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Weight-initialisation seed shared by all replicas.
    pub fn init_seed(mut self, seed: u64) -> Self {
        self.init_seed = seed;
        self
    }

    /// Data-shuffling base seed (each worker derives its own stream).
    pub fn data_seed(mut self, seed: u64) -> Self {
        self.data_seed = seed;
        self
    }

    /// Modelled computation time per iteration and its jitter.
    pub fn comp_model(mut self, comp_time: SimDuration, jitter: JitterModel) -> Self {
        self.comp_time = comp_time;
        self.jitter = jitter;
        self
    }

    /// `k` for the reported top-k accuracy (default 5, as in the paper).
    pub fn eval_topk(mut self, k: usize) -> Self {
        self.eval_topk = k;
        self
    }

    /// Finalises the factory.
    ///
    /// # Panics
    ///
    /// Panics if the dataset or net builder were not provided, or if
    /// `batch == 0`.
    pub fn build(self) -> RealTrainerFactory {
        assert!(self.batch > 0, "batch must be positive");
        RealTrainerFactory {
            dataset: self.dataset.expect("dataset is required"),
            eval_dataset: self.eval_dataset,
            net_builder: self.net_builder.expect("net_builder is required"),
            solver: self.solver,
            batch: self.batch,
            init_seed: self.init_seed,
            data_seed: self.data_seed,
            comp_time: self.comp_time,
            jitter: self.jitter,
            eval_topk: self.eval_topk,
        }
    }
}

impl TrainerFactory for RealTrainerFactory {
    type Output = RealTrainer;

    fn make(&self, rank: usize, n_workers: usize) -> RealTrainer {
        let net = (self.net_builder)(self.init_seed);
        let mut solver = Solver::new(net, self.solver);
        let param_len = solver.net_mut().param_len();
        let sampler = EpochSampler::new(
            self.dataset.len(),
            rank,
            n_workers,
            self.batch,
            self.data_seed ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        RealTrainer {
            solver,
            dataset: Arc::clone(&self.dataset),
            eval_dataset: self.eval_dataset.clone(),
            sampler,
            param_len,
            jitter: JitterSampler::new(self.jitter, self.data_seed ^ 0xA5A5 ^ rank as u64),
            comp_time: self.comp_time,
            eval_topk: self.eval_topk,
            scratch: Vec::new(),
        }
    }
}

/// Real CPU training over one worker's data shard.
pub struct RealTrainer {
    solver: Solver,
    dataset: Arc<dyn Dataset>,
    eval_dataset: Option<Arc<dyn Dataset>>,
    sampler: EpochSampler,
    param_len: usize,
    jitter: JitterSampler,
    comp_time: SimDuration,
    eval_topk: usize,
    scratch: Vec<f32>,
}

impl std::fmt::Debug for RealTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTrainer").field("param_len", &self.param_len).finish()
    }
}

impl RealTrainer {
    /// Completed local epochs over this worker's shard.
    pub fn epoch(&self) -> usize {
        self.sampler.epoch()
    }

    /// Direct access to the wrapped solver (for tests and ablations).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }
}

impl Trainer for RealTrainer {
    fn param_len(&self) -> usize {
        self.param_len
    }

    fn wire_bytes(&self) -> u64 {
        (self.param_len * 4) as u64
    }

    fn compute_gradients(&mut self, ctx: &SimContext) -> f32 {
        let indices = self.sampler.next_batch();
        let (x, labels) = self.dataset.minibatch(&indices).expect("sampler indices are in range");
        let loss =
            self.solver.compute_gradients(&x, &labels).expect("dataset shapes match the network");
        let dur = self.jitter.sample(self.comp_time);
        ctx.sleep(dur);
        let _ = &mut self.scratch;
        loss
    }

    fn apply_update(&mut self, _ctx: &SimContext) {
        self.solver.apply_update();
    }

    fn read_weights(&mut self, out: &mut [f32]) {
        self.solver.net_mut().copy_weights_to(out).expect("caller passes param_len buffer");
    }

    fn write_weights(&mut self, w: &[f32]) {
        self.solver.net_mut().load_weights_from(w).expect("caller passes param_len buffer");
    }

    fn read_grads(&mut self, out: &mut [f32]) {
        self.solver.net_mut().copy_grads_to(out).expect("caller passes param_len buffer");
    }

    fn write_grads(&mut self, g: &[f32]) {
        self.solver.net_mut().load_grads_from(g).expect("caller passes param_len buffer");
    }

    fn evaluate(&mut self) -> Option<EvalSample> {
        let eval_set = self.eval_dataset.as_ref().unwrap_or(&self.dataset);
        let eval_set = Arc::clone(eval_set);
        let res = evaluate(self.solver.net_mut(), eval_set.as_ref(), 64, self.eval_topk).ok()?;
        Some(EvalSample { loss: res.loss, top1: res.top1, topk: res.topk })
    }
}

// ---------------------------------------------------------------------------
// Modelled training
// ---------------------------------------------------------------------------

/// Factory for [`ModeledTrainer`]s from a [`WorkloadModel`].
#[derive(Debug, Clone)]
pub struct ModeledTrainerFactory {
    workload: WorkloadModel,
    jitter: JitterModel,
    seed: u64,
}

impl ModeledTrainerFactory {
    /// Creates a factory for the given workload and jitter model.
    pub fn new(workload: WorkloadModel, jitter: JitterModel, seed: u64) -> Self {
        ModeledTrainerFactory { workload, jitter, seed }
    }
}

impl TrainerFactory for ModeledTrainerFactory {
    type Output = ModeledTrainer;

    fn make(&self, rank: usize, _n_workers: usize) -> ModeledTrainer {
        ModeledTrainer {
            weights: vec![0.0; self.workload.param_elems],
            grads: vec![0.0; self.workload.param_elems],
            wire_bytes: self.workload.wire_bytes,
            comp_time: self.workload.comp_time,
            jitter: JitterSampler::new(self.jitter, self.seed ^ (rank as u64) << 17),
            iter: 0,
            rank,
        }
    }
}

/// A calibrated compute-time model carrying a decimated parameter vector.
///
/// The synthetic "gradient" is a deterministic function of `(rank, iter)`
/// so runs are reproducible; the loss decays smoothly so reports look sane.
#[derive(Debug)]
pub struct ModeledTrainer {
    weights: Vec<f32>,
    grads: Vec<f32>,
    wire_bytes: u64,
    comp_time: SimDuration,
    jitter: JitterSampler,
    iter: u64,
    rank: usize,
}

impl Trainer for ModeledTrainer {
    fn param_len(&self) -> usize {
        self.weights.len()
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    fn compute_gradients(&mut self, ctx: &SimContext) -> f32 {
        // Deterministic pseudo-gradient keyed on (rank, iter, index).
        let mut state = (self.rank as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(self.iter.wrapping_mul(0xD1B54A32D192ED03));
        for g in self.grads.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *g = (((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.01;
        }
        self.iter += 1;
        let dur = self.jitter.sample(self.comp_time);
        ctx.sleep(dur);
        // A smooth synthetic loss curve.
        6.9 / (1.0 + 0.002 * self.iter as f32) + 0.1
    }

    fn apply_update(&mut self, _ctx: &SimContext) {
        for (w, g) in self.weights.iter_mut().zip(self.grads.iter()) {
            *w -= 0.1 * g;
        }
    }

    fn read_weights(&mut self, out: &mut [f32]) {
        out.copy_from_slice(&self.weights);
    }

    fn write_weights(&mut self, w: &[f32]) {
        self.weights.copy_from_slice(w);
    }

    fn read_grads(&mut self, out: &mut [f32]) {
        out.copy_from_slice(&self.grads);
    }

    fn write_grads(&mut self, g: &[f32]) {
        self.grads.copy_from_slice(g);
    }

    fn evaluate(&mut self) -> Option<EvalSample> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_dnn::data::SyntheticBlobs;
    use shmcaffe_models::proxies;
    use shmcaffe_models::CnnModel;
    use shmcaffe_simnet::Simulation;

    fn real_factory() -> RealTrainerFactory {
        RealTrainerFactory::builder()
            .dataset(Arc::new(SyntheticBlobs::new(3, 4, 120, 0.3, 5)))
            .net_builder(|seed| proxies::mlp(4, 8, 3, seed))
            .batch(10)
            .build()
    }

    #[test]
    fn replicas_start_identical_but_shard_differently() {
        let f = real_factory();
        let mut a = f.make(0, 4);
        let mut b = f.make(3, 4);
        let n = a.param_len();
        let mut wa = vec![0.0; n];
        let mut wb = vec![0.0; n];
        a.read_weights(&mut wa);
        b.read_weights(&mut wb);
        assert_eq!(wa, wb, "replicas must share initial weights");
    }

    #[test]
    fn real_trainer_charges_compute_time_and_learns() {
        let f = real_factory();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let mut t = f.make(0, 1);
            let first = t.compute_gradients(&ctx);
            t.apply_update(&ctx);
            for _ in 0..200 {
                t.compute_gradients(&ctx);
                t.apply_update(&ctx);
            }
            let last = t.compute_gradients(&ctx);
            assert!(last < first, "loss should fall: {first} -> {last}");
            // 202 iterations x 10 ms.
            assert!((ctx.now().as_secs_f64() - 2.02).abs() < 0.01);
            let eval = t.evaluate().expect("real trainer evaluates");
            assert!(eval.top1 > 0.5);
        });
        sim.run();
    }

    #[test]
    fn weight_and_grad_vectors_roundtrip() {
        let f = real_factory();
        let mut t = f.make(0, 2);
        let n = t.param_len();
        let w: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
        t.write_weights(&w);
        let mut back = vec![0.0; n];
        t.read_weights(&mut back);
        assert_eq!(w, back);
        let g: Vec<f32> = (0..n).map(|i| i as f32).collect();
        t.write_grads(&g);
        t.read_grads(&mut back);
        assert_eq!(g, back);
    }

    #[test]
    fn modeled_trainer_matches_workload_calibration() {
        let wl = WorkloadModel::from_cnn(CnnModel::InceptionV1);
        let f = ModeledTrainerFactory::new(wl, JitterModel::NONE, 3);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let mut t = f.make(0, 16);
            assert_eq!(t.wire_bytes(), 53_500_000);
            assert_eq!(t.param_len(), WorkloadModel::DEFAULT_PARAM_ELEMS);
            t.compute_gradients(&ctx);
            assert_eq!(ctx.now().as_millis_f64(), 257.0);
            assert!(t.evaluate().is_none());
        });
        sim.run();
    }

    #[test]
    fn modeled_gradients_are_deterministic_per_rank_iter() {
        let wl = WorkloadModel::custom("t", 1000, SimDuration::from_millis(1));
        let f = ModeledTrainerFactory::new(wl, JitterModel::NONE, 3);
        let grads_of = |rank: usize| {
            let f = f.clone();
            let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = std::sync::Arc::clone(&out);
            let mut sim = Simulation::new();
            sim.spawn("w", move |ctx| {
                let mut t = f.make(rank, 2);
                t.compute_gradients(&ctx);
                let mut g = vec![0.0; t.param_len()];
                t.read_grads(&mut g);
                out2.lock().extend(g);
            });
            sim.run();
            let result = out.lock().clone();
            result
        };
        assert_eq!(grads_of(0), grads_of(0));
        assert_ne!(grads_of(0), grads_of(1));
    }

    #[test]
    fn modeled_update_moves_weights() {
        let wl = WorkloadModel::custom("t", 1000, SimDuration::from_millis(1));
        let f = ModeledTrainerFactory::new(wl, JitterModel::NONE, 9);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let mut t = f.make(0, 1);
            t.compute_gradients(&ctx);
            t.apply_update(&ctx);
            let mut w = vec![0.0; t.param_len()];
            t.read_weights(&mut w);
            assert!(w.iter().any(|&v| v != 0.0));
        });
        sim.run();
    }
}
