//! Single-precision general matrix multiply.
//!
//! `C = alpha * op(A) * op(B) + beta * C`, row-major, with optional
//! transposition of either operand — the same contract as `cblas_sgemm`,
//! which Caffe calls for inner-product layers and im2col-based convolution.
//!
//! The implementation uses a cache-blocked kernel with a row-major
//! micro-panel; it is deliberately dependency-free and `forbid(unsafe)`.

/// Whether an operand is transposed, matching BLAS `CblasTrans`/`NoTrans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

const BLOCK: usize = 64;

/// Computes `C = alpha * op(A) * op(B) + beta * C` for row-major matrices.
///
/// * `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
/// * `A` is stored `m x k` when `trans_a == No`, otherwise `k x m`.
/// * `B` is stored `k x n` when `trans_b == No`, otherwise `n x k`.
///
/// # Panics
///
/// Panics if any slice is shorter than the implied matrix size.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::gemm::{gemm, Transpose};
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [1.0, 0.0, 0.0, 1.0]; // identity
/// let mut c = [0.0; 4];
/// gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: Transpose,
    trans_b: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);

    // Scale C by beta first.
    if beta == 0.0 {
        c[..m * n].iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c[..m * n].iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (trans_a, trans_b) {
        (Transpose::No, Transpose::No) => gemm_nn(m, n, k, alpha, a, b, c),
        (Transpose::Yes, Transpose::No) => gemm_tn(m, n, k, alpha, a, b, c),
        (Transpose::No, Transpose::Yes) => gemm_nt(m, n, k, alpha, a, b, c),
        (Transpose::Yes, Transpose::Yes) => gemm_tt(m, n, k, alpha, a, b, c),
    }
}

/// `C += alpha * A * B`, A: m x k row-major, B: k x n row-major.
fn gemm_nn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i0 in (0..m).step_by(BLOCK) {
        let i_max = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p_max = (p0 + BLOCK).min(k);
            for i in i0..i_max {
                let c_row = &mut c[i * n..(i + 1) * n];
                for p in p0..p_max {
                    let av = alpha * a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

/// `C += alpha * A^T * B`, A stored k x m, B stored k x n.
fn gemm_tn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let scaled = alpha * av;
            if scaled == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += scaled * bv;
            }
        }
    }
}

/// `C += alpha * A * B^T`, A stored m x k, B stored n x k.
fn gemm_nt(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// `C += alpha * A^T * B^T`, A stored k x m, B stored n x k.
fn gemm_tt(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[j * k + p];
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// Matrix-vector product `y = alpha * op(A) * x + beta * y` (row-major).
///
/// `op(A)` is `m x n`; `x` has length `n`, `y` has length `m`.
///
/// # Panics
///
/// Panics if any slice is shorter than the implied size.
#[allow(clippy::too_many_arguments)] // BLAS-compatible signature
pub fn gemv(
    trans: Transpose,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    gemm(trans, Transpose::No, m, 1, n, alpha, a, x, beta, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple-loop reference used to validate the blocked kernels.
    fn reference(
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let get_a = |i: usize, p: usize| match trans_a {
            Transpose::No => a[i * k + p],
            Transpose::Yes => a[p * m + i],
        };
        let get_b = |p: usize, j: usize| match trans_b {
            Transpose::No => b[p * n + j],
            Transpose::Yes => b[j * k + p],
        };
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += get_a(i, p) * get_b(p, j);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn deterministic_matrix(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG keeps tests dependency-free and reproducible.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as f32 / 65536.0) - 0.5
            })
            .collect()
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let (m, n, k) = (7, 5, 9);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let a = deterministic_matrix(m * k, 1);
                let b = deterministic_matrix(k * n, 2);
                let expected = reference(ta, tb, m, n, k, &a, &b);
                let mut c = vec![0.0; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                for (got, want) in c.iter().zip(expected.iter()) {
                    assert!((got - want).abs() < 1e-4, "{got} vs {want} ({ta:?},{tb:?})");
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_matches_reference_on_large_sizes() {
        let (m, n, k) = (130, 70, 90);
        let a = deterministic_matrix(m * k, 3);
        let b = deterministic_matrix(k * n, 4);
        let expected = reference(Transpose::No, Transpose::No, m, n, k, &a, &b);
        let mut c = vec![0.0; m * n];
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        for (got, want) in c.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        gemm(Transpose::No, Transpose::No, 2, 2, 2, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, [9.0, 11.0, 13.0, 15.0]);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = [1.0];
        let b = [1.0];
        let mut c = [f32::NAN];
        gemm(Transpose::No, Transpose::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, [1.0]);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c = [5.0];
        gemm(Transpose::No, Transpose::No, 1, 1, 0, 1.0, &[], &[], 1.0, &mut c);
        assert_eq!(c, [5.0]);
    }

    #[test]
    fn gemv_matches_manual() {
        // A = [[1,2],[3,4],[5,6]] (3x2), x = [1, -1]
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv(Transpose::No, 3, 2, 1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
        // A^T * v for v of length 3.
        let v = [1.0, 1.0, 1.0];
        let mut z = [0.0; 2];
        gemv(Transpose::Yes, 2, 3, 1.0, &a, &v, 0.0, &mut z);
        assert_eq!(z, [9.0, 12.0]);
    }
}
