//! Single-precision general matrix multiply.
//!
//! `C = alpha * op(A) * op(B) + beta * C`, row-major, with optional
//! transposition of either operand — the same contract as `cblas_sgemm`,
//! which Caffe calls for inner-product layers and im2col-based convolution.
//!
//! The implementation is a BLIS-style packed kernel: operands are copied
//! into contiguous zero-padded panels (`MR`-row panels of `op(A)`, `NR`-
//! column panels of `op(B)`), and a register-blocked `MR x NR` micro-kernel
//! accumulates along `k`. Packing makes all four transpose combinations hit
//! the same inner loop with unit-stride reads, so transposed layers run as
//! fast as plain ones.
//!
//! `C` is distributed over the crate worker pool ([`crate::parallel`]) as a
//! fixed two-axis tile grid: `MC`-row by `NC`-column tiles whose boundaries
//! are derived only from the matrix shape — never from the thread count —
//! and each task writes a disjoint tile of `C` (through
//! [`parallel::SliceParts`], since column tiles are strided), so the result
//! is **bit-identical** at any `SHMCAFFE_THREADS` setting. The column axis
//! matters for the wide, short matrices convolution produces (`C_out x
//! H_out*W_out`), where row panels alone cannot feed more than a couple of
//! threads.
//!
//! Packed `op(A)`/`op(B)` panels live in the per-thread
//! [`crate::workspace`] arena, so steady-state calls allocate nothing. The
//! packing routines are generic over an element accessor
//! ([`pack_rows_with`]/[`pack_cols_with`]); the fused convolution in
//! [`crate::conv`] reuses them with an accessor that reads *through the
//! conv geometry*, which is what fuses im2col into the packing step.

use crate::parallel::{self, SliceParts, Task};
use crate::workspace::{self, Tag};

/// Whether an operand is transposed, matching BLAS `CblasTrans`/`NoTrans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Rows per micro-tile (accumulator rows held in registers).
pub(crate) const MR: usize = 4;
/// Columns per micro-tile.
pub(crate) const NR: usize = 8;
/// Rows of `op(A)` per cache block — also the row-axis task granularity.
pub(crate) const MC: usize = 64;
/// Depth of one packed `k` block.
pub(crate) const KC: usize = 256;
/// Columns of `op(B)` per task tile (a multiple of `NR`). Together with
/// `MC` this defines the fixed two-axis grid parallel work is fanned over.
pub(crate) const NC: usize = 512;

/// Computes `C = alpha * op(A) * op(B) + beta * C` for row-major matrices.
///
/// * `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
/// * `A` is stored `m x k` when `trans_a == No`, otherwise `k x m`.
/// * `B` is stored `k x n` when `trans_b == No`, otherwise `n x k`.
///
/// # Panics
///
/// Panics if any slice is shorter than the implied matrix size.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::gemm::{gemm, Transpose};
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [1.0, 0.0, 0.0, 1.0]; // identity
/// let mut c = [0.0; 4];
/// gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: Transpose,
    trans_b: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);

    // When no product contributes, fall back to the pure beta update. In
    // the common path the beta scaling is fused into the first-k-block
    // write-back below, so `C` is traversed exactly once.
    if alpha == 0.0 || k == 0 {
        scale_c(m, n, beta, c);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }

    // Pack op(A) and op(B) for one k-block at a time into the per-thread
    // workspace arena (shared read-only across tile tasks), then fan the
    // fixed MC x NC tile grid of C out over the worker pool. Packing is an
    // exact element copy, so where panel boundaries fall has no effect on
    // the computed bits — only the KC block grid and the write-back order
    // do, and both are fixed.
    let kc0 = KC.min(k);
    let n_panels = n.div_ceil(NR);
    let m_panels = m.div_ceil(MR);
    workspace::with_f32(Tag::GemmPackB, kc0 * n_panels * NR, |packed_b| {
        workspace::with_f32(Tag::GemmPackA, kc0 * m_panels * MR, |packed_a| {
            let c = SliceParts::new(&mut c[..m * n]);
            for (pc, kcb) in blocks(k, KC) {
                pack_cols_with(
                    pc,
                    kcb,
                    0,
                    n,
                    |p, j| b_at(trans_b, n, k, b, p, j),
                    &mut packed_b[..kcb * n_panels * NR],
                );
                pack_rows_with(
                    0,
                    m,
                    pc,
                    kcb,
                    |i, p| a_at(trans_a, m, k, a, i, p),
                    &mut packed_a[..kcb * m_panels * MR],
                );
                let packed_a = &packed_a[..kcb * m_panels * MR];
                let packed_b = &packed_b[..kcb * n_panels * NR];
                let first_block = pc == 0;
                let tile = |ic: usize, mcb: usize, jc: usize, ncb: usize| {
                    gemm_tile(
                        ic,
                        mcb,
                        jc,
                        ncb,
                        n,
                        kcb,
                        alpha,
                        beta,
                        first_block,
                        packed_a,
                        packed_b,
                        &c,
                    );
                };
                if parallel::current_threads() <= 1 {
                    for (ic, mcb) in blocks(m, MC) {
                        for (jc, ncb) in blocks(n, NC) {
                            tile(ic, mcb, jc, ncb);
                        }
                    }
                } else {
                    let tile = &tile;
                    let tasks: Vec<Task<'_>> = blocks(m, MC)
                        .flat_map(|(ic, mcb)| {
                            blocks(n, NC).map(move |(jc, ncb)| -> Task<'_> {
                                Box::new(move || tile(ic, mcb, jc, ncb))
                            })
                        })
                        .collect();
                    parallel::run_tasks(tasks);
                }
            }
        });
    });
}

/// `C *= beta` (with the `beta == 0` NaN-overwriting semantics of BLAS).
fn scale_c(m: usize, n: usize, beta: f32, c: &mut [f32]) {
    if beta == 1.0 {
        return;
    }
    parallel::par_chunks_mut(&mut c[..m * n], parallel::elemwise_chunk(m * n), |_, chunk| {
        if beta == 0.0 {
            chunk.iter_mut().for_each(|v| *v = 0.0);
        } else {
            chunk.iter_mut().for_each(|v| *v *= beta);
        }
    });
}

/// Fixed block decomposition: `(start, len)` pairs covering `0..total`.
pub(crate) fn blocks(total: usize, step: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..total).step_by(step).map(move |s| (s, step.min(total - s)))
}

/// `op(A)` element at logical `(i, p)`.
#[inline(always)]
fn a_at(trans_a: Transpose, m: usize, k: usize, a: &[f32], i: usize, p: usize) -> f32 {
    match trans_a {
        Transpose::No => a[i * k + p],
        Transpose::Yes => a[p * m + i],
    }
}

/// `op(B)` element at logical `(p, j)`.
#[inline(always)]
fn b_at(trans_b: Transpose, n: usize, k: usize, b: &[f32], p: usize, j: usize) -> f32 {
    match trans_b {
        Transpose::No => b[p * n + j],
        Transpose::Yes => b[j * k + p],
    }
}

/// Packs logical columns `[j0, j0 + jn)` of one k-block (`[pc, pc + kcb)`)
/// into NR-column panels: panel `jp` holds, for each `p`, the `NR`
/// consecutive columns starting at `j0 + jp * NR` (zero-padded past
/// `j0 + jn`). `src(p, j)` supplies the element at absolute indices — a
/// plain matrix read for gemm, or a read through the convolution geometry
/// for the fused im2col path in [`crate::conv`].
///
/// Packing copies elements exactly (no arithmetic), so the panel layout
/// has no effect on computed bits.
pub(crate) fn pack_cols_with(
    pc: usize,
    kcb: usize,
    j0: usize,
    jn: usize,
    src: impl Fn(usize, usize) -> f32,
    out: &mut [f32],
) {
    for jp in 0..jn.div_ceil(NR) {
        let jb = j0 + jp * NR;
        let cols = NR.min(j0 + jn - jb);
        let panel = &mut out[jp * kcb * NR..(jp + 1) * kcb * NR];
        for (pp, dst) in panel.chunks_exact_mut(NR).enumerate() {
            for (jj, d) in dst.iter_mut().enumerate() {
                *d = if jj < cols { src(pc + pp, jb + jj) } else { 0.0 };
            }
        }
    }
}

/// Packs logical rows `[i0, i0 + rows_n)` of one k-block into MR-row
/// panels: panel `ip` holds, for each `p`, the `MR` consecutive rows
/// starting at `i0 + ip * MR` (zero-padded past `i0 + rows_n`).
/// `src(i, p)` supplies the element at absolute indices.
pub(crate) fn pack_rows_with(
    i0: usize,
    rows_n: usize,
    pc: usize,
    kcb: usize,
    src: impl Fn(usize, usize) -> f32,
    out: &mut [f32],
) {
    for ip in 0..rows_n.div_ceil(MR) {
        let ib = i0 + ip * MR;
        let rows = MR.min(i0 + rows_n - ib);
        let panel = &mut out[ip * kcb * MR..(ip + 1) * kcb * MR];
        for (pp, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = if ii < rows { src(ib + ii, pc + pp) } else { 0.0 };
            }
        }
    }
}

/// One `MC x NC` tile of C for one k-block: sweeps the `MR x NR`
/// micro-kernel over the tile's panel grid. Both operands are pre-packed
/// for the *whole* matrix, so tiles index panels by their global position
/// (`ic`/`jc` are multiples of `MC`/`NC`, which `MR`/`NR` divide).
///
/// Writes go through [`SliceParts`] because a column tile touches a
/// strided range of C; tiles are pairwise disjoint by construction of the
/// grid, which is what the `SliceParts` contract requires.
#[allow(clippy::too_many_arguments)]
fn gemm_tile(
    ic: usize,
    mcb: usize,
    jc: usize,
    ncb: usize,
    n: usize,
    kcb: usize,
    alpha: f32,
    beta: f32,
    first_block: bool,
    packed_a: &[f32],
    packed_b: &[f32],
    c: &SliceParts<'_, f32>,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for jp in 0..ncb.div_ceil(NR) {
        let j0 = jc + jp * NR;
        let cols = NR.min(jc + ncb - j0);
        let jpg = j0 / NR;
        let b_panel = &packed_b[jpg * kcb * NR..(jpg + 1) * kcb * NR];
        for ip in 0..mcb.div_ceil(MR) {
            let i0 = ic + ip * MR;
            let rows = MR.min(ic + mcb - i0);
            let ipg = i0 / MR;
            let a_panel = &packed_a[ipg * kcb * MR..(ipg + 1) * kcb * MR];
            micro_kernel_dispatch(kcb, a_panel, b_panel, &mut acc);
            // Write-back with the alpha/beta update fused: the first k-block
            // applies beta exactly once (beta == 0 overwrites, so stale NaNs
            // never survive), later blocks accumulate.
            for (ii, acc_row) in acc.iter_mut().enumerate().take(rows) {
                let c_row = c.part((i0 + ii) * n + j0, cols);
                if first_block {
                    if beta == 0.0 {
                        for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                            *cv = alpha * av;
                        }
                    } else {
                        for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                            *cv = alpha * av + beta * *cv;
                        }
                    }
                } else {
                    for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                        *cv += alpha * av;
                    }
                }
            }
            acc.iter_mut().for_each(|r| r.iter_mut().for_each(|v| *v = 0.0));
        }
    }
}

/// The register-blocked core: `acc += A_panel * B_panel` over `kc` steps.
///
/// `a` is `kc` groups of `MR` values (one per micro-row), `b` is `kc`
/// groups of `NR` values (one per micro-column). Fixed-size array views
/// let the compiler keep the `MR x NR` accumulator in registers and
/// vectorise the column loop.
#[inline(always)]
fn micro_kernel_body(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        let av: &[f32; MR] = av.try_into().expect("MR chunk");
        let bv: &[f32; NR] = bv.try_into().expect("NR chunk");
        for (ii, acc_row) in acc.iter_mut().enumerate() {
            let ai = av[ii];
            for (jj, accv) in acc_row.iter_mut().enumerate() {
                *accv += ai * bv[jj];
            }
        }
    }
}

/// Baseline-ISA compilation of the micro-kernel.
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel_body(kc, a, b, acc);
}

/// The same micro-kernel recompiled with AVX2 enabled, so the `NR`-wide
/// column loop becomes one 256-bit lane instead of two 128-bit ones.
///
/// This performs the *identical* sequence of IEEE multiplies and adds as
/// [`micro_kernel`] (Rust never contracts `a * b + c` into an FMA), just on
/// wider registers — results stay bit-identical to the baseline path.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn micro_kernel_avx2(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel_body(kc, a, b, acc);
}

/// Runtime micro-kernel selector, detected once per process. Compiled out
/// under Miri (scripts/miri.sh), which does not model `target_feature`
/// recompilation — the baseline kernel is bit-identical anyway.
#[cfg(all(target_arch = "x86_64", not(miri)))]
fn use_avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[inline(always)]
pub(crate) fn micro_kernel_dispatch(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if use_avx2() {
        // SAFETY: guarded by the runtime AVX2 detection above.
        #[allow(unsafe_code)]
        unsafe {
            micro_kernel_avx2(kc, a, b, acc);
        }
        return;
    }
    micro_kernel(kc, a, b, acc);
}

/// Matrix-vector product `y = alpha * op(A) * x + beta * y` (row-major).
///
/// `op(A)` is `m x n`; `x` has length `n`, `y` has length `m`.
///
/// # Panics
///
/// Panics if any slice is shorter than the implied size.
#[allow(clippy::too_many_arguments)] // BLAS-compatible signature
pub fn gemv(
    trans: Transpose,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    gemm(trans, Transpose::No, m, 1, n, alpha, a, x, beta, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple-loop reference used to validate the packed kernels.
    fn reference(
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let get_a = |i: usize, p: usize| match trans_a {
            Transpose::No => a[i * k + p],
            Transpose::Yes => a[p * m + i],
        };
        let get_b = |p: usize, j: usize| match trans_b {
            Transpose::No => b[p * n + j],
            Transpose::Yes => b[j * k + p],
        };
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += get_a(i, p) * get_b(p, j);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn deterministic_matrix(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG keeps tests dependency-free and reproducible.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as f32 / 65536.0) - 0.5
            })
            .collect()
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let (m, n, k) = (7, 5, 9);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let a = deterministic_matrix(m * k, 1);
                let b = deterministic_matrix(k * n, 2);
                let expected = reference(ta, tb, m, n, k, &a, &b);
                let mut c = vec![0.0; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                for (got, want) in c.iter().zip(expected.iter()) {
                    assert!((got - want).abs() < 1e-4, "{got} vs {want} ({ta:?},{tb:?})");
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_matches_reference_on_large_sizes() {
        let (m, n, k) = (130, 70, 90);
        let a = deterministic_matrix(m * k, 3);
        let b = deterministic_matrix(k * n, 4);
        let expected = reference(Transpose::No, Transpose::No, m, n, k, &a, &b);
        let mut c = vec![0.0; m * n];
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        for (got, want) in c.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-3);
        }
    }

    #[test]
    fn deep_k_crosses_multiple_packed_blocks() {
        // k > KC exercises the multi-block accumulate path (beta fused only
        // into the first block's write-back).
        let (m, n, k) = (9, 11, 2 * KC + 37);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let a = deterministic_matrix(m * k, 5);
                let b = deterministic_matrix(k * n, 6);
                let expected = reference(ta, tb, m, n, k, &a, &b);
                let mut c = deterministic_matrix(m * n, 7);
                let c0 = c.clone();
                gemm(ta, tb, m, n, k, 0.5, &a, &b, 2.0, &mut c);
                for (idx, (got, want)) in c.iter().zip(expected.iter()).enumerate() {
                    let full = 0.5 * want + 2.0 * c0[idx];
                    assert!((got - full).abs() < 2e-2, "{got} vs {full} ({ta:?},{tb:?})");
                }
            }
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        gemm(Transpose::No, Transpose::No, 2, 2, 2, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, [9.0, 11.0, 13.0, 15.0]);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = [1.0];
        let b = [1.0];
        let mut c = [f32::NAN];
        gemm(Transpose::No, Transpose::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, [1.0]);
    }

    #[test]
    fn alpha_zero_still_applies_beta() {
        let mut c = [f32::NAN, 3.0];
        gemm(Transpose::No, Transpose::No, 1, 2, 3, 0.0, &[0.0; 3], &[0.0; 6], 0.0, &mut c);
        assert_eq!(c, [0.0, 0.0]);
        let mut c = [2.0, 3.0];
        gemm(Transpose::No, Transpose::No, 1, 2, 3, 0.0, &[0.0; 3], &[0.0; 6], 0.5, &mut c);
        assert_eq!(c, [1.0, 1.5]);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c = [5.0];
        gemm(Transpose::No, Transpose::No, 1, 1, 0, 1.0, &[], &[], 1.0, &mut c);
        assert_eq!(c, [5.0]);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let (m, n, k) = (150, 67, 300);
        let a = deterministic_matrix(m * k, 8);
        let b = deterministic_matrix(k * n, 9);
        let run = |threads: usize| {
            crate::parallel::with_threads(threads, || {
                let mut c = vec![0.0f32; m * n];
                gemm(Transpose::No, Transpose::Yes, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                c
            })
        };
        let serial = run(1);
        for t in [2, 4, 7] {
            let par = run(t);
            assert!(
                serial.iter().zip(par.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={t} diverged"
            );
        }
    }

    #[test]
    fn wide_matrix_parallel_column_grid_bit_identical() {
        // n > NC exercises the column-axis tile grid (and the strided
        // SliceParts write-back path) that wide conv output matrices hit.
        // Kept small so Miri can interpret it (scripts/miri.sh runs
        // `parallel`-named tests).
        let (m, n, k) = (5, NC + 24, 40);
        let a = deterministic_matrix(m * k, 10);
        let b = deterministic_matrix(k * n, 11);
        let run = |threads: usize| {
            crate::parallel::with_threads(threads, || {
                let mut c = deterministic_matrix(m * n, 12);
                gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.5, &mut c);
                c
            })
        };
        let serial = run(1);
        for t in [2, 4] {
            let par = run(t);
            assert!(
                serial.iter().zip(par.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={t} diverged"
            );
        }
    }

    #[test]
    fn gemv_matches_manual() {
        // A = [[1,2],[3,4],[5,6]] (3x2), x = [1, -1]
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv(Transpose::No, 3, 2, 1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
        // A^T * v for v of length 3.
        let v = [1.0, 1.0, 1.0];
        let mut z = [0.0; 2];
        gemv(Transpose::Yes, 2, 3, 1.0, &a, &v, 0.0, &mut z);
        assert_eq!(z, [9.0, 12.0]);
    }
}
