//! Cross-crate integration tests: algorithmic equivalences between the
//! distributed platforms and their mathematical definitions.

use std::sync::Arc;

use parking_lot::Mutex;
use shmcaffe_repro::dnn::data::SyntheticBlobs;
use shmcaffe_repro::dnn::SolverConfig;
use shmcaffe_repro::models::proxies;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::{
    CaffeMpi, CaffeSsgd, MpiCaffe, ShmCaffeA, ShmCaffeH, SsgdConfig,
};
use shmcaffe_repro::platform::trainer::{RealTrainerFactory, Trainer, TrainerFactory};
use shmcaffe_repro::simnet::jitter::JitterModel;
use shmcaffe_repro::simnet::topology::ClusterSpec;
use shmcaffe_repro::simnet::{SimDuration, Simulation};

const WORKERS: usize = 4;
const ITERS: usize = 12;

fn factory() -> RealTrainerFactory {
    RealTrainerFactory::builder()
        .dataset(Arc::new(SyntheticBlobs::new(3, 6, 240, 0.5, 31)))
        .net_builder(|seed| proxies::mlp(6, 12, 3, seed))
        .solver(SolverConfig { base_lr: 0.05, ..Default::default() })
        .batch(10)
        .comp_model(SimDuration::from_millis(5), JitterModel::NONE)
        .build()
}

/// Runs the reference SSGD computation by hand: N trainer replicas driven
/// in lockstep by one process, gradients averaged in rank order.
fn reference_ssgd_weights() -> Vec<f32> {
    let f = factory();
    let out: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let mut sim = Simulation::new();
    sim.spawn("reference", move |ctx| {
        let mut trainers: Vec<_> = (0..WORKERS).map(|r| f.make(r, WORKERS)).collect();
        let n = trainers[0].param_len();
        let mut sum = vec![0.0f32; n];
        let mut g = vec![0.0f32; n];
        for _ in 0..ITERS {
            sum.iter_mut().for_each(|v| *v = 0.0);
            for t in trainers.iter_mut() {
                t.compute_gradients(&ctx);
                t.read_grads(&mut g);
                for (s, &v) in sum.iter_mut().zip(g.iter()) {
                    *s += v;
                }
            }
            let inv = 1.0 / WORKERS as f32;
            let avg: Vec<f32> = sum.iter().map(|v| v * inv).collect();
            for t in trainers.iter_mut() {
                t.write_grads(&avg);
                t.apply_update(&ctx);
            }
        }
        let mut w = vec![0.0f32; n];
        trainers[0].read_weights(&mut w);
        *out2.lock() = w;
    });
    sim.run();
    let w = out.lock().clone();
    w
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

#[test]
fn mpicaffe_matches_reference_ssgd() {
    let reference = reference_ssgd_weights();
    let report = MpiCaffe::new(
        ClusterSpec::paper_testbed(1),
        WORKERS,
        SsgdConfig { max_iters: ITERS, ..Default::default() },
    )
    .run(factory())
    .expect("platform runs");
    let got = report.final_weights.expect("rank 0 records weights");
    // Ring summation order differs from the reference loop: allow float
    // noise but nothing more.
    let diff = max_abs_diff(&reference, &got);
    assert!(diff < 1e-4, "MPICaffe diverged from reference SSGD by {diff}");
}

#[test]
fn caffe_mpi_star_matches_reference_ssgd() {
    let reference = reference_ssgd_weights();
    let report = CaffeMpi::new(
        ClusterSpec::paper_testbed(2),
        WORKERS,
        SsgdConfig { max_iters: ITERS, ..Default::default() },
    )
    .run(factory())
    .expect("platform runs");
    let got = report.final_weights.expect("rank 0 records weights");
    let diff = max_abs_diff(&reference, &got);
    assert!(diff < 1e-4, "Caffe-MPI diverged from reference SSGD by {diff}");
}

#[test]
fn caffe_nccl_matches_reference_ssgd() {
    let reference = reference_ssgd_weights();
    let report = CaffeSsgd::new(
        ClusterSpec::paper_testbed(1),
        WORKERS,
        SsgdConfig { max_iters: ITERS, ..Default::default() },
    )
    .run(factory())
    .expect("platform runs");
    let got = report.final_weights.expect("gpu 0 records weights");
    let diff = max_abs_diff(&reference, &got);
    assert!(diff < 1e-4, "Caffe diverged from reference SSGD by {diff}");
}

#[test]
fn hybrid_single_group_with_zero_alpha_equals_plain_ssgd() {
    // With one group and moving_rate = 0, the SEASGD exchange contributes
    // nothing (ΔW = 0), so ShmCaffe-H degenerates to intra-node SSGD.
    let cfg = ShmCaffeConfig {
        max_iters: ITERS,
        moving_rate: 0.0,
        progress_every: 4,
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let h = ShmCaffeH::new(ClusterSpec::paper_testbed(1), 1, WORKERS, cfg)
        .run(factory())
        .expect("platform runs");
    let ssgd = CaffeSsgd::new(
        ClusterSpec::paper_testbed(1),
        WORKERS,
        SsgdConfig { max_iters: ITERS, ..Default::default() },
    )
    .run(factory())
    .expect("platform runs");
    let diff = max_abs_diff(
        h.final_weights.as_ref().expect("weights recorded"),
        ssgd.final_weights.as_ref().expect("weights recorded"),
    );
    assert!(diff < 1e-5, "zero-alpha hybrid must equal SSGD, diff {diff}");
}

#[test]
fn all_platforms_converge_on_easy_task() {
    let easy = || {
        RealTrainerFactory::builder()
            .dataset(Arc::new(SyntheticBlobs::new(3, 6, 240, 0.3, 77)))
            .net_builder(|seed| proxies::mlp(6, 16, 3, seed))
            .solver(SolverConfig { base_lr: 0.08, ..Default::default() })
            .batch(12)
            .comp_model(SimDuration::from_millis(2), JitterModel::NONE)
            .build()
    };
    let iters = 120;
    let shm_cfg = ShmCaffeConfig {
        max_iters: iters,
        progress_every: 20,
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let ssgd_cfg = SsgdConfig { max_iters: iters, ..Default::default() };
    let spec = ClusterSpec::paper_testbed(1);

    let finals = vec![
        ("Caffe", CaffeSsgd::new(spec, 4, ssgd_cfg).run(easy()).unwrap()),
        ("Caffe-MPI", CaffeMpi::new(spec, 4, ssgd_cfg).run(easy()).unwrap()),
        ("MPICaffe", MpiCaffe::new(spec, 4, ssgd_cfg).run(easy()).unwrap()),
        ("ShmCaffe-A", ShmCaffeA::new(spec, 4, shm_cfg).run(easy()).unwrap()),
        (
            "ShmCaffe-H",
            ShmCaffeH::new(ClusterSpec::paper_testbed(2), 2, 2, shm_cfg).run(easy()).unwrap(),
        ),
    ];
    for (name, report) in finals {
        let loss = report.workers[0].final_loss;
        assert!(
            loss.is_finite() && loss < 0.5,
            "{name} should converge: final training loss {loss}"
        );
    }
}

#[test]
fn worker_panic_surfaces_as_platform_error() {
    struct Bomb;
    impl Trainer for Bomb {
        fn param_len(&self) -> usize {
            8
        }
        fn wire_bytes(&self) -> u64 {
            32
        }
        fn compute_gradients(&mut self, _ctx: &shmcaffe_repro::simnet::SimContext) -> f32 {
            panic!("injected trainer failure");
        }
        fn apply_update(&mut self, _ctx: &shmcaffe_repro::simnet::SimContext) {}
        fn read_weights(&mut self, out: &mut [f32]) {
            out.fill(0.0);
        }
        fn write_weights(&mut self, _w: &[f32]) {}
        fn read_grads(&mut self, out: &mut [f32]) {
            out.fill(0.0);
        }
        fn write_grads(&mut self, _g: &[f32]) {}
        fn evaluate(&mut self) -> Option<shmcaffe_repro::platform::trainer::EvalSample> {
            None
        }
    }
    struct BombFactory;
    impl TrainerFactory for BombFactory {
        type Output = Bomb;
        fn make(&self, _rank: usize, _n: usize) -> Bomb {
            Bomb
        }
    }
    let cfg = ShmCaffeConfig { max_iters: 5, ..Default::default() };
    let err = ShmCaffeA::new(ClusterSpec::paper_testbed(1), 2, cfg)
        .run(BombFactory)
        .expect_err("panicking trainer must fail the run");
    let msg = err.to_string();
    assert!(msg.contains("injected trainer failure"), "unexpected error: {msg}");
}
