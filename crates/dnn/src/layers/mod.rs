//! The layer library: Caffe's building blocks for the evaluated CNNs.

mod activations;
mod batchnorm;
mod conv_layer;
mod dropout;
mod inception;
mod inner_product;
mod lrn;
mod pool_layer;

pub use activations::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm;
pub use conv_layer::Conv2d;
pub use dropout::Dropout;
pub use inception::{Inception, InceptionSpec};
pub use inner_product::InnerProduct;
pub use lrn::Lrn;
pub use pool_layer::Pool2d;
