//! Fig. 11 — ShmCaffe-A vs ShmCaffe-H accuracy and loss as the worker
//! count grows (1, 4, 8, 16), moving_rate 0.2, update_interval 1.
//!
//! Paper anchors: ShmCaffe-A's accuracy "slowly drops when the number of
//! GPUs increases", reaching 5.7% below the 1-GPU baseline at 16 workers;
//! ShmCaffe-H stays within 0.9–2.2% of the baseline at 4/8/16.
//!
//! Run with
//! `cargo run --release -p shmcaffe-bench --bin fig11_async_vs_hybrid`.

use shmcaffe_bench::convergence::ConvergenceTask;
use shmcaffe_bench::experiments::Platform;
use shmcaffe_bench::table::{pct, Table};

fn main() {
    let task = ConvergenceTask::default();
    println!("Fig 11 reproduction: ShmCaffe-A vs ShmCaffe-H convergence\n");

    let mut table = Table::new(
        "Final held-out accuracy/loss by worker count",
        &["workers", "A top-1", "A loss", "H top-1", "H loss", "A gap vs 1-GPU"],
    );
    let mut baseline_top1 = f32::NAN;
    for workers in [1usize, 4, 8, 16] {
        let eval_every = task.iters_for(workers);
        let a = task.run(Platform::ShmCaffeA, workers, eval_every).expect("A runs");
        let h = task.run(Platform::ShmCaffeH, workers, eval_every).expect("H runs");
        let ae = a.final_eval().expect("evals");
        let he = h.final_eval().expect("evals");
        if workers == 1 {
            baseline_top1 = ae.top1;
        }
        table.row_owned(vec![
            workers.to_string(),
            pct(ae.top1 as f64),
            format!("{:.3}", ae.loss),
            pct(he.top1 as f64),
            format!("{:.3}", he.loss),
            format!("{:+.1}pp", (ae.top1 - baseline_top1) * 100.0),
        ]);
    }
    table.print();
    println!("paper: A drops ~5.7pp below the 1-GPU baseline at 16 workers;");
    println!("H stays within 0.9-2.2pp of the baseline at 4/8/16 workers.");
}
