//! Running statistics for timing measurements.
//!
//! The benchmark harness averages per-iteration computation and
//! communication times over 1000 iterations, exactly as the paper does for
//! Tables V and VI. [`RunningStats`] provides numerically stable streaming
//! mean/variance (Welford's algorithm) plus min/max.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::SimDuration;

/// Streaming mean / variance / min / max accumulator.
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.min(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`SimDuration`] in milliseconds.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn mean_and_std_match_textbook() {
        let mut s = RunningStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 5.0);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &v in &data {
            all.record(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn record_duration_uses_milliseconds() {
        let mut s = RunningStats::new();
        s.record_duration_ms(SimDuration::from_millis(250));
        assert_eq!(s.mean(), 250.0);
    }
}
