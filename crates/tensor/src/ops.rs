//! BLAS-1 style vector operations and element-wise activation kernels.
//!
//! These free functions operate on `&[f32]` slices so they can be applied to
//! [`crate::Tensor`] buffers, raw parameter vectors shared through the Soft
//! Memory Box, and gradient accumulation buffers alike. This mirrors how
//! Caffe's `math_functions.cpp` exposes `caffe_axpy` etc. over raw pointers.
//!
//! Slices are processed in fixed chunks sized by
//! [`parallel::elemwise_chunk`] — a pure function of the element count, so
//! the grid (and therefore every result, including the chunk-ordered `dot`
//! reduction) is bit-identical at any thread count. Vectors at or below
//! [`parallel::ELEMWISE_PAR_MIN`] stay on the calling thread entirely:
//! dispatching them cost more than it saved (the 2-thread SMB-accumulate
//! regression in BENCH_kernels.json).

use crate::parallel::{self, elemwise_chunk, Task};

/// `y += alpha * x` (the SGD update kernel and the SMB accumulate kernel).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::ops::axpy;
/// let x = [1.0, 2.0];
/// let mut y = [10.0, 20.0];
/// axpy(0.5, &x, &mut y);
/// assert_eq!(y, [10.5, 21.0]);
/// ```
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    parallel::par_zip_mut(y, x, elemwise_chunk(y.len()), |yc, xc| axpy_serial(alpha, xc, yc));
}

/// Single-threaded `y += alpha * x`, for callers that are already inside a
/// parallel region or that combine per-task partials in a fixed order.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy_serial(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x.iter()) {
        *yv += alpha * xv;
    }
}

/// `y = alpha * x + beta * y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    parallel::par_zip_mut(y, x, elemwise_chunk(y.len()), |yc, xc| {
        for (yv, &xv) in yc.iter_mut().zip(xc.iter()) {
            *yv = alpha * xv + beta * *yv;
        }
    });
}

/// `x *= alpha`.
pub fn scal(alpha: f32, x: &mut [f32]) {
    parallel::par_chunks_mut(x, elemwise_chunk(x.len()), |_, c| {
        for v in c.iter_mut() {
            *v *= alpha;
        }
    });
}

/// Dot product of two equal-length slices.
///
/// Per-chunk partial sums are combined in chunk order, so the result does
/// not depend on the thread count.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let chunk = elemwise_chunk(x.len());
    let chunk_dot =
        |xc: &[f32], yc: &[f32]| xc.iter().zip(yc.iter()).map(|(a, b)| a * b).sum::<f32>();
    if x.len() <= chunk || parallel::current_threads() <= 1 {
        return x.chunks(chunk).zip(y.chunks(chunk)).map(|(xc, yc)| chunk_dot(xc, yc)).sum();
    }
    let n_chunks = x.len().div_ceil(chunk);
    let mut partials = vec![0.0f32; n_chunks];
    {
        let chunk_dot = &chunk_dot;
        let tasks: Vec<Task<'_>> = partials
            .iter_mut()
            .zip(x.chunks(chunk).zip(y.chunks(chunk)))
            .map(|(slot, (xc, yc))| -> Task<'_> { Box::new(move || *slot = chunk_dot(xc, yc)) })
            .collect();
        parallel::run_tasks(tasks);
    }
    partials.iter().sum()
}

/// Element-wise `out = a - b`.
///
/// Used by EASGD to form the elastic difference `W_x - W_g` (paper eq. 5).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    assert_eq!(a.len(), out.len(), "sub output length mismatch");
    parallel::par_zip2_mut(out, a, b, elemwise_chunk(out.len()), |oc, ac, bc| {
        for ((o, &av), &bv) in oc.iter_mut().zip(ac.iter()).zip(bc.iter()) {
            *o = av - bv;
        }
    });
}

/// Element-wise `out = a + b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    assert_eq!(a.len(), out.len(), "add output length mismatch");
    parallel::par_zip2_mut(out, a, b, elemwise_chunk(out.len()), |oc, ac, bc| {
        for ((o, &av), &bv) in oc.iter_mut().zip(ac.iter()).zip(bc.iter()) {
            *o = av + bv;
        }
    });
}

/// Fused EASGD elastic mixing (paper eqs. 5–6): per element,
/// `dw = alpha * (wx - wg); wx -= dw`.
///
/// One pass produces the elastic difference `ΔW` *and* applies it to the
/// local weights, replacing the scalar zip-loop the exchanger used to run.
/// Elementwise (no reductions), so the result is bit-identical at any
/// thread count and for any outer decomposition of the three slices — a
/// chunked exchange mixing `[lo..hi)` sub-slices produces exactly the bits
/// the monolithic pass does.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn elastic_mix(alpha: f32, wx: &mut [f32], dw: &mut [f32], wg: &[f32]) {
    assert_eq!(wx.len(), dw.len(), "elastic_mix length mismatch");
    assert_eq!(wx.len(), wg.len(), "elastic_mix length mismatch");
    parallel::par_zip_mut2(wx, dw, wg, elemwise_chunk(wx.len()), |xc, dc, gc| {
        for ((x, d), &g) in xc.iter_mut().zip(dc.iter_mut()).zip(gc.iter()) {
            *d = alpha * (*x - g);
            *x -= *d;
        }
    });
}

/// ReLU forward: `out[i] = max(0, x[i])`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn relu_forward(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "relu length mismatch");
    parallel::par_zip_mut(out, x, elemwise_chunk(out.len()), |oc, xc| {
        for (o, &v) in oc.iter_mut().zip(xc.iter()) {
            *o = v.max(0.0);
        }
    });
}

/// ReLU backward: `dx[i] = dy[i] * (x[i] > 0)`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn relu_backward(x: &[f32], dy: &[f32], dx: &mut [f32]) {
    assert_eq!(x.len(), dy.len(), "relu_backward length mismatch");
    assert_eq!(x.len(), dx.len(), "relu_backward output length mismatch");
    parallel::par_zip2_mut(dx, x, dy, elemwise_chunk(dx.len()), |dc, xc, gc| {
        for ((d, &xv), &g) in dc.iter_mut().zip(xc.iter()).zip(gc.iter()) {
            *d = if xv > 0.0 { g } else { 0.0 };
        }
    });
}

/// Numerically stable sigmoid.
pub fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid forward over a slice.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sigmoid_forward(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "sigmoid length mismatch");
    parallel::par_zip_mut(out, x, elemwise_chunk(out.len()), |oc, xc| {
        for (o, &v) in oc.iter_mut().zip(xc.iter()) {
            *o = sigmoid(v);
        }
    });
}

/// Sigmoid backward given the forward *output* `y`: `dx = dy * y * (1 - y)`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sigmoid_backward(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    assert_eq!(y.len(), dy.len(), "sigmoid_backward length mismatch");
    assert_eq!(y.len(), dx.len(), "sigmoid_backward output length mismatch");
    parallel::par_zip2_mut(dx, y, dy, elemwise_chunk(dx.len()), |dc, yc, gc| {
        for ((d, &yv), &g) in dc.iter_mut().zip(yc.iter()).zip(gc.iter()) {
            *d = g * yv * (1.0 - yv);
        }
    });
}

/// Hyperbolic tangent forward over a slice.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn tanh_forward(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "tanh length mismatch");
    parallel::par_zip_mut(out, x, elemwise_chunk(out.len()), |oc, xc| {
        for (o, &v) in oc.iter_mut().zip(xc.iter()) {
            *o = v.tanh();
        }
    });
}

/// Tanh backward given the forward output `y`: `dx = dy * (1 - y^2)`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn tanh_backward(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    assert_eq!(y.len(), dy.len(), "tanh_backward length mismatch");
    assert_eq!(y.len(), dx.len(), "tanh_backward output length mismatch");
    parallel::par_zip2_mut(dx, y, dy, elemwise_chunk(dx.len()), |dc, yc, gc| {
        for ((d, &yv), &g) in dc.iter_mut().zip(yc.iter()).zip(gc.iter()) {
            *d = g * (1.0 - yv * yv);
        }
    });
}

/// Clips every element into `[-bound, bound]` (gradient clipping).
///
/// # Panics
///
/// Panics if `bound` is negative or NaN.
pub fn clip(bound: f32, x: &mut [f32]) {
    assert!(bound >= 0.0, "clip bound must be non-negative");
    parallel::par_chunks_mut(x, elemwise_chunk(x.len()), |_, c| {
        for v in c.iter_mut() {
            *v = v.clamp(-bound, bound);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ELEMWISE_CHUNK;

    #[test]
    fn axpy_and_axpby() {
        let x = [1.0, -2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, -3.0, 7.0]);
        axpby(1.0, &x, 0.0, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn scal_dot() {
        let mut x = [1.0, 2.0, 3.0];
        scal(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0, 9.0]);
        assert_eq!(dot(&x, &[1.0, 1.0, 1.0]), 18.0);
    }

    #[test]
    fn sub_add_roundtrip() {
        let a = [5.0, 6.0];
        let b = [2.0, 9.0];
        let mut d = [0.0; 2];
        sub(&a, &b, &mut d);
        assert_eq!(d, [3.0, -3.0]);
        let mut s = [0.0; 2];
        add(&d, &b, &mut s);
        assert_eq!(s, a);
    }

    #[test]
    fn elastic_mix_matches_scalar_reference_bitwise() {
        use crate::parallel::with_threads;
        let n = 6 * ELEMWISE_CHUNK + 77;
        let wx0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.017).sin()).collect();
        let wg: Vec<f32> = (0..n).map(|i| (i as f32 * 0.031).cos()).collect();
        // Scalar reference: exactly the exchanger's original zip-loop.
        let mut wx_ref = wx0.clone();
        let mut dw_ref = vec![0.0f32; n];
        for ((x, d), g) in wx_ref.iter_mut().zip(dw_ref.iter_mut()).zip(wg.iter()) {
            *d = 0.2 * (*x - *g);
            *x -= *d;
        }
        for t in [1usize, 2, 4, 7] {
            let mut wx = wx0.clone();
            let mut dw = vec![0.0f32; n];
            with_threads(t, || elastic_mix(0.2, &mut wx, &mut dw, &wg));
            assert_eq!(wx, wx_ref, "wx threads={t}");
            assert_eq!(dw, dw_ref, "dw threads={t}");
        }
    }

    #[test]
    fn elastic_mix_is_decomposition_invariant() {
        // Mixing the vector in arbitrary sub-slices (the exchange chunk
        // grid) must produce the same bits as one whole-vector pass —
        // the property the chunked exchange's bit-identity rests on.
        let n = ELEMWISE_CHUNK + 300;
        let wx0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.011).sin()).collect();
        let wg: Vec<f32> = (0..n).map(|i| (i as f32 * 0.023).cos()).collect();
        let mut wx_whole = wx0.clone();
        let mut dw_whole = vec![0.0f32; n];
        elastic_mix(0.125, &mut wx_whole, &mut dw_whole, &wg);
        for chunk in [1usize, 7, 1000, n] {
            let mut wx = wx0.clone();
            let mut dw = vec![0.0f32; n];
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                elastic_mix(0.125, &mut wx[lo..hi], &mut dw[lo..hi], &wg[lo..hi]);
                lo = hi;
            }
            assert_eq!(wx, wx_whole, "chunk={chunk}");
            assert_eq!(dw, dw_whole, "chunk={chunk}");
        }
    }

    #[test]
    fn relu_pair_is_consistent() {
        let x = [-1.0, 0.0, 2.0];
        let mut y = [0.0; 3];
        relu_forward(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 2.0]);
        let dy = [1.0, 1.0, 1.0];
        let mut dx = [9.0; 3];
        relu_backward(&x, &dy, &mut dx);
        assert_eq!(dx, [0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0).abs() < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(-100.0).is_finite());
    }

    #[test]
    fn sigmoid_backward_matches_finite_difference() {
        let xs = [-2.0f32, -0.5, 0.0, 0.7, 3.0];
        for &x in &xs {
            let eps = 1e-3;
            let numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            let y = sigmoid(x);
            let mut dx = [0.0];
            sigmoid_backward(&[y], &[1.0], &mut dx);
            assert!((dx[0] - numeric).abs() < 1e-3, "x={x}: {} vs {numeric}", dx[0]);
        }
    }

    #[test]
    fn tanh_backward_matches_finite_difference() {
        let xs = [-1.5f32, 0.0, 0.9];
        for &x in &xs {
            let eps = 1e-3;
            let numeric = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
            let y = x.tanh();
            let mut dx = [0.0];
            tanh_backward(&[y], &[1.0], &mut dx);
            assert!((dx[0] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn clip_bounds_values() {
        let mut x = [-5.0, 0.5, 7.0];
        clip(1.0, &mut x);
        assert_eq!(x, [-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_panics_on_mismatch() {
        let mut y = [0.0; 2];
        axpy(1.0, &[1.0; 3], &mut y);
    }

    #[test]
    fn large_ops_are_thread_count_invariant() {
        use crate::parallel::with_threads;
        let n = 6 * ELEMWISE_CHUNK + 123;
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.013).sin()).collect();
        let y0: Vec<f32> = (0..n).map(|i| (i as f32 * 0.029).cos()).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut y = y0.clone();
                axpy(0.37, &x, &mut y);
                axpby(1.25, &x, -0.5, &mut y);
                let mut out = vec![0.0f32; n];
                relu_backward(&x, &y, &mut out);
                sigmoid_forward(&y, &mut out);
                let d = dot(&x, &y);
                (y, out, d)
            })
        };
        let (y1, o1, d1) = run(1);
        for t in [2, 4, 7] {
            let (yt, ot, dt) = run(t);
            assert_eq!(y1, yt, "axpy/axpby threads={t}");
            assert_eq!(o1, ot, "activations threads={t}");
            assert_eq!(d1.to_bits(), dt.to_bits(), "dot threads={t}");
        }
    }
}
