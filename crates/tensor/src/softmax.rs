//! Softmax, log-softmax and cross-entropy loss kernels.
//!
//! All functions operate row-wise on `(rows, classes)` matrices, matching
//! Caffe's `SoftmaxWithLossLayer` semantics (loss averaged over the batch,
//! numerically stabilised by max subtraction).
//!
//! Rows are independent, so the forward kernel runs row-groups in parallel
//! on the crate worker pool. Group boundaries fall on whole rows and depend
//! only on `classes`, keeping results thread-count invariant.

use crate::parallel::{self, ELEMWISE_CHUNK};

/// Row-wise softmax: each row of `x` (length `classes`) is normalised into
/// `out`.
///
/// # Panics
///
/// Panics if buffer lengths are not `rows * classes`.
pub fn softmax(rows: usize, classes: usize, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), rows * classes, "softmax input size mismatch");
    assert_eq!(out.len(), rows * classes, "softmax output size mismatch");
    if rows == 0 || classes == 0 {
        return;
    }
    // Whole rows per task, roughly ELEMWISE_CHUNK elements each.
    let rows_per_chunk = (ELEMWISE_CHUNK / classes).max(1);
    parallel::par_zip_mut(out, x, rows_per_chunk * classes, |oc, xc| {
        for (out_row, row) in oc.chunks_mut(classes).zip(xc.chunks(classes)) {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &v) in out_row.iter_mut().zip(row.iter()) {
                let e = (v - max).exp();
                *o = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in out_row.iter_mut() {
                *o *= inv;
            }
        }
    });
}

/// Cross-entropy loss of softmax probabilities against integer labels,
/// averaged over rows.
///
/// `probs` must already be softmax output; `labels[r]` is the target class of
/// row `r`. Probabilities are clamped to `1e-12` before the log for
/// stability.
///
/// # Panics
///
/// Panics on size mismatches or a label out of range.
pub fn cross_entropy_loss(rows: usize, classes: usize, probs: &[f32], labels: &[usize]) -> f32 {
    assert_eq!(probs.len(), rows * classes, "probs size mismatch");
    assert_eq!(labels.len(), rows, "labels size mismatch");
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let p = probs[r * classes + label].max(1e-12);
        loss -= p.ln();
    }
    loss / rows as f32
}

/// Gradient of mean cross-entropy w.r.t. the softmax *input* (logits):
/// `d_logits = (probs - onehot(labels)) / rows`.
///
/// # Panics
///
/// Panics on size mismatches or a label out of range.
pub fn softmax_cross_entropy_backward(
    rows: usize,
    classes: usize,
    probs: &[f32],
    labels: &[usize],
    d_logits: &mut [f32],
) {
    assert_eq!(probs.len(), rows * classes, "probs size mismatch");
    assert_eq!(labels.len(), rows, "labels size mismatch");
    assert_eq!(d_logits.len(), rows * classes, "d_logits size mismatch");
    let scale = 1.0 / rows as f32;
    d_logits.copy_from_slice(probs);
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        d_logits[r * classes + label] -= 1.0;
    }
    crate::ops::scal(scale, d_logits);
}

/// Fraction of rows whose label is among the `k` highest-scoring classes.
///
/// This is the paper's "top-5 accuracy" metric when `k == 5`.
///
/// # Panics
///
/// Panics on size mismatches or `k == 0`.
pub fn top_k_accuracy(
    rows: usize,
    classes: usize,
    scores: &[f32],
    labels: &[usize],
    k: usize,
) -> f32 {
    assert!(k > 0, "k must be positive");
    assert_eq!(scores.len(), rows * classes, "scores size mismatch");
    assert_eq!(labels.len(), rows, "labels size mismatch");
    if rows == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &scores[r * classes..(r + 1) * classes];
        let target = row[label];
        // Count how many classes strictly beat the target score.
        let better = row.iter().filter(|&&v| v > target).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f32 / rows as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut out = vec![0.0; 6];
        softmax(2, 3, &x, &mut out);
        for r in 0..2 {
            let s: f32 = out[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotonicity: larger logit -> larger probability.
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = vec![1000.0, 1001.0, 1002.0];
        let mut out = vec![0.0; 3];
        softmax(1, 3, &x, &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
        let y = vec![0.0, 1.0, 2.0];
        let mut out2 = vec![0.0; 3];
        softmax(1, 3, &y, &mut out2);
        for (a, b) in out.iter().zip(out2.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_zero() {
        let probs = vec![1.0, 0.0, 0.0];
        let loss = cross_entropy_loss(1, 3, &probs, &[0]);
        assert!(loss.abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_classes() {
        let probs = vec![0.25; 4];
        let loss = cross_entropy_loss(1, 4, &probs, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let logits = vec![0.3, -0.7, 1.2, 0.0, 0.5, -0.5];
        let labels = vec![2usize, 0];
        let loss_of = |logits: &[f32]| -> f32 {
            let mut probs = vec![0.0; 6];
            softmax(2, 3, logits, &mut probs);
            cross_entropy_loss(2, 3, &probs, &labels)
        };
        let mut probs = vec![0.0; 6];
        softmax(2, 3, &logits, &mut probs);
        let mut grad = vec![0.0; 6];
        softmax_cross_entropy_backward(2, 3, &probs, &labels, &mut grad);

        let eps = 1e-3;
        let mut x = logits.clone();
        for i in 0..6 {
            let orig = x[i];
            x[i] = orig + eps;
            let lp = loss_of(&x);
            x[i] = orig - eps;
            let lm = loss_of(&x);
            x[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad[i] - numeric).abs() < 1e-3, "i={i}: {} vs {numeric}", grad[i]);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax - onehot always sums to zero per row.
        let logits = vec![0.1, 0.2, 0.3, 0.4];
        let mut probs = vec![0.0; 4];
        softmax(1, 4, &logits, &mut probs);
        let mut grad = vec![0.0; 4];
        softmax_cross_entropy_backward(1, 4, &probs, &[3], &mut grad);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn top_k_accuracy_counts_hits() {
        // Two rows, three classes.
        let scores = vec![
            0.1, 0.7, 0.2, // argmax = 1
            0.5, 0.3, 0.2, // argmax = 0
        ];
        assert_eq!(top_k_accuracy(2, 3, &scores, &[1, 1], 1), 0.5);
        assert_eq!(top_k_accuracy(2, 3, &scores, &[1, 1], 2), 1.0);
        assert_eq!(top_k_accuracy(2, 3, &scores, &[2, 2], 1), 0.0);
        assert_eq!(top_k_accuracy(2, 3, &scores, &[2, 2], 3), 1.0);
    }

    #[test]
    fn top_k_with_ties_is_optimistic() {
        // All-equal scores: no class strictly beats the target, so top-1 hits.
        let scores = vec![0.25; 4];
        assert_eq!(top_k_accuracy(1, 4, &scores, &[3], 1), 1.0);
    }

    #[test]
    fn top_k_empty_rows() {
        assert_eq!(top_k_accuracy(0, 3, &[], &[], 5), 0.0);
    }
}
