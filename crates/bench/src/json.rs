//! Shared JSON emission for experiment binaries.
//!
//! Every `fig*` binary used to hand-roll its terminal output; this module
//! centralises the machine-readable half: a tiny ordered JSON value type
//! (no external dependency, insertion-ordered objects so diffs are stable),
//! a [`crate::table::Table`] → JSON conversion, and the `BENCH_*.json`
//! writer used to record the performance trajectory at the repo root.
//!
//! Figure binaries call [`emit_figure`]; it always prints the table and
//! additionally writes `BENCH_<name>.json` when `SHMCAFFE_BENCH_JSON` is
//! set (so casual runs do not touch the working tree). `kernel_bench`
//! writes its file unconditionally via [`write_bench_json`].

use crate::table::Table;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered with up to 6 significant decimals) —
    /// non-finite values render as `null`.
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline at the top level only via [`render`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Trim trailing zeros but keep at least one decimal so
                    // numbers round-trip as floats.
                    let s = format!("{v:.6}");
                    let s = s.trim_end_matches('0');
                    let s = s.strip_suffix('.').unwrap_or(s);
                    out.push_str(if s.is_empty() { "0" } else { s });
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&Table> for Json {
    /// `{title, headers, rows}` with rows as string arrays — the common
    /// shape every figure binary records.
    fn from(t: &Table) -> Json {
        Json::obj(vec![
            ("title", Json::str(t.title())),
            ("headers", Json::Arr(t.headers().iter().map(Json::str).collect())),
            (
                "rows",
                Json::Arr(
                    t.rows().iter().map(|r| Json::Arr(r.iter().map(Json::str).collect())).collect(),
                ),
            ),
        ])
    }
}

/// The repository root, resolved from the bench crate's manifest directory
/// (`crates/bench/../..`).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Writes `BENCH_<name>.json` at the repo root and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let path = repo_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.render())?;
    Ok(path)
}

/// Standard tail of a figure binary: prints the table and, when
/// `SHMCAFFE_BENCH_JSON` is set in the environment, writes the table plus
/// `extras` as `BENCH_<name>.json` at the repo root.
pub fn emit_figure(name: &str, table: &Table, extras: Vec<(&str, Json)>) {
    table.print();
    if std::env::var_os("SHMCAFFE_BENCH_JSON").is_none() {
        return;
    }
    let mut pairs = vec![("table", Json::from(table))];
    pairs.extend(extras);
    match write_bench_json(name, &Json::obj(pairs)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_object() {
        let v = Json::obj(vec![
            ("b", Json::Int(2)),
            ("a", Json::Num(1.5)),
            ("s", Json::str("x\"y")),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let s = v.render();
        // Insertion order preserved, not sorted.
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\"x\\\"y\""));
        assert!(s.contains("1.5"));
        assert!(s.contains("null"));
    }

    #[test]
    fn numbers_trim_trailing_zeros() {
        assert_eq!(Json::Num(2.0).render().trim(), "2");
        assert_eq!(Json::Num(0.25).render().trim(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render().trim(), "null");
    }

    #[test]
    fn table_round_trips_shape() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1", "2"]);
        let j = Json::from(&t);
        let s = j.render();
        assert!(s.contains("\"title\": \"T\""));
        assert!(s.contains("\"headers\""));
        assert!(s.contains("\"rows\""));
    }

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }
}
