use serde::{Deserialize, Serialize};
use std::fmt;

use crate::TensorError;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// Shapes are row-major: the last axis is contiguous in memory. Caffe's
/// canonical blob layout `(N, C, H, W)` is represented as a rank-4 shape.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// A rank-0 (scalar) shape with one element.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The extent of `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Checked accessor for an axis extent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis` is out of range.
    pub fn try_dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims.get(axis).copied().ok_or(TensorError::AxisOutOfRange { axis, rank: self.rank() })
    }

    /// Row-major strides for this shape.
    ///
    /// ```rust
    /// use shmcaffe_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(i < self.dims[axis], "index {i} out of range on axis {axis}");
            off += i * s;
        }
        off
    }

    /// Caffe blob convenience: number of elements from `axis` to the end.
    ///
    /// `count_from(0)` equals [`Shape::len`].
    pub fn count_from(&self, axis: usize) -> usize {
        self.dims[axis.min(self.dims.len())..].iter().product()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_and_offsets_agree_with_manual_layout() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    fn count_from_matches_caffe_blob_semantics() {
        let s = Shape::new(&[8, 3, 32, 32]);
        assert_eq!(s.count_from(0), 8 * 3 * 32 * 32);
        assert_eq!(s.count_from(1), 3 * 32 * 32);
        assert_eq!(s.count_from(4), 1);
        assert_eq!(s.count_from(9), 1);
    }

    #[test]
    fn try_dim_reports_out_of_range() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.try_dim(1), Ok(3));
        assert_eq!(s.try_dim(2), Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 }));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2x3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_panics_out_of_range() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn zero_extent_shape_is_empty() {
        assert!(Shape::new(&[3, 0, 2]).is_empty());
    }
}
