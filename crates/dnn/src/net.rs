use shmcaffe_tensor::softmax::{
    cross_entropy_loss, softmax, softmax_cross_entropy_backward, top_k_accuracy,
};
use shmcaffe_tensor::Tensor;

use crate::{DnnError, Layer, Phase};

/// A sequential network of layers ending in class logits, with a built-in
/// softmax cross-entropy head (Caffe's `SoftmaxWithLoss`).
///
/// The network exposes a *flattened parameter vector* view — the exact
/// representation ShmCaffe stores in the Soft Memory Box shared buffer — via
/// [`Net::copy_weights_to`] / [`Net::load_weights_from`] and the analogous
/// gradient accessors. Parameter order is layer order, weights before bias,
/// so every replica created from the same seed agrees on the layout.
///
/// # Example
///
/// ```rust
/// use shmcaffe_dnn::{Net, Phase};
/// use shmcaffe_dnn::layers::{InnerProduct, Relu};
/// use shmcaffe_tensor::{Tensor, init::Filler};
///
/// # fn main() -> Result<(), shmcaffe_dnn::DnnError> {
/// let mut net = Net::new("tiny");
/// net.add(InnerProduct::new("fc1", 2, 8, Filler::Xavier, 0));
/// net.add(Relu::new("r"));
/// net.add(InnerProduct::new("fc2", 8, 2, Filler::Xavier, 0));
/// let x = Tensor::zeros(&[4, 2]);
/// let logits = net.forward(&x, Phase::Test)?;
/// assert_eq!(logits.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
pub struct Net {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    last_probs: Option<Tensor>,
}

impl Net {
    /// Creates an empty network.
    pub fn new(name: &str) -> Self {
        Net { name: name.to_string(), layers: Vec::new(), last_probs: None }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer.
    pub fn add<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Runs the network forward, producing logits.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor, DnnError> {
        let mut activation = input.clone();
        for layer in &mut self.layers {
            activation = layer.forward(&activation, phase)?;
        }
        Ok(activation)
    }

    /// Forward pass plus softmax cross-entropy loss against `labels`.
    ///
    /// Returns `(loss, logits)` and caches the probabilities for
    /// [`Net::backward_from_loss`].
    ///
    /// # Errors
    ///
    /// Propagates layer errors; panics are avoided by validating shapes.
    pub fn forward_loss(
        &mut self,
        input: &Tensor,
        labels: &[usize],
        phase: Phase,
    ) -> Result<(f32, Tensor), DnnError> {
        let logits = self.forward(input, phase)?;
        let rows = labels.len();
        if rows == 0 || logits.len() % rows != 0 {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!("labels ({rows}) incompatible with logits {:?}", logits.dims()),
            });
        }
        let classes = logits.len() / rows;
        let mut probs = Tensor::zeros(&[rows, classes]);
        softmax(rows, classes, logits.data(), probs.data_mut());
        let loss = cross_entropy_loss(rows, classes, probs.data(), labels);
        self.last_probs = Some(probs);
        Ok((loss, logits))
    }

    /// Backward pass from the cached softmax loss, accumulating gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if called before [`Net::forward_loss`].
    pub fn backward_from_loss(&mut self, labels: &[usize]) -> Result<(), DnnError> {
        let probs = self.last_probs.take().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward_from_loss called before forward_loss".to_string(),
        })?;
        let rows = labels.len();
        let classes = probs.len() / rows;
        let mut d_logits = Tensor::zeros(&[rows, classes]);
        softmax_cross_entropy_backward(rows, classes, probs.data(), labels, d_logits.data_mut());
        let mut grad = d_logits;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(())
    }

    /// Top-`k` accuracy of `logits` against `labels`.
    pub fn accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
        let rows = labels.len();
        if rows == 0 {
            return 0.0;
        }
        let classes = logits.len() / rows;
        top_k_accuracy(rows, classes, logits.data(), labels, k)
    }

    /// Total number of learnable scalars.
    pub fn param_len(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.param_len()).sum()
    }

    /// Copies the flattened parameter vector into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ParamLengthMismatch`] if `out` has the wrong size.
    pub fn copy_weights_to(&mut self, out: &mut [f32]) -> Result<(), DnnError> {
        self.visit_params(out, |p, _g, chunk| chunk.copy_from_slice(p.data()))
    }

    /// Loads the flattened parameter vector from `src`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ParamLengthMismatch`] if `src` has the wrong size.
    pub fn load_weights_from(&mut self, src: &[f32]) -> Result<(), DnnError> {
        // `visit_params` only passes `&mut [f32]` chunks, so route through a
        // mutable copy-free closure over an immutable source via indices.
        let expected = self.param_len();
        if src.len() != expected {
            return Err(DnnError::ParamLengthMismatch { expected, got: src.len() });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for (p, _) in layer.params_and_grads() {
                let n = p.len();
                p.data_mut().copy_from_slice(&src[offset..offset + n]);
                offset += n;
            }
        }
        Ok(())
    }

    /// Copies the flattened gradient vector into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ParamLengthMismatch`] if `out` has the wrong size.
    pub fn copy_grads_to(&mut self, out: &mut [f32]) -> Result<(), DnnError> {
        self.visit_params(out, |_p, g, chunk| chunk.copy_from_slice(g.data()))
    }

    /// Loads the flattened gradient vector from `src` (overwriting existing
    /// gradients) — used when a parameter server hands back aggregated
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ParamLengthMismatch`] if `src` has the wrong size.
    pub fn load_grads_from(&mut self, src: &[f32]) -> Result<(), DnnError> {
        let expected = self.param_len();
        if src.len() != expected {
            return Err(DnnError::ParamLengthMismatch { expected, got: src.len() });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for (_, g) in layer.params_and_grads() {
                let n = g.len();
                g.data_mut().copy_from_slice(&src[offset..offset + n]);
                offset += n;
            }
        }
        Ok(())
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Applies `f(param, grad, chunk)` over the flattened layout.
    fn visit_params<F>(&mut self, buf: &mut [f32], mut f: F) -> Result<(), DnnError>
    where
        F: FnMut(&Tensor, &Tensor, &mut [f32]),
    {
        let expected = self.param_len();
        if buf.len() != expected {
            return Err(DnnError::ParamLengthMismatch { expected, got: buf.len() });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for (p, g) in layer.params_and_grads() {
                let n = p.len();
                f(p, g, &mut buf[offset..offset + n]);
                offset += n;
            }
        }
        Ok(())
    }

    /// Visits `(param, grad)` pairs in flattened order, allowing in-place
    /// optimizer updates without copying.
    pub fn for_each_param<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut Tensor, &mut Tensor),
    {
        for layer in &mut self.layers {
            for (p, g) in layer.params_and_grads() {
                f(p, g);
            }
        }
    }
}

impl std::fmt::Debug for Net {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Net").field("name", &self.name).field("layers", &self.layers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{InnerProduct, Relu};
    use shmcaffe_tensor::init::Filler;

    fn tiny_net(seed: u64) -> Net {
        let mut net = Net::new("tiny");
        net.add(InnerProduct::new("fc1", 2, 4, Filler::Xavier, seed));
        net.add(Relu::new("r"));
        net.add(InnerProduct::new("fc2", 4, 3, Filler::Xavier, seed));
        net
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_net(0);
        let x = Tensor::zeros(&[5, 2]);
        let y = net.forward(&x, Phase::Test).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
    }

    #[test]
    fn param_roundtrip() {
        let mut net = tiny_net(0);
        let n = net.param_len();
        assert_eq!(n, 2 * 4 + 4 + 4 * 3 + 3);
        let mut buf = vec![0.0f32; n];
        net.copy_weights_to(&mut buf).unwrap();
        let mut net2 = tiny_net(99);
        net2.load_weights_from(&buf).unwrap();
        let mut buf2 = vec![0.0f32; n];
        net2.copy_weights_to(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn wrong_length_is_rejected() {
        let mut net = tiny_net(0);
        let mut small = vec![0.0f32; 3];
        assert!(net.copy_weights_to(&mut small).is_err());
        assert!(net.load_weights_from(&small).is_err());
        assert!(net.copy_grads_to(&mut small).is_err());
        assert!(net.load_grads_from(&small).is_err());
    }

    #[test]
    fn loss_decreases_under_gradient_descent() {
        let mut net = tiny_net(7);
        // Simple separable batch.
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, -1.0, -1.0], &[3, 2]).unwrap();
        let labels = vec![0usize, 1, 2];
        let (loss0, _) = net.forward_loss(&x, &labels, Phase::Train).unwrap();
        for _ in 0..50 {
            net.zero_grads();
            let (_, _) = net.forward_loss(&x, &labels, Phase::Train).unwrap();
            net.backward_from_loss(&labels).unwrap();
            net.for_each_param(|p, g| {
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data().iter()) {
                    *pv -= 0.5 * gv;
                }
            });
        }
        let (loss_end, logits) = net.forward_loss(&x, &labels, Phase::Test).unwrap();
        assert!(loss_end < loss0 * 0.5, "loss {loss0} -> {loss_end}");
        assert_eq!(Net::accuracy(&logits, &labels, 1), 1.0);
    }

    #[test]
    fn backward_requires_forward_loss() {
        let mut net = tiny_net(0);
        assert!(net.backward_from_loss(&[0]).is_err());
    }

    #[test]
    fn grads_roundtrip() {
        let mut net = tiny_net(3);
        let x = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]).unwrap();
        net.forward_loss(&x, &[1], Phase::Train).unwrap();
        net.backward_from_loss(&[1]).unwrap();
        let n = net.param_len();
        let mut g = vec![0.0f32; n];
        net.copy_grads_to(&mut g).unwrap();
        assert!(g.iter().any(|&v| v != 0.0));
        let doubled: Vec<f32> = g.iter().map(|v| v * 2.0).collect();
        net.load_grads_from(&doubled).unwrap();
        let mut g2 = vec![0.0f32; n];
        net.copy_grads_to(&mut g2).unwrap();
        for (a, b) in g.iter().zip(g2.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
        net.zero_grads();
        net.copy_grads_to(&mut g2).unwrap();
        assert!(g2.iter().all(|&v| v == 0.0));
    }
}
