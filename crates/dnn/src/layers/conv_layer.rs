//! 2-D convolution layer built on the fused im2col → packed-GEMM kernel.

use shmcaffe_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dGeometry};
use shmcaffe_tensor::init::{seeded_rng, Filler};
use shmcaffe_tensor::Tensor;

use super::inner_product::hash_name;
use crate::{DnnError, Layer, Phase};

/// A 2-D convolution layer with square or rectangular kernels.
///
/// Input `(N, C_in, H, W)` → output `(N, C_out, H_out, W_out)`.
///
/// # Example
///
/// ```rust
/// use shmcaffe_dnn::layers::Conv2d;
/// use shmcaffe_dnn::{Layer, Phase};
/// use shmcaffe_tensor::{Tensor, init::Filler, conv::Conv2dGeometry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = Conv2dGeometry::square(1, 8, 3, 1, 1);
/// let mut conv = Conv2d::new("conv1", geom, 4, Filler::Msra, 1)?;
/// let x = Tensor::zeros(&[2, 1, 8, 8]);
/// let y = conv.forward(&x, Phase::Train)?;
/// assert_eq!(y.dims(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    geom: Conv2dGeometry,
    out_channels: usize,
    out_h: usize,
    out_w: usize,
    weights: Tensor,
    bias: Tensor,
    d_weights: Tensor,
    d_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry does not produce a valid output.
    pub fn new(
        name: &str,
        geom: Conv2dGeometry,
        out_channels: usize,
        filler: Filler,
        seed: u64,
    ) -> Result<Self, DnnError> {
        let out_h = geom.out_h()?;
        let out_w = geom.out_w()?;
        let k = geom.col_rows();
        // The fused conv kernels draw scratch from the shared per-thread
        // workspace arena, so the layer itself carries no column buffer.
        let mut weights =
            Tensor::zeros(&[out_channels, geom.in_channels, geom.kernel_h, geom.kernel_w]);
        let mut rng = seeded_rng(seed ^ hash_name(name));
        filler.fill(&mut rng, k, weights.data_mut());
        Ok(Conv2d {
            name: name.to_string(),
            geom,
            out_channels,
            out_h,
            out_w,
            weights,
            bias: Tensor::zeros(&[out_channels]),
            d_weights: Tensor::zeros(&[
                out_channels,
                geom.in_channels,
                geom.kernel_h,
                geom.kernel_w,
            ]),
            d_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
        })
    }

    /// The layer's window geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) -> Result<usize, DnnError> {
        let dims = input.dims();
        if dims.len() != 4
            || dims[1] != self.geom.in_channels
            || dims[2] != self.geom.in_h
            || dims[3] != self.geom.in_w
        {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!(
                    "expected (N, {}, {}, {}), got {:?}",
                    self.geom.in_channels, self.geom.in_h, self.geom.in_w, dims
                ),
            });
        }
        Ok(dims[0])
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let batch = self.check_input(input)?;
        let mut output = Tensor::zeros(&[batch, self.out_channels, self.out_h, self.out_w]);
        conv2d_forward(
            &self.geom,
            batch,
            self.out_channels,
            input.data(),
            self.weights.data(),
            self.bias.data(),
            output.data_mut(),
        );
        self.cached_input = Some(input.clone());
        Ok(output)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let input = self.cached_input.take().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward called before forward".to_string(),
        })?;
        let batch = input.dims()[0];
        let expected = batch * self.out_channels * self.out_h * self.out_w;
        if d_output.len() != expected {
            self.cached_input = Some(input);
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!("d_output length {} != {expected}", d_output.len()),
            });
        }
        let mut d_input = Tensor::zeros(input.dims());
        conv2d_backward(
            &self.geom,
            batch,
            self.out_channels,
            input.data(),
            self.weights.data(),
            d_output.data(),
            self.d_weights.data_mut(),
            self.d_bias.data_mut(),
            d_input.data_mut(),
        );
        self.cached_input = Some(input);
        Ok(d_input)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.weights, &mut self.d_weights), (&mut self.bias, &mut self.d_bias)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones_conv(geom: Conv2dGeometry, out_channels: usize) -> Conv2d {
        let mut c = Conv2d::new("c", geom, out_channels, Filler::Constant(1.0), 0).unwrap();
        c.bias.fill_zero();
        c
    }

    #[test]
    fn forward_shape_and_values() {
        let geom = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let mut conv = ones_conv(geom, 1);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let geom = Conv2dGeometry::square(3, 4, 3, 1, 1);
        let mut conv = ones_conv(geom, 2);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(conv.forward(&x, Phase::Train).is_err());
    }

    #[test]
    fn rejects_invalid_geometry() {
        let geom = Conv2dGeometry::square(1, 2, 5, 1, 0);
        assert!(Conv2d::new("c", geom, 1, Filler::Xavier, 0).is_err());
    }

    #[test]
    fn multiple_backwards_accumulate() {
        let geom = Conv2dGeometry::square(1, 3, 3, 1, 0);
        let mut conv = ones_conv(geom, 1);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let d = Tensor::ones(&[1, 1, 1, 1]);
        conv.forward(&x, Phase::Train).unwrap();
        conv.backward(&d).unwrap();
        let first = conv.d_weights.sum();
        conv.forward(&x, Phase::Train).unwrap();
        conv.backward(&d).unwrap();
        assert!((conv.d_weights.sum() - 2.0 * first).abs() < 1e-5);
    }

    #[test]
    fn param_len_counts_weights_and_bias() {
        let geom = Conv2dGeometry::square(3, 8, 3, 1, 1);
        let mut conv = Conv2d::new("c", geom, 16, Filler::Msra, 0).unwrap();
        assert_eq!(conv.param_len(), 16 * 3 * 3 * 3 + 16);
    }
}
