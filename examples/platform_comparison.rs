//! A miniature of the paper's §IV-C comparison: all five platforms
//! training Inception_v1 (calibrated timing model) on 8 GPUs, with the
//! per-iteration computation/communication breakdown and projected
//! 15-epoch training times.
//!
//! Run with `cargo run --release --example platform_comparison`.

use shmcaffe_repro::models::CnnModel;
use shmcaffe_repro::models::WorkloadModel;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::{
    CaffeMpi, CaffeSsgd, MpiCaffe, ShmCaffeA, ShmCaffeH, SsgdConfig,
};
use shmcaffe_repro::platform::report::TrainingReport;
use shmcaffe_repro::platform::trainer::ModeledTrainerFactory;
use shmcaffe_repro::simnet::jitter::JitterModel;
use shmcaffe_repro::simnet::topology::ClusterSpec;

const GPUS: usize = 8;
const ITERS: usize = 100;

fn factory() -> ModeledTrainerFactory {
    ModeledTrainerFactory::new(
        WorkloadModel::from_cnn(CnnModel::InceptionV1),
        JitterModel::hpc_default(),
        42,
    )
}

fn describe(name: &str, report: &TrainingReport) {
    // 15 ImageNet epochs at batch 60 per worker.
    let iters_per_worker = (1_281_167.0 * 15.0) / (GPUS as f64 * 60.0);
    let hours = iters_per_worker * report.mean_iter_ms() / 3.6e6;
    println!(
        "{name:<11}  comp {:>6.1} ms  comm {:>6.1} ms  ({:>4.1}%)  => 15 epochs in {:>5.2} h",
        report.mean_comp_ms(),
        report.mean_comm_ms(),
        report.comm_ratio() * 100.0,
        hours
    );
}

fn main() {
    println!("platform comparison: Inception_v1, {GPUS} GPUs, {ITERS} measured iterations\n");
    let spec = ClusterSpec::paper_testbed(2);
    let ssgd = SsgdConfig { max_iters: ITERS, ..Default::default() };
    let shm = ShmCaffeConfig { max_iters: ITERS, progress_every: 25, ..Default::default() };

    describe("Caffe", &CaffeSsgd::new(spec, GPUS, ssgd).run(factory()).expect("runs"));
    describe("Caffe-MPI", &CaffeMpi::new(spec, GPUS, ssgd).run(factory()).expect("runs"));
    describe("MPICaffe", &MpiCaffe::new(spec, GPUS, ssgd).run(factory()).expect("runs"));
    describe("ShmCaffe-A", &ShmCaffeA::new(spec, GPUS, shm).run(factory()).expect("runs"));
    describe("ShmCaffe-H", &ShmCaffeH::new(spec, 2, 4, shm).run(factory()).expect("runs"));

    println!("\n(the full Table II / Fig 9 sweep lives in `cargo run -p shmcaffe-bench --bin fig09_table2_training_time`)");
}
