//! Virtual-time message passing between simulated processes.
//!
//! A [`SimChannel`] is an unbounded MPMC queue whose `recv` blocks in
//! *virtual* time: the receiver is parked and the simulation proceeds with
//! other processes until a message arrives. Delivery is instantaneous in
//! virtual time (the receiver resumes no earlier than the send time);
//! transmission *cost* is modelled separately by
//! [`crate::resource::BandwidthResource`] reservations.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::explore::{ChoiceKind, SchedEvent};
use crate::sched::Pid;
use crate::{SimContext, SimDuration, SimTime};

/// Process-wide channel identity counter. The ids only serve the schedule
/// explorer's within-run independence relation (same channel ⇒ dependent),
/// so cross-run stability is not required — they never appear in traces or
/// state fingerprints.
static NEXT_CHANNEL_ID: AtomicU64 = AtomicU64::new(1);

struct Envelope<T> {
    sent_at: SimTime,
    /// Sending process, for the explorer's delivery-window grouping:
    /// per-sender FIFO is a delivery guarantee, so only the *first*
    /// in-flight message of each distinct sender is a delivery candidate.
    from: Pid,
    /// Sender's vector-clock stamp, joined into the receiver on delivery —
    /// the channel send→recv happens-before edge of the race detector.
    #[cfg(feature = "race-detect")]
    stamp: crate::race::VectorClock,
    msg: T,
}

struct ChannelState<T> {
    queue: VecDeque<Envelope<T>>,
    waiters: Vec<Pid>,
}

/// An unbounded virtual-time channel.
///
/// Cloning produces another handle to the same channel; any process may send
/// or receive.
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::{Simulation, SimDuration};
/// use shmcaffe_simnet::channel::SimChannel;
///
/// let mut sim = Simulation::new();
/// let ch: SimChannel<u32> = SimChannel::new("demo");
/// let tx = ch.clone();
/// sim.spawn("producer", move |ctx| {
///     ctx.sleep(SimDuration::from_millis(5));
///     tx.send(&ctx, 42);
/// });
/// sim.spawn("consumer", move |ctx| {
///     let v = ch.recv(&ctx);
///     assert_eq!(v, 42);
///     assert_eq!(ctx.now().as_millis_f64(), 5.0);
/// });
/// sim.run();
/// ```
pub struct SimChannel<T> {
    name: String,
    id: u64,
    state: Arc<Mutex<ChannelState<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel { name: self.name.clone(), id: self.id, state: Arc::clone(&self.state) }
    }
}

impl<T> std::fmt::Debug for SimChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimChannel").field("name", &self.name).finish()
    }
}

impl<T: Send + 'static> SimChannel<T> {
    /// Creates a new empty channel. The name is used in diagnostics.
    pub fn new(name: &str) -> Self {
        SimChannel {
            name: name.to_string(),
            id: NEXT_CHANNEL_ID.fetch_add(1, Ordering::Relaxed),
            state: Arc::new(Mutex::new(ChannelState {
                queue: VecDeque::new(),
                waiters: Vec::new(),
            })),
        }
    }

    /// Picks which queued envelope a receive takes, honouring the schedule
    /// explorer's delivery choice point.
    ///
    /// The queue is sorted by send time (sends happen in non-decreasing
    /// virtual time), and any message sent no later than the delivery
    /// instant `max(now, oldest send time)` is equally "already in flight" —
    /// their arrival order at this receiver is a race the explorer may
    /// resolve either way, subject to per-sender FIFO. The default (index 0
    /// = the oldest message) reproduces the deterministic schedule.
    /// `limit` caps eligible send times (the deadline for `recv_timeout`,
    /// `now` for `try_recv`).
    fn pick_index(
        &self,
        ctx: &SimContext,
        st: &ChannelState<T>,
        limit: Option<SimTime>,
    ) -> Option<usize> {
        let front = st.queue.front()?;
        if limit.is_some_and(|l| front.sent_at > l) {
            return None;
        }
        if !ctx.core.is_exploring() {
            return Some(0);
        }
        let mut cap = front.sent_at.max(ctx.now());
        if let Some(l) = limit {
            cap = cap.min(l);
        }
        let mut cands: Vec<usize> = Vec::new();
        let mut senders: Vec<Pid> = Vec::new();
        for (i, env) in st.queue.iter().enumerate() {
            if env.sent_at > cap {
                break;
            }
            if !senders.contains(&env.from) {
                senders.push(env.from);
                cands.push(i);
            }
        }
        let pick = ctx.core.choose(ChoiceKind::Deliver, cands.len(), 0);
        Some(cands[pick])
    }

    /// Sends a message stamped with the sender's current virtual time and
    /// wakes one parked receiver (if any).
    ///
    /// Which receiver is woken when several are parked is a schedule choice
    /// point; the default (most recently parked) reproduces the historical
    /// deterministic schedule.
    pub fn send(&self, ctx: &SimContext, msg: T) {
        let now = ctx.now();
        let env = Envelope {
            sent_at: now,
            from: ctx.pid(),
            #[cfg(feature = "race-detect")]
            stamp: ctx.vc_stamp(),
            msg,
        };
        ctx.core.note_event(SchedEvent::Chan { chan: self.id });
        let waiter = {
            let mut st = self.state.lock();
            st.queue.push_back(env);
            let n = st.waiters.len();
            if n == 0 {
                None
            } else {
                let idx = ctx.core.choose(ChoiceKind::Wake, n, n - 1);
                Some(st.waiters.remove(idx))
            }
        };
        if let Some(pid) = waiter {
            ctx.core.wake(pid, now);
        }
    }

    /// Receives the oldest message, blocking in virtual time until one is
    /// available. The receiver's clock advances to at least the send time.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks while waiting (no live process can
    /// ever send).
    pub fn recv(&self, ctx: &SimContext) -> T {
        loop {
            {
                let mut st = self.state.lock();
                if let Some(i) = self.pick_index(ctx, &st, None) {
                    let env = st.queue.remove(i).expect("candidate index in range");
                    drop(st);
                    ctx.core.note_event(SchedEvent::Chan { chan: self.id });
                    if env.sent_at > ctx.now() {
                        ctx.sleep_until(env.sent_at);
                    }
                    #[cfg(feature = "race-detect")]
                    ctx.vc_join(&env.stamp);
                    return env.msg;
                }
                st.waiters.push(ctx.pid());
            }
            // Park until a sender wakes us; loop in case another receiver
            // stole the message first.
            ctx.core.block(ctx.pid());
        }
    }

    /// Receives the oldest message, blocking in virtual time for at most
    /// `timeout`. Returns `None` once the deadline passes with no message
    /// sent at or before it (the caller's clock then rests at the deadline).
    ///
    /// Unlike [`SimChannel::recv`], a process parked here is never counted
    /// as blocked by the deadlock detector, so waiting on a dead peer times
    /// out instead of aborting the simulation.
    pub fn recv_timeout(&self, ctx: &SimContext, timeout: SimDuration) -> Option<T> {
        let deadline = ctx.now() + timeout;
        loop {
            {
                let mut st = self.state.lock();
                if let Some(i) = self.pick_index(ctx, &st, Some(deadline)) {
                    let env = st.queue.remove(i).expect("candidate index in range");
                    drop(st);
                    ctx.core.note_event(SchedEvent::Chan { chan: self.id });
                    if env.sent_at > ctx.now() {
                        ctx.sleep_until(env.sent_at);
                    }
                    #[cfg(feature = "race-detect")]
                    ctx.vc_join(&env.stamp);
                    return Some(env.msg);
                }
                if ctx.now() >= deadline {
                    return None;
                }
                st.waiters.push(ctx.pid());
            }
            ctx.core.block_until(ctx.pid(), deadline);
            // Scrub our waiter registration: if we were woken by the
            // deadline (not a sender), a stale entry would soak up a
            // future wake meant for a live receiver.
            let mut st = self.state.lock();
            if let Some(i) = st.waiters.iter().position(|&p| p == ctx.pid()) {
                st.waiters.remove(i);
            }
        }
    }

    /// Non-blocking receive of a message already sent at or before `now`.
    pub fn try_recv(&self, ctx: &SimContext) -> Option<T> {
        let env = {
            let mut st = self.state.lock();
            let now = ctx.now();
            match self.pick_index(ctx, &st, Some(now)) {
                Some(i) => st.queue.remove(i),
                None => None,
            }
        }?;
        ctx.core.note_event(SchedEvent::Chan { chan: self.id });
        #[cfg(feature = "race-detect")]
        ctx.vc_join(&env.stamp);
        Some(env.msg)
    }

    /// Number of queued messages (for diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimDuration, Simulation};
    use parking_lot::Mutex as PMutex;

    #[test]
    fn recv_blocks_until_send_time() {
        let mut sim = Simulation::new();
        let ch: SimChannel<&'static str> = SimChannel::new("t");
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(7));
            tx.send(&ctx, "hello");
        });
        sim.spawn("rx", move |ctx| {
            assert_eq!(ch.recv(&ctx), "hello");
            assert_eq!(ctx.now().as_millis_f64(), 7.0);
        });
        sim.run();
    }

    #[test]
    fn messages_arrive_fifo() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u32> = SimChannel::new("fifo");
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            for i in 0..5 {
                tx.send(&ctx, i);
                ctx.sleep(SimDuration::from_millis(1));
            }
        });
        sim.spawn("rx", move |ctx| {
            for i in 0..5 {
                assert_eq!(ch.recv(&ctx), i);
            }
        });
        sim.run();
    }

    #[test]
    fn late_receiver_does_not_go_backwards_in_time() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u8> = SimChannel::new("late");
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            tx.send(&ctx, 1);
        });
        sim.spawn("rx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(100));
            ch.recv(&ctx);
            // Message was sent at t=0 but we were already at t=100.
            assert_eq!(ctx.now().as_millis_f64(), 100.0);
        });
        sim.run();
    }

    #[test]
    fn multiple_receivers_each_get_one() {
        let got = std::sync::Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let ch: SimChannel<u32> = SimChannel::new("mpmc");
        for i in 0..3 {
            let ch = ch.clone();
            let got = std::sync::Arc::clone(&got);
            sim.spawn(&format!("rx{i}"), move |ctx| {
                // NB: receive *before* taking the real mutex — holding an OS
                // lock across a virtual-time block would deadlock the
                // cooperative scheduler.
                let v = ch.recv(&ctx);
                got.lock().push(v);
            });
        }
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            for v in [10, 20, 30] {
                ctx.sleep(SimDuration::from_millis(1));
                tx.send(&ctx, v);
            }
        });
        sim.run();
        let mut v = got.lock().clone();
        v.sort();
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn try_recv_only_sees_past_messages() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u8> = SimChannel::new("try");
        let tx = ch.clone();
        sim.spawn("p", move |ctx| {
            assert!(tx.try_recv(&ctx).is_none());
            tx.send(&ctx, 9);
            assert_eq!(tx.try_recv(&ctx), Some(9));
        });
        sim.run();
        assert!(ch.is_empty());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_with_no_sender_deadlocks() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u8> = SimChannel::new("dead");
        sim.spawn("rx", move |ctx| {
            ch.recv(&ctx);
        });
        sim.run();
    }

    #[test]
    fn recv_timeout_expires_at_deadline_without_deadlock() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u8> = SimChannel::new("to");
        sim.spawn("rx", move |ctx| {
            let got = ch.recv_timeout(&ctx, SimDuration::from_millis(25));
            assert_eq!(got, None);
            assert_eq!(ctx.now().as_millis_f64(), 25.0);
        });
        sim.run();
    }

    #[test]
    fn recv_timeout_returns_early_message() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u8> = SimChannel::new("to2");
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(4));
            tx.send(&ctx, 7);
        });
        sim.spawn("rx", move |ctx| {
            let got = ch.recv_timeout(&ctx, SimDuration::from_millis(25));
            assert_eq!(got, Some(7));
            assert_eq!(ctx.now().as_millis_f64(), 4.0);
        });
        sim.run();
    }

    #[test]
    fn recv_timeout_ignores_messages_sent_after_deadline() {
        let mut sim = Simulation::new();
        let ch: SimChannel<u8> = SimChannel::new("to3");
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(50));
            tx.send(&ctx, 9);
        });
        let rx = ch.clone();
        sim.spawn("rx", move |ctx| {
            assert_eq!(rx.recv_timeout(&ctx, SimDuration::from_millis(10)), None);
            assert_eq!(ctx.now().as_millis_f64(), 10.0);
            // The late message is still delivered to a subsequent receive.
            assert_eq!(rx.recv(&ctx), 9);
            assert_eq!(ctx.now().as_millis_f64(), 50.0);
        });
        sim.run();
    }

    #[test]
    fn recv_timeout_is_deterministic() {
        let run_once = || {
            let log: Arc<PMutex<Vec<(u8, u64)>>> = Arc::new(PMutex::new(Vec::new()));
            let mut sim = Simulation::new();
            let ch: SimChannel<u8> = SimChannel::new("det");
            let tx = ch.clone();
            sim.spawn("tx", move |ctx| {
                for v in [1u8, 2, 3] {
                    ctx.sleep(SimDuration::from_millis(8));
                    tx.send(&ctx, v);
                }
            });
            let log2 = Arc::clone(&log);
            sim.spawn("rx", move |ctx| loop {
                match ch.recv_timeout(&ctx, SimDuration::from_millis(5)) {
                    Some(v) => log2.lock().push((v, ctx.now().as_nanos())),
                    None => {
                        log2.lock().push((0, ctx.now().as_nanos()));
                        if ctx.now().as_millis_f64() >= 30.0 {
                            break;
                        }
                    }
                }
            });
            sim.run();
            let out = log.lock().clone();
            out
        };
        let a = run_once();
        assert_eq!(run_once(), a);
        assert!(a.iter().any(|&(v, _)| v == 3));
    }
}
