//! Chaos test: a seeded fault plan kills one of four workers mid-run.
//!
//! The elastic-averaging platform (ShmCaffe-A) must survive — the server
//! evicts the dead worker's leased buffer, the survivors complete their
//! full budget, and the final loss matches a fault-free run — while the
//! synchronous SSGD platform must abort with an error rather than hang.

use shmcaffe::platforms::{MpiCaffe, ShmCaffeA, SsgdConfig};
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe::{PlatformError, ShmCaffeConfig, TrainingReport};
use shmcaffe_models::WorkloadModel;
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, NodeId};
use shmcaffe_simnet::{SimDuration, SimTime};
use shmcaffe_smb::SmbServerConfig;

const N_WORKERS: usize = 4;
const MAX_ITERS: usize = 30;
const CRASH_RANK: usize = 1;

fn workload() -> WorkloadModel {
    WorkloadModel::custom("chaos", 1_000_000, SimDuration::from_millis(10))
}

fn factory() -> ModeledTrainerFactory {
    ModeledTrainerFactory::new(workload(), JitterModel::NONE, 7)
}

fn cfg() -> ShmCaffeConfig {
    ShmCaffeConfig {
        max_iters: MAX_ITERS,
        progress_every: 5,
        jitter: JitterModel::NONE,
        ..Default::default()
    }
}

/// Kill worker 1 at t = 120 ms, roughly a third of the way into the run.
fn crash_plan() -> FaultPlan {
    FaultPlan::new(9).crash_worker(CRASH_RANK, SimTime::from_millis(120))
}

/// Short lease so the ~300 ms that remain after the crash are enough for
/// the collector to evict the dead worker's buffer.
fn short_leases() -> SmbServerConfig {
    SmbServerConfig { lease_timeout: SimDuration::from_millis(100), ..Default::default() }
}

fn run_faulted() -> TrainingReport {
    ShmCaffeA::new(ClusterSpec::paper_testbed(1), N_WORKERS, cfg())
        .with_fault_plan(crash_plan())
        .with_server_config(short_leases())
        .run(factory())
        .expect("elastic platform survives a worker crash")
}

#[test]
fn shmcaffe_a_survives_worker_crash() {
    let faulted = run_faulted();
    let clean = ShmCaffeA::new(ClusterSpec::paper_testbed(1), N_WORKERS, cfg())
        .run(factory())
        .expect("fault-free run");

    // The dead worker is reported as crashed, short of its budget.
    assert_eq!(faulted.crashed_workers(), 1);
    let dead = &faulted.workers[CRASH_RANK];
    assert!(dead.crashed);
    assert!(dead.iters < MAX_ITERS as u64, "crashed at iter {}", dead.iters);

    // Every survivor completes its full budget.
    for w in faulted.workers.iter().filter(|w| !w.crashed) {
        assert_eq!(w.iters, MAX_ITERS as u64, "rank {} shortchanged", w.rank);
    }

    // The collector still recovers the final model.
    assert!(faulted.final_weights.is_some());

    // Convergence is preserved: each survivor's final loss is within 10%
    // of its fault-free counterpart.
    for (f, c) in faulted.workers.iter().zip(clean.workers.iter()) {
        if f.crashed {
            continue;
        }
        let rel = ((f.final_loss - c.final_loss) / c.final_loss).abs();
        assert!(
            rel < 0.10,
            "rank {}: faulted loss {} vs clean {} ({:.1}% off)",
            f.rank,
            f.final_loss,
            c.final_loss,
            rel * 100.0
        );
    }
}

#[test]
fn faulted_runs_are_bit_identical_given_the_seed() {
    let a = run_faulted();
    let b = run_faulted();
    assert_eq!(a.wall, b.wall);
    for (x, y) in a.workers.iter().zip(b.workers.iter()) {
        assert_eq!(x.crashed, y.crashed);
        assert_eq!(x.iters, y.iters);
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.final_loss, y.final_loss);
        assert_eq!(x.faults, y.faults);
        assert_eq!(x.retries, y.retries);
    }
}

/// Data-corruption chaos: random wire bit-flips on every retrying
/// transfer plus scheduled DRAM decays on the primary memory server, with
/// the CRC page grid, background scrubbers, and a standby mirror enabled.
fn corruption_spec() -> ClusterSpec {
    ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) }
}

fn corruption_plan() -> FaultPlan {
    let primary = NodeId(corruption_spec().gpu_nodes);
    FaultPlan::new(23)
        .with_wire_flip_prob(0.01)
        .with_torn_write_prob(0.01)
        .decay_dram(primary, SimTime::from_millis(100))
        .decay_dram(primary, SimTime::from_millis(180))
        .decay_dram(primary, SimTime::from_millis(260))
}

fn paged_scrubbing() -> SmbServerConfig {
    SmbServerConfig {
        page_elems: 16_384,
        scrub_interval: SimDuration::from_millis(5),
        ..Default::default()
    }
}

fn run_corrupted() -> TrainingReport {
    ShmCaffeA::new(corruption_spec(), N_WORKERS, cfg())
        .with_fault_plan(corruption_plan())
        .with_server_config(paged_scrubbing())
        .with_standby(SimDuration::from_millis(10))
        .run(factory())
        .expect("CRC grid + standby repair must absorb the corruption")
}

/// Under seeded wire flips and DRAM decay, every corruption is detected
/// (none is silent) and every poisoned page is repaired from the standby:
/// the fleet completes its full budget and converges like a clean run.
#[test]
fn shmcaffe_a_detects_and_repairs_seeded_corruption() {
    let faulted = run_corrupted();
    let clean = ShmCaffeA::new(corruption_spec(), N_WORKERS, cfg())
        .with_server_config(paged_scrubbing())
        .with_standby(SimDuration::from_millis(10))
        .run(factory())
        .expect("fault-free run");

    // Nothing dies: corruption is a data-plane fault, not a process fault.
    assert_eq!(faulted.crashed_workers(), 0);
    for w in &faulted.workers {
        assert_eq!(w.iters, MAX_ITERS as u64, "rank {} shortchanged", w.rank);
    }

    // The faults actually fired and every one was caught end-to-end.
    assert!(
        faulted.total_corruptions_detected() >= 1,
        "the seeded plan must produce detections, got report {faulted:?}"
    );
    assert!(
        faulted.total_corruptions_repaired() >= 1,
        "a DRAM decay must have been repaired from the standby, got {} detected / {} repaired",
        faulted.total_corruptions_detected(),
        faulted.total_corruptions_repaired()
    );
    assert_eq!(
        faulted.total_corruptions_unrepairable(),
        0,
        "with a standby mirror no corruption may be unrepairable"
    );
    assert_eq!(clean.total_corruptions_detected(), 0, "clean run must see no corruption");

    // Convergence is preserved despite retried transfers and repaired
    // (possibly snapshot-stale) pages.
    for (f, c) in faulted.workers.iter().zip(clean.workers.iter()) {
        let rel = ((f.final_loss - c.final_loss) / c.final_loss).abs();
        assert!(
            rel < 0.10,
            "rank {}: corrupted loss {} vs clean {} ({:.1}% off)",
            f.rank,
            f.final_loss,
            c.final_loss,
            rel * 100.0
        );
    }
}

/// The corruption chaos run is bit-identical given the seed: detection
/// counts, repair counts, losses, and wall-clock all replay exactly.
#[test]
fn corrupted_runs_are_bit_identical_given_the_seed() {
    let a = run_corrupted();
    let b = run_corrupted();
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.total_corruptions_detected(), b.total_corruptions_detected());
    assert_eq!(a.total_corruptions_repaired(), b.total_corruptions_repaired());
    assert_eq!(a.total_corruptions_unrepairable(), b.total_corruptions_unrepairable());
    for (x, y) in a.workers.iter().zip(b.workers.iter()) {
        assert_eq!(x.iters, y.iters);
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.final_loss, y.final_loss);
        assert_eq!(x.faults, y.faults);
        assert_eq!(x.retries, y.retries);
        assert_eq!(x.corruptions_detected, y.corruptions_detected);
        assert_eq!(x.corruptions_repaired, y.corruptions_repaired);
    }
}

#[test]
fn synchronous_platform_aborts_instead_of_hanging() {
    let err = MpiCaffe::new(
        ClusterSpec::paper_testbed(1),
        N_WORKERS,
        SsgdConfig { max_iters: MAX_ITERS, ..Default::default() },
    )
    .with_fault_plan(crash_plan())
    .run(factory())
    .expect_err("SSGD cannot survive a dead rank");
    assert!(matches!(err, PlatformError::WorkerFailed(_)), "expected WorkerFailed, got {err:?}");
}
