//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! 1. `update_interval` sweep — communication every k-th iteration,
//! 2. `moving_rate` sweep — the elastic coefficient α,
//! 3. hide-the-global-read — the §III-G trade-off the paper decides
//!    against,
//! 4. straggler sensitivity — SSGD's max-of-N penalty vs SEASGD's
//!    indifference as jitter grows,
//! 5. multiple SMB servers — the paper's §V future work, implemented.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin ablations`.

use shmcaffe::config::ShmCaffeConfig;
use shmcaffe::platforms::{MpiCaffe, ShmCaffeA, SsgdConfig};
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe_bench::table::{ms, pct, Table};
use shmcaffe_models::{CnnModel, WorkloadModel};
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{SimDuration, Simulation};
use shmcaffe_smb::{ShardedClient, SmbCluster};

const ITERS: usize = 100;

fn factory(model: CnnModel, jitter: JitterModel) -> ModeledTrainerFactory {
    ModeledTrainerFactory::new(WorkloadModel::from_cnn(model), jitter, 42)
}

fn update_interval_sweep() {
    let mut table = Table::new(
        "Ablation 1: update_interval (ShmCaffe-A, ResNet_50, 16 GPUs)",
        &["interval", "comm (ms)", "iter (ms)", "comm ratio"],
    );
    for interval in [1usize, 2, 4, 8] {
        let cfg = ShmCaffeConfig {
            max_iters: ITERS,
            update_interval: interval,
            progress_every: 25,
            ..Default::default()
        };
        let report = ShmCaffeA::new(ClusterSpec::paper_testbed(4), 16, cfg)
            .run(factory(CnnModel::ResNet50, JitterModel::hpc_default()))
            .expect("platform runs");
        table.row_owned(vec![
            interval.to_string(),
            ms(report.mean_comm_ms()),
            ms(report.mean_iter_ms()),
            pct(report.comm_ratio()),
        ]);
    }
    table.print();
    println!("larger intervals amortise the exchange but increase staleness\n");
}

fn moving_rate_sweep() {
    // Timing is α-independent; what α changes is the elastic coupling.
    // Measure the consensus speed: how fast 4 drifting replicas collapse
    // onto the global buffer (smaller residual spread = stronger pull).
    let mut table = Table::new(
        "Ablation 2: moving_rate α (4 modeled workers, |W_g| RMS after 50 iters)",
        &["alpha", "global RMS", "verdict"],
    );
    for &alpha in &[0.05f32, 0.2, 0.5, 0.9] {
        let cfg = ShmCaffeConfig {
            max_iters: 50,
            moving_rate: alpha,
            progress_every: 10,
            ..Default::default()
        };
        let report = ShmCaffeA::new(ClusterSpec::paper_testbed(1), 4, cfg)
            .run(ModeledTrainerFactory::new(
                WorkloadModel::custom("drift", 1_000_000, SimDuration::from_millis(5)),
                JitterModel::NONE,
                42,
            ))
            .expect("platform runs");
        // Proxy for the residual: the global buffer norm (workers inject
        // deterministic pseudo-gradients; stronger coupling pulls W_g
        // along, weaker coupling leaves it near zero).
        let wg = report.final_weights.expect("weights recorded");
        let norm = (wg.iter().map(|v| (v * v) as f64).sum::<f64>() / wg.len() as f64).sqrt();
        let verdict = if norm.is_finite() && norm < 1.0 { "stable" } else { "DIVERGES" };
        table.row_owned(vec![format!("{alpha:.2}"), format!("{norm:.5}"), verdict.to_string()]);
    }
    table.print();
    println!("EASGD is only stable while N·α stays below ~2 (Zhang et al. scale");
    println!("α = β/N); with 4 workers, α ≥ 0.5 genuinely diverges — the paper's");
    println!("α = 0.2 at up to 16 workers sits near that boundary\n");
}

fn hide_read_ablation() {
    let mut table = Table::new(
        "Ablation 3: hiding the global-weight read (ShmCaffe-A, Inception_v1)",
        &["GPUs", "read visible (ms/iter)", "read hidden (ms/iter)", "hidden is stale?"],
    );
    for gpus in [2usize, 8, 16] {
        let run = |hide: bool| {
            let cfg = ShmCaffeConfig {
                max_iters: ITERS,
                hide_global_read: hide,
                progress_every: 25,
                ..Default::default()
            };
            ShmCaffeA::new(ClusterSpec::paper_testbed(4), gpus, cfg)
                .run(factory(CnnModel::InceptionV1, JitterModel::NONE))
                .expect("platform runs")
                .mean_iter_ms()
        };
        table.row_owned(vec![
            gpus.to_string(),
            ms(run(false)),
            ms(run(true)),
            "yes (one exchange old)".to_string(),
        ]);
    }
    table.print();
    println!("hiding the read buys little once the server saturates, and the");
    println!("paper rejects it anyway: stale W_g worsens convergence (§III-G)\n");
}

fn straggler_sensitivity() {
    let mut table = Table::new(
        "Ablation 4: straggler sensitivity (16 GPUs, Inception_v1)",
        &["jitter sigma", "SSGD iter (ms)", "SEASGD iter (ms)", "SSGD penalty"],
    );
    for &sigma in &[0.0f64, 0.05, 0.15, 0.3] {
        let jitter = if sigma == 0.0 { JitterModel::NONE } else { JitterModel::lognormal(sigma) };
        let ssgd = MpiCaffe::new(
            ClusterSpec::paper_testbed(4),
            16,
            SsgdConfig { max_iters: ITERS, ..Default::default() },
        )
        .run(factory(CnnModel::InceptionV1, jitter))
        .expect("platform runs")
        .mean_iter_ms();
        let cfg = ShmCaffeConfig { max_iters: ITERS, progress_every: 25, ..Default::default() };
        let async_ = ShmCaffeA::new(ClusterSpec::paper_testbed(4), 16, cfg)
            .run(factory(CnnModel::InceptionV1, jitter))
            .expect("platform runs")
            .mean_iter_ms();
        table.row_owned(vec![
            format!("{sigma:.2}"),
            ms(ssgd),
            ms(async_),
            format!("{:+.1}%", (ssgd / async_ - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!("SSGD waits for the slowest of 16 draws every iteration; SEASGD does not\n");
}

fn multi_smb_servers() {
    // The §V future work: shard the ResNet_50 parameter buffer over K
    // servers and run a 16-worker SEASGD-like exchange loop.
    let mut table = Table::new(
        "Ablation 5: multiple SMB servers (16 workers, ResNet_50-sized exchange)",
        &["servers", "mean exchange (ms)", "speedup vs 1"],
    );
    let exchange_ms = |servers: usize| -> f64 {
        let spec = ClusterSpec { memory_servers: servers, ..ClusterSpec::paper_testbed(4) };
        let rdma = RdmaFabric::new(Fabric::new(spec));
        let cluster = SmbCluster::new(rdma).expect("servers exist");
        let elems = 1024usize;
        let wire = CnnModel::ResNet50.param_bytes();
        let rounds = 20usize;
        let totals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let key_ch: SimChannel<shmcaffe_smb::ShardedKey> = SimChannel::new("keys");

        let mut sim = Simulation::new();
        for rank in 0..16usize {
            let cluster = cluster.clone();
            let totals = std::sync::Arc::clone(&totals);
            let key_ch = key_ch.clone();
            sim.spawn(&format!("w{rank}"), move |ctx| {
                let client = ShardedClient::new(&cluster, NodeId(rank / 4));
                let wg_key = if rank == 0 {
                    let key = client.create(&ctx, "wg", elems, Some(wire)).expect("fresh");
                    for _ in 1..16 {
                        key_ch.send(&ctx, key.clone());
                    }
                    key
                } else {
                    key_ch.recv(&ctx)
                };
                let wg = client.alloc(&ctx, &wg_key).expect("created");
                let dw_key =
                    client.create(&ctx, &format!("dw{rank}"), elems, Some(wire)).expect("unique");
                let dw = client.alloc(&ctx, &dw_key).expect("created");
                let mut buf = vec![0.0f32; elems];
                let mut total = SimDuration::ZERO;
                for _ in 0..rounds {
                    let t0 = ctx.now();
                    client.read(&ctx, &wg, &mut buf).expect("live");
                    client.write(&ctx, &dw, &buf).expect("live");
                    client.accumulate(&ctx, &dw, &wg).expect("live");
                    total += ctx.now() - t0;
                    // Simulated compute between exchanges.
                    ctx.sleep(SimDuration::from_millis(330));
                }
                totals.lock().push(total.as_millis_f64() / rounds as f64);
            });
        }
        sim.run();
        let v = totals.lock().clone();
        v.iter().sum::<f64>() / v.len() as f64
    };

    let base = exchange_ms(1);
    for servers in [1usize, 2, 4] {
        let t = if servers == 1 { base } else { exchange_ms(servers) };
        table.row_owned(vec![servers.to_string(), ms(t), format!("{:.2}x", base / t)]);
    }
    table.print();
    println!("sharding the buffer divides both the per-stream pacing and the");
    println!("per-server memory-bus load — the scalability relief §V anticipates\n");
}

fn main() {
    println!("ShmCaffe ablations (DESIGN.md §5)\n");
    update_interval_sweep();
    moving_rate_sweep();
    hide_read_ablation();
    straggler_sensitivity();
    multi_smb_servers();
}
