//! Failover chaos test: the primary memory server crashes mid-training
//! while a worker has also died and is rejoining.
//!
//! The platform runs with a standby memory server mirroring segments,
//! leases, and tombstones every 20 ms, and with the center variable
//! checkpointed every 10 iterations. The seeded plan kills worker 1 at
//! t = 100 ms (it rejoins from the checkpoint 100 ms later) and crashes the
//! primary memory server at t = 250 ms. Survivors must fail over to the
//! standby and complete their full budget, the rejoined worker must finish
//! too, the final loss must stay within 10% of a fault-free run, and the
//! whole timeline must be bit-identical across reruns (and thread counts —
//! `scripts/check.sh` runs this suite under `SHMCAFFE_THREADS=1` and `4`).

use shmcaffe::platforms::ShmCaffeA;
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe::{ShmCaffeConfig, TrainingReport};
use shmcaffe_models::WorkloadModel;
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, NodeId};
use shmcaffe_simnet::{SimDuration, SimTime};
use shmcaffe_smb::SmbServerConfig;

const N_WORKERS: usize = 4;
const MAX_ITERS: usize = 30;
const CRASH_RANK: usize = 1;

fn spec() -> ClusterSpec {
    ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) }
}

/// The first memory endpoint (the pair's primary) sits right after the
/// GPU nodes.
fn primary_node() -> NodeId {
    NodeId(spec().gpu_nodes)
}

fn factory() -> ModeledTrainerFactory {
    let workload = WorkloadModel::custom("failover", 1_000_000, SimDuration::from_millis(10));
    ModeledTrainerFactory::new(workload, JitterModel::NONE, 7)
}

fn cfg() -> ShmCaffeConfig {
    ShmCaffeConfig {
        max_iters: MAX_ITERS,
        progress_every: 5,
        checkpoint_every: 10,
        rejoin_delay: Some(SimDuration::from_millis(100)),
        jitter: JitterModel::NONE,
        ..Default::default()
    }
}

/// Worker 1 dies at 100 ms; the primary memory server crashes at 250 ms,
/// after the rejoin but with most of the run still ahead.
fn crash_plan() -> FaultPlan {
    FaultPlan::new(9)
        .crash_worker(CRASH_RANK, SimTime::from_millis(100))
        .crash_memory_server(primary_node(), SimTime::from_millis(250))
}

fn short_leases() -> SmbServerConfig {
    SmbServerConfig { lease_timeout: SimDuration::from_millis(100), ..Default::default() }
}

fn platform() -> ShmCaffeA {
    ShmCaffeA::new(spec(), N_WORKERS, cfg())
        .with_server_config(short_leases())
        .with_standby(SimDuration::from_millis(20))
}

fn run_faulted() -> TrainingReport {
    platform()
        .with_fault_plan(crash_plan())
        .run(factory())
        .expect("replicated platform survives the primary's crash")
}

#[test]
fn fleet_survives_memory_server_crash_and_worker_rejoins() {
    let faulted = run_faulted();
    let clean = platform().run(factory()).expect("fault-free run");

    // The crashed worker rejoined from the checkpoint and completed the
    // budget, with its re-entry staleness accounted.
    assert_eq!(faulted.crashed_workers(), 1);
    assert_eq!(faulted.rejoined_workers(), 1);
    let rejoined = &faulted.workers[CRASH_RANK];
    assert!(rejoined.crashed && rejoined.rejoined);
    assert_eq!(rejoined.iters, MAX_ITERS as u64);
    assert!(
        rejoined.rejoin_staleness_iters > 0,
        "the fleet ran ahead of the checkpoint while rank 1 was down"
    );

    // Every survivor completed its full budget on the standby.
    for w in faulted.workers.iter().filter(|w| !w.crashed) {
        assert_eq!(w.iters, MAX_ITERS as u64, "rank {} shortchanged", w.rank);
    }

    // The crash was observed and recovered from, not silently missed.
    assert!(faulted.total_faults() > 0, "someone must have hit the dead primary");
    assert!(faulted.total_retries() > 0, "failover recovers via the retry loop");

    // The collector recovered the final model from the standby.
    assert!(faulted.final_weights.is_some());

    // Convergence is preserved across the failover: final loss within 10%
    // of the fault-free counterpart, for survivors and the rejoiner alike.
    for (f, c) in faulted.workers.iter().zip(clean.workers.iter()) {
        let rel = ((f.final_loss - c.final_loss) / c.final_loss).abs();
        assert!(
            rel < 0.10,
            "rank {}: faulted loss {} vs clean {} ({:.1}% off)",
            f.rank,
            f.final_loss,
            c.final_loss,
            rel * 100.0
        );
    }
}

#[test]
fn failover_runs_are_bit_identical_given_the_seed() {
    let a = run_faulted();
    let b = run_faulted();
    assert_eq!(a.wall, b.wall);
    for (x, y) in a.workers.iter().zip(b.workers.iter()) {
        assert_eq!(x.crashed, y.crashed);
        assert_eq!(x.rejoined, y.rejoined);
        assert_eq!(x.rejoin_staleness_iters, y.rejoin_staleness_iters);
        assert_eq!(x.iters, y.iters);
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.final_loss, y.final_loss);
        assert_eq!(x.faults, y.faults);
        assert_eq!(x.retries, y.retries);
        assert_eq!(x.dropped_updates, y.dropped_updates);
    }
}

#[test]
fn standby_requires_two_memory_servers() {
    let one_server = ClusterSpec::paper_testbed(1);
    let err = ShmCaffeA::new(one_server, N_WORKERS, cfg())
        .with_standby(SimDuration::from_millis(20))
        .run(factory())
        .expect_err("one memory server cannot host a replicated pair");
    assert!(matches!(err, shmcaffe::PlatformError::BadConfig(_)), "{err:?}");
}
