//! NCCL-like intra-node collectives over the shared PCIe bus.
//!
//! ShmCaffe's Hybrid SGD "aggregates gradients using ncclAllReduce provided
//! by the NVIDIA NCCL library" among the GPUs of one node, and the BVLC
//! Caffe baseline uses the same library for its multi-GPU SSGD (paper
//! §III-D, §IV-C). This crate provides that collective layer:
//!
//! * [`IntraNodeGroup`] — a clique of GPU ranks pinned to one node,
//! * [`GpuComm`] — the per-GPU handle with [`GpuComm::all_reduce`]
//!   (ring reduce-scatter + allgather, NCCL's algorithm),
//!   [`GpuComm::broadcast`] and [`GpuComm::reduce`].
//!
//! Every hop of the ring is charged to the node's shared PCIe bus resource,
//! so the familiar `2·(N−1)·P / BW_bus` cost of a shared-bus ring emerges
//! from the simulation rather than being hard-coded. The paper notes
//! "ShmCaffe uses the PCI-E system bus for communication" intra-node.
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_simnet::{Simulation, topology::{ClusterSpec, Fabric, NodeId}};
//! use shmcaffe_collectives::IntraNodeGroup;
//!
//! let fabric = Fabric::new(ClusterSpec::paper_testbed(1));
//! let group = IntraNodeGroup::new(fabric, NodeId(0), 4);
//! let mut sim = Simulation::new();
//! for gpu in 0..4 {
//!     let mut comm = group.comm(gpu);
//!     sim.spawn(&format!("gpu{gpu}"), move |ctx| {
//!         let summed = comm.all_reduce(&ctx, vec![1.0, 2.0]);
//!         assert_eq!(summed, vec![4.0, 8.0]);
//!     });
//! }
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shmcaffe_mpi::{Comm, MpiData, MpiWorld};
use shmcaffe_simnet::topology::{Fabric, NodeId};
use shmcaffe_simnet::SimContext;

/// A clique of GPU ranks on one node sharing its PCIe bus.
///
/// Internally this reuses the MPI substrate with every rank mapped to the
/// same node, so all transfers route over the node's PCIe resource.
#[derive(Debug, Clone)]
pub struct IntraNodeGroup {
    world: MpiWorld,
    node: NodeId,
}

impl IntraNodeGroup {
    /// Creates a group of `n_gpus` ranks on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus == 0`.
    pub fn new(fabric: Fabric, node: NodeId, n_gpus: usize) -> Self {
        assert!(n_gpus > 0, "group needs at least one GPU");
        let world = MpiWorld::with_layout(fabric, vec![node; n_gpus]);
        IntraNodeGroup { world, node }
    }

    /// Number of GPUs in the group.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// The node hosting this group.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The per-GPU communicator handle.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn comm(&self, gpu: usize) -> GpuComm {
        GpuComm { comm: self.world.comm(gpu) }
    }
}

/// One GPU's handle to its intra-node collective group.
#[derive(Debug)]
pub struct GpuComm {
    comm: Comm,
}

impl GpuComm {
    /// This GPU's rank within the group.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// ncclAllReduce (sum): every GPU returns the element-wise sum.
    pub fn all_reduce(&mut self, ctx: &SimContext, data: Vec<f32>) -> Vec<f32> {
        self.comm.allreduce(ctx, data)
    }

    /// [`GpuComm::all_reduce`] with an explicit logical wire size.
    pub fn all_reduce_wire(
        &mut self,
        ctx: &SimContext,
        data: Vec<f32>,
        wire_bytes: u64,
    ) -> Vec<f32> {
        self.comm.allreduce_wire(ctx, data, wire_bytes)
    }

    /// ncclBcast: the root's buffer is distributed to every GPU.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast(&mut self, ctx: &SimContext, root: usize, data: Option<Vec<f32>>) -> Vec<f32> {
        self.comm.broadcast(ctx, root, data.map(MpiData::F32s)).into_f32s()
    }

    /// [`GpuComm::broadcast`] with an explicit logical wire size per hop.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast_wire(
        &mut self,
        ctx: &SimContext,
        root: usize,
        data: Option<Vec<f32>>,
        wire_bytes: u64,
    ) -> Vec<f32> {
        self.comm.broadcast_wire(ctx, root, data.map(MpiData::F32s), wire_bytes).into_f32s()
    }

    /// ncclReduce (sum) to `root`; the root returns `Some(sum)`.
    pub fn reduce(&mut self, ctx: &SimContext, root: usize, data: Vec<f32>) -> Option<Vec<f32>> {
        self.comm.reduce(ctx, root, data)
    }

    /// Group barrier.
    pub fn barrier(&mut self, ctx: &SimContext) {
        self.comm.barrier(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use shmcaffe_simnet::topology::ClusterSpec;
    use shmcaffe_simnet::Simulation;
    use std::sync::Arc;

    fn run_group<F>(n_gpus: usize, f: F) -> (Vec<Vec<f32>>, Fabric, shmcaffe_simnet::SimTime)
    where
        F: Fn(&SimContext, &mut GpuComm) -> Vec<f32> + Send + Sync + 'static,
    {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(1));
        let group = IntraNodeGroup::new(fabric.clone(), NodeId(0), n_gpus);
        let results: Arc<Mutex<Vec<Vec<f32>>>> = Arc::new(Mutex::new(vec![Vec::new(); n_gpus]));
        let f = Arc::new(f);
        let mut sim = Simulation::new();
        for gpu in 0..n_gpus {
            let mut comm = group.comm(gpu);
            let results = Arc::clone(&results);
            let f = Arc::clone(&f);
            sim.spawn(&format!("gpu{gpu}"), move |ctx| {
                let out = f(&ctx, &mut comm);
                results.lock()[gpu] = out;
            });
        }
        let end = sim.run();
        let out = results.lock().clone();
        (out, fabric, end)
    }

    #[test]
    fn all_reduce_sums_across_gpus() {
        for n in [1, 2, 3, 4] {
            let (got, _, _) = run_group(n, |ctx, comm| {
                let mine = vec![comm.rank() as f32; 7];
                comm.all_reduce(ctx, mine)
            });
            let expected: f32 = (0..n).map(|r| r as f32).sum();
            for r in got {
                assert_eq!(r, vec![expected; 7]);
            }
        }
    }

    #[test]
    fn traffic_lands_on_pcie_only() {
        let (_, fabric, _) =
            run_group(4, |ctx, comm| comm.all_reduce_wire(ctx, vec![1.0; 8], 8_000_000));
        assert!(fabric.pcie(NodeId(0)).total_bytes() > 0);
        assert_eq!(fabric.hca_tx(NodeId(0)).total_bytes(), 0);
    }

    #[test]
    fn shared_bus_ring_cost_matches_formula() {
        // 4 GPUs, logical P = 120 MB on a 12 GB/s bus:
        // total bus bytes = 2*(N-1)*P/N per rank * N = 2*(N-1)*P = 720 MB
        // => 60 ms of bus service.
        let (_, fabric, end) =
            run_group(4, |ctx, comm| comm.all_reduce_wire(ctx, vec![0.0; 4], 120_000_000));
        let bus = fabric.pcie(NodeId(0));
        let expected_bytes = 2 * 3 * 120_000_000u64;
        assert_eq!(bus.total_bytes(), expected_bytes);
        let ms = end.as_millis_f64();
        assert!((ms - 60.0).abs() < 2.0, "elapsed {ms}");
    }

    #[test]
    fn broadcast_and_reduce() {
        let (got, _, _) = run_group(4, |ctx, comm| {
            let data = (comm.rank() == 1).then(|| vec![5.0, 6.0]);
            let b = comm.broadcast(ctx, 1, data);
            let r = comm.reduce(ctx, 0, b.clone());
            if comm.rank() == 0 {
                r.unwrap()
            } else {
                b
            }
        });
        assert_eq!(got[0], vec![20.0, 24.0]);
        assert_eq!(got[2], vec![5.0, 6.0]);
    }

    #[test]
    fn barrier_holds_stragglers() {
        let (_, _, end) = run_group(3, |ctx, comm| {
            ctx.sleep(shmcaffe_simnet::SimDuration::from_millis(10 * (comm.rank() as u64 + 1)));
            comm.barrier(ctx);
            assert!(ctx.now().as_millis_f64() >= 30.0);
            vec![]
        });
        assert!(end.as_millis_f64() >= 30.0);
    }
}
