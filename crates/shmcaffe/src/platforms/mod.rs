//! Runnable distributed training platforms.
//!
//! | Platform | Paper role | Algorithm |
//! |---|---|---|
//! | [`ShmCaffeA`] | the contribution (async) | SEASGD over the SMB server |
//! | [`ShmCaffeH`] | the contribution (hybrid) | intra-node SSGD + inter-node SEASGD |
//! | [`CaffeSsgd`] | baseline | BVLC Caffe 1.0: single-process multi-GPU NCCL SSGD |
//! | [`CaffeMpi`] | baseline | Inspur Caffe-MPI: star-topology gradient gather / weight scatter over MPI |
//! | [`MpiCaffe`] | baseline | the authors' MPI_Allreduce SSGD port |
//!
//! Every platform consumes a [`crate::trainer::TrainerFactory`] and returns
//! a [`crate::report::TrainingReport`].

mod caffe;
mod caffe_mpi;
mod downpour;
mod mpicaffe;
mod shmcaffe_a;
mod shmcaffe_h;

pub use caffe::{CaffeSsgd, SsgdConfig};
pub use caffe_mpi::CaffeMpi;
pub use downpour::{DownpourAsgd, DownpourConfig};
pub use mpicaffe::MpiCaffe;
pub use shmcaffe_a::ShmCaffeA;
pub use shmcaffe_h::ShmCaffeH;

use std::panic::{catch_unwind, AssertUnwindSafe};

use shmcaffe_simnet::{SimTime, Simulation};

use crate::PlatformError;

/// Runs a simulation, converting any worker panic into a platform error.
pub(crate) fn run_sim(sim: Simulation) -> Result<SimTime, PlatformError> {
    catch_unwind(AssertUnwindSafe(move || sim.run())).map_err(|e| {
        let msg = e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "unknown worker panic".to_string());
        PlatformError::WorkerFailed(msg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_sim_converts_panics() {
        let mut sim = Simulation::new();
        sim.spawn("bad", |_| panic!("kaboom"));
        let err = run_sim(sim).unwrap_err();
        match err {
            PlatformError::WorkerFailed(msg) => assert!(msg.contains("kaboom")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn run_sim_passes_time_through() {
        let mut sim = Simulation::new();
        sim.spawn("ok", |ctx| ctx.sleep(shmcaffe_simnet::SimDuration::from_millis(3)));
        assert_eq!(run_sim(sim).unwrap().as_millis_f64(), 3.0);
    }
}
