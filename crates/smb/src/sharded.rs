//! Multiple SMB servers with sharded parameter buffers — the paper's
//! stated future work (§V: "we have a plan to improve the performance of
//! the SMB framework by using multiple SMB servers").
//!
//! A [`ShardedBuffer`] splits one logical parameter vector into contiguous
//! shards, one per memory server. A worker's read/write/accumulate fans
//! out to all shards *concurrently* (each shard op runs in a helper
//! process), so both the single-stream pacing limit and the per-server
//! memory-bus bottleneck divide by the server count.

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::SimContext;

use crate::{ShmKey, SmbBuffer, SmbClient, SmbError, SmbServer, SmbServerConfig};

/// A group of SMB servers, one per memory-server endpoint on the fabric.
#[derive(Debug, Clone)]
pub struct SmbCluster {
    servers: Vec<SmbServer>,
}

impl SmbCluster {
    /// Creates one server per memory-server endpoint with default config.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] if the fabric has none.
    pub fn new(rdma: RdmaFabric) -> Result<Self, SmbError> {
        Self::with_config(rdma, SmbServerConfig::default())
    }

    /// Creates one server per memory-server endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] if the fabric has none.
    pub fn with_config(rdma: RdmaFabric, config: SmbServerConfig) -> Result<Self, SmbError> {
        let count = rdma.fabric().memory_server_count();
        if count == 0 {
            return Err(SmbError::NoMemoryServer);
        }
        let servers = (0..count)
            .map(|i| SmbServer::with_config_at(rdma.clone(), config, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SmbCluster { servers })
    }

    /// Number of servers (shards).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster is empty (never true for a constructed cluster).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The individual servers.
    pub fn servers(&self) -> &[SmbServer] {
        &self.servers
    }
}

/// Keys of a sharded segment, one per server, in shard order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedKey(pub Vec<ShmKey>);

/// An allocated sharded buffer: per-shard SMB buffers plus the shard
/// boundaries of the logical vector.
#[derive(Debug, Clone)]
pub struct ShardedBuffer {
    shards: Vec<SmbBuffer>,
    /// Element offsets: shard `i` covers `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
}

impl ShardedBuffer {
    /// Total logical length in elements.
    pub fn len(&self) -> usize {
        *self.bounds.last().expect("bounds non-empty")
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Splits `total` into `parts` contiguous near-equal ranges.
fn split_bounds(total: usize, parts: usize) -> Vec<usize> {
    (0..=parts).map(|i| i * total / parts).collect()
}

/// A worker-side handle fanning operations out over an [`SmbCluster`].
#[derive(Debug, Clone)]
pub struct ShardedClient {
    clients: Vec<SmbClient>,
}

impl ShardedClient {
    /// Binds a client on `local` to every server of the cluster.
    pub fn new(cluster: &SmbCluster, local: NodeId) -> Self {
        ShardedClient {
            clients: cluster.servers().iter().map(|s| SmbClient::new(s.clone(), local)).collect(),
        }
    }

    /// Number of shards this client fans out to.
    pub fn shard_count(&self) -> usize {
        self.clients.len()
    }

    /// Creates a sharded segment of `elems` elements named `name` (each
    /// shard gets `name.shard<k>` on its server); `wire_bytes` is the
    /// logical size of the *whole* vector and is split proportionally.
    ///
    /// # Errors
    ///
    /// Propagates per-shard SMB errors.
    pub fn create(
        &self,
        ctx: &SimContext,
        name: &str,
        elems: usize,
        wire_bytes: Option<u64>,
    ) -> Result<ShardedKey, SmbError> {
        let parts = self.clients.len();
        let bounds = split_bounds(elems, parts);
        let mut keys = Vec::with_capacity(parts);
        for (k, client) in self.clients.iter().enumerate() {
            let shard_elems = bounds[k + 1] - bounds[k];
            let shard_wire = wire_bytes
                .map(|w| (w as f64 * shard_elems as f64 / elems.max(1) as f64).round() as u64);
            keys.push(client.create(ctx, &format!("{name}.shard{k}"), shard_elems, shard_wire)?);
        }
        Ok(ShardedKey(keys))
    }

    /// Allocates every shard of a broadcast [`ShardedKey`].
    ///
    /// # Errors
    ///
    /// Propagates per-shard SMB errors.
    pub fn alloc(&self, ctx: &SimContext, key: &ShardedKey) -> Result<ShardedBuffer, SmbError> {
        assert_eq!(key.0.len(), self.clients.len(), "key shard count mismatch");
        let mut shards = Vec::with_capacity(key.0.len());
        for (client, &k) in self.clients.iter().zip(key.0.iter()) {
            shards.push(client.alloc(ctx, k)?);
        }
        let mut bounds = vec![0usize];
        for s in &shards {
            bounds.push(bounds.last().unwrap() + s.len());
        }
        Ok(ShardedBuffer { shards, bounds })
    }

    /// Runs one closure per shard concurrently (each in a helper process)
    /// and waits for all of them; the whole fan-out completes when the
    /// slowest shard op completes, exactly like a multi-QP RDMA engine.
    fn fan_out<T, F>(
        &self,
        ctx: &SimContext,
        buf: &ShardedBuffer,
        op: F,
    ) -> Result<Vec<T>, SmbError>
    where
        T: Send + 'static,
        F: Fn(&SimContext, &SmbClient, &SmbBuffer, usize) -> Result<T, SmbError>
            + Send
            + Sync
            + 'static,
    {
        let parts = buf.shards.len();
        let done: SimChannel<(usize, Result<T, SmbError>)> = SimChannel::new("shard_fanout");
        let op = Arc::new(op);
        for k in 1..parts {
            let client = self.clients[k].clone();
            let shard = buf.shards[k];
            let done = done.clone();
            let op = Arc::clone(&op);
            ctx.spawn(&format!("shard_op_{k}"), move |cctx| {
                let result = op(&cctx, &client, &shard, k);
                done.send(&cctx, (k, result));
            });
        }
        // Shard 0 runs on the calling process.
        let first = op(ctx, &self.clients[0], &buf.shards[0], 0);
        let mut results: Vec<Option<Result<T, SmbError>>> = (0..parts).map(|_| None).collect();
        results[0] = Some(first);
        for _ in 1..parts {
            let (k, r) = done.recv(ctx);
            results[k] = Some(r);
        }
        results.into_iter().map(|r| r.expect("every shard reported")).collect()
    }

    /// Reads the whole logical vector, all shards concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] or per-shard errors.
    pub fn read(
        &self,
        ctx: &SimContext,
        buf: &ShardedBuffer,
        out: &mut [f32],
    ) -> Result<(), SmbError> {
        if out.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.shards[0].key,
                expected: buf.len(),
                got: out.len(),
            });
        }
        let chunks = self.fan_out(ctx, buf, |cctx, client, shard, _k| {
            let mut chunk = vec![0.0f32; shard.len()];
            client.read(cctx, shard, &mut chunk)?;
            Ok(chunk)
        })?;
        for (k, chunk) in chunks.into_iter().enumerate() {
            out[buf.bounds[k]..buf.bounds[k + 1]].copy_from_slice(&chunk);
        }
        Ok(())
    }

    /// Writes the whole logical vector, all shards concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] or per-shard errors.
    pub fn write(
        &self,
        ctx: &SimContext,
        buf: &ShardedBuffer,
        data: &[f32],
    ) -> Result<(), SmbError> {
        if data.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.shards[0].key,
                expected: buf.len(),
                got: data.len(),
            });
        }
        // Clone the shard slices up front so the helper closures own them.
        let slices: Vec<Vec<f32>> = (0..buf.shards.len())
            .map(|k| data[buf.bounds[k]..buf.bounds[k + 1]].to_vec())
            .collect();
        let slices = Arc::new(slices);
        let s2 = Arc::clone(&slices);
        self.fan_out(ctx, buf, move |cctx, client, shard, k| client.write(cctx, shard, &s2[k]))?;
        Ok(())
    }

    /// Server-side accumulate `dst += src`, shard by shard, concurrently.
    ///
    /// Shard-level concurrency is simulated time (each shard lives on its
    /// own server, so their DRAM-bus charges overlap); within a shard the
    /// server's data-plane add additionally runs element chunks on the
    /// tensor worker pool. Both levels preserve exclusive-accumulate
    /// semantics: shards are disjoint, and the in-shard split uses fixed
    /// chunk boundaries, so the result is thread-count invariant.
    ///
    /// # Errors
    ///
    /// Returns length-mismatch or per-shard errors.
    pub fn accumulate(
        &self,
        ctx: &SimContext,
        src: &ShardedBuffer,
        dst: &ShardedBuffer,
    ) -> Result<(), SmbError> {
        if src.len() != dst.len() || src.shard_count() != dst.shard_count() {
            return Err(SmbError::LengthMismatch {
                src: src.len(),
                dst: dst.len(),
                key: dst.shards[0].key,
            });
        }
        let src_shards: Arc<Vec<SmbBuffer>> = Arc::new(src.shards.clone());
        self.fan_out(ctx, dst, move |cctx, client, dst_shard, k| {
            client.accumulate(cctx, &src_shards[k], dst_shard).map(|_| ())
        })?;
        Ok(())
    }

    /// Frees every shard.
    ///
    /// # Errors
    ///
    /// Propagates per-shard errors.
    pub fn free(&self, ctx: &SimContext, buf: ShardedBuffer) -> Result<(), SmbError> {
        for (client, shard) in self.clients.iter().zip(buf.shards) {
            client.free(ctx, shard)?;
        }
        Ok(())
    }
}

/// Collects results that need to outlive the simulation in tests.
#[doc(hidden)]
pub type SharedVec<T> = Arc<Mutex<Vec<T>>>;

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;

    fn cluster(nodes: usize, servers: usize) -> SmbCluster {
        let spec = ClusterSpec { memory_servers: servers, ..ClusterSpec::paper_testbed(nodes) };
        SmbCluster::new(RdmaFabric::new(Fabric::new(spec))).unwrap()
    }

    #[test]
    fn split_bounds_partitions() {
        assert_eq!(split_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(split_bounds(8, 4), vec![0, 2, 4, 6, 8]);
        assert_eq!(split_bounds(0, 2), vec![0, 0, 0]);
    }

    #[test]
    fn cluster_requires_memory_servers() {
        let spec = ClusterSpec { memory_servers: 0, ..ClusterSpec::paper_testbed(1) };
        assert!(matches!(
            SmbCluster::new(RdmaFabric::new(Fabric::new(spec))),
            Err(SmbError::NoMemoryServer)
        ));
    }

    #[test]
    fn sharded_roundtrip_preserves_data() {
        let cl = cluster(1, 3);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = ShardedClient::new(&cl, NodeId(0));
            assert_eq!(client.shard_count(), 3);
            let key = client.create(&ctx, "wg", 100, Some(1_000_000)).unwrap();
            let buf = client.alloc(&ctx, &key).unwrap();
            assert_eq!(buf.len(), 100);
            let data: Vec<f32> = (0..100).map(|v| v as f32 * 0.5).collect();
            client.write(&ctx, &buf, &data).unwrap();
            let mut out = vec![0.0f32; 100];
            client.read(&ctx, &buf, &mut out).unwrap();
            assert_eq!(out, data);
            client.free(&ctx, buf).unwrap();
        });
        sim.run();
    }

    #[test]
    fn sharded_accumulate_adds() {
        let cl = cluster(1, 2);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = ShardedClient::new(&cl, NodeId(0));
            let wg = client.alloc(&ctx, &client.create(&ctx, "wg", 64, None).unwrap()).unwrap();
            let dw = client.alloc(&ctx, &client.create(&ctx, "dw", 64, None).unwrap()).unwrap();
            client.write(&ctx, &wg, &vec![1.0; 64]).unwrap();
            client.write(&ctx, &dw, &vec![0.25; 64]).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
            let mut out = vec![0.0f32; 64];
            client.read(&ctx, &wg, &mut out).unwrap();
            assert!(out.iter().all(|&v| (v - 1.5).abs() < 1e-6));
        });
        sim.run();
    }

    #[test]
    fn two_servers_double_unloaded_read_bandwidth() {
        // One worker reading a 300 MB logical buffer: the single-stream
        // pacing applies per shard, so K servers cut the read time ~K-fold.
        let time_with = |servers: usize| -> f64 {
            let cl = cluster(1, servers);
            let mut sim = Simulation::new();
            sim.spawn("w", move |ctx| {
                let client = ShardedClient::new(&cl, NodeId(0));
                let key = client.create(&ctx, "wg", 256, Some(300_000_000)).unwrap();
                let buf = client.alloc(&ctx, &key).unwrap();
                let mut out = vec![0.0f32; 256];
                let t0 = ctx.now();
                client.read(&ctx, &buf, &mut out).unwrap();
                let _ = t0;
            });
            sim.run().as_millis_f64()
        };
        let one = time_with(1);
        let two = time_with(2);
        let four = time_with(4);
        assert!(two < one * 0.6, "2 servers: {two} vs {one}");
        assert!(four < two * 0.7, "4 servers: {four} vs {two}");
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let cl = cluster(1, 2);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = ShardedClient::new(&cl, NodeId(0));
            let buf = client.alloc(&ctx, &client.create(&ctx, "b", 10, None).unwrap()).unwrap();
            let mut small = vec![0.0f32; 5];
            assert!(matches!(
                client.read(&ctx, &buf, &mut small),
                Err(SmbError::SizeMismatch { .. })
            ));
        });
        sim.run();
    }
}
