//! Quickstart: train a real model with asynchronous ShmCaffe on a
//! simulated 4-GPU cluster.
//!
//! This is the smallest end-to-end use of the platform: a synthetic
//! classification task, the MLP proxy network, four SEASGD workers sharing
//! parameters through the Soft Memory Box, and an accuracy report.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use shmcaffe_repro::dnn::data::SyntheticBlobs;
use shmcaffe_repro::dnn::SolverConfig;
use shmcaffe_repro::models::proxies;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::ShmCaffeA;
use shmcaffe_repro::platform::trainer::RealTrainerFactory;
use shmcaffe_repro::simnet::topology::ClusterSpec;

fn main() {
    // 1. A dataset, sharded across workers without duplication.
    let dataset = Arc::new(SyntheticBlobs::new(
        /* classes */ 4, /* dim */ 8, /* samples */ 800, /* noise */ 0.8,
        /* seed */ 7,
    ));

    // 2. A trainer factory: every worker builds an identical replica (same
    //    initialisation seed) over its own data shard.
    let factory = RealTrainerFactory::builder()
        .dataset(dataset)
        .net_builder(|seed| proxies::mlp(8, 24, 4, seed))
        .solver(SolverConfig { base_lr: 0.05, ..Default::default() })
        .batch(16)
        .build();

    // 3. The platform: one node with 4 GPUs plus the SMB memory server,
    //    the paper's hyper-parameters (moving_rate 0.2, update_interval 1).
    let cfg = ShmCaffeConfig { max_iters: 400, eval_every: 100, ..Default::default() };
    let report =
        ShmCaffeA::new(ClusterSpec::paper_testbed(1), 4, cfg).run(factory).expect("platform runs");

    // 4. Results.
    println!("{report}");
    for e in &report.evals {
        println!(
            "  iter {:>4}  t={:>8.2}s  loss {:.3}  top-1 {:.1}%",
            e.iter,
            e.time.as_secs_f64(),
            e.loss,
            e.top1 * 100.0
        );
    }
    let last = report.final_eval().expect("evaluations enabled");
    println!(
        "final: top-1 {:.1}% after {} iterations/worker (virtual wall {:.2}s)",
        last.top1 * 100.0,
        report.workers[0].iters,
        report.wall.as_secs_f64()
    );
    assert!(last.top1 > 0.8, "quickstart should learn the blobs task");
}
