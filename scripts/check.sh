#!/usr/bin/env bash
# Tier-1 gate: the full workspace test suite plus a zero-warning clippy
# pass. The chaos/fault tests are part of the default profile and are
# sized to keep the whole run fast (the chaos integration test itself
# completes in well under a second of real time).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
