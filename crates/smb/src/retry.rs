//! Bounded exponential backoff with deterministic, seeded jitter.
//!
//! SMB operations ride a fabric that can inject link faults (see
//! `shmcaffe_simnet::fault`). The retry layer re-issues a failed operation
//! after an exponentially growing virtual-time backoff, capped per attempt
//! and bounded in total by a deadline. Jitter is a pure function of
//! `(seed, attempt)`, so two runs with the same seed produce bit-identical
//! retry schedules — a requirement for deterministic chaos experiments.

use shmcaffe_simnet::SimDuration;

/// Bounded exponential backoff policy for SMB client operations.
///
/// The first attempt happens immediately; after the `k`-th failure the
/// client sleeps [`RetryPolicy::backoff`]`(k)` in virtual time and tries
/// again, up to `max_attempts` total attempts or until the cumulative
/// backoff would exceed `deadline`, whichever comes first.
///
/// # Example
///
/// ```rust
/// use shmcaffe_smb::RetryPolicy;
/// use shmcaffe_simnet::SimDuration;
///
/// let policy = RetryPolicy::with_seed(42);
/// let schedule = policy.schedule();
/// let total: SimDuration = schedule.iter().copied().sum();
/// assert!(total <= policy.deadline);
/// // Same seed, same schedule — bit identical.
/// assert_eq!(schedule, RetryPolicy::with_seed(42).schedule());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum total attempts, including the first (so `max_attempts - 1`
    /// retries at most).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Multiplier applied to the backoff per additional failure.
    pub factor: f64,
    /// Cap on any single backoff.
    pub max_backoff: SimDuration,
    /// Cap on the *cumulative* backoff; a retry whose sleep would push the
    /// total past this is not taken.
    pub deadline: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic draw from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: SimDuration::from_micros(200),
            factor: 2.0,
            max_backoff: SimDuration::from_millis(20),
            deadline: SimDuration::from_millis(100),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The default policy with a specific jitter seed.
    pub fn with_seed(seed: u64) -> Self {
        RetryPolicy { seed, ..Default::default() }
    }

    /// Backoff to sleep after the `attempt`-th failure (1-based).
    ///
    /// Pure in `(self, attempt)`: exponential growth from `base` by
    /// `factor`, capped at `max_backoff`, scaled by a deterministic jitter
    /// draw in `[1 - jitter, 1]`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = self.base.mul_f64(self.factor.powi(attempt.saturating_sub(1) as i32));
        let capped = exp.min(self.max_backoff);
        capped.mul_f64(1.0 - self.jitter * unit_draw(self.seed, attempt))
    }

    /// The full backoff schedule this policy would follow: one entry per
    /// retry, truncated so the cumulative sum never exceeds `deadline`.
    pub fn schedule(&self) -> Vec<SimDuration> {
        let mut out = Vec::new();
        let mut total = SimDuration::ZERO;
        for attempt in 1..self.max_attempts {
            let b = self.backoff(attempt);
            if total + b > self.deadline {
                break;
            }
            total += b;
            out.push(b);
        }
        out
    }
}

/// One uniform draw in `[0, 1)` as a pure function of `(seed, attempt)`
/// (splitmix64 finalizer — deterministic across platforms and runs).
fn unit_draw(seed: u64, attempt: u32) -> f64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(attempt) + 1);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        assert_eq!(p.backoff(1), SimDuration::from_micros(200));
        assert_eq!(p.backoff(2), SimDuration::from_micros(400));
        assert_eq!(p.backoff(3), SimDuration::from_micros(800));
        // factor 2^9 * 200us = 102.4ms, capped at 20ms.
        assert_eq!(p.backoff(10), p.max_backoff);
    }

    #[test]
    fn jitter_shrinks_but_never_inflates() {
        let p = RetryPolicy::with_seed(7);
        let flat = RetryPolicy { jitter: 0.0, ..RetryPolicy::with_seed(7) };
        for attempt in 1..6 {
            let jittered = p.backoff(attempt);
            let nominal = flat.backoff(attempt);
            assert!(jittered <= nominal, "jitter must only shorten backoffs");
            assert!(jittered >= nominal.mul_f64(1.0 - p.jitter));
        }
    }

    #[test]
    fn schedule_respects_deadline() {
        let p = RetryPolicy {
            max_attempts: 50,
            deadline: SimDuration::from_millis(5),
            ..RetryPolicy::with_seed(3)
        };
        let total: SimDuration = p.schedule().iter().copied().sum();
        assert!(total <= p.deadline);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = RetryPolicy::with_seed(99).schedule();
        let b = RetryPolicy::with_seed(99).schedule();
        assert_eq!(a, b);
        let c = RetryPolicy::with_seed(100).schedule();
        assert_ne!(a, c, "different seeds should jitter differently");
    }
}
