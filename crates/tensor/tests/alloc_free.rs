//! Proves the steady-state convolution forward + backward path performs
//! **zero heap allocations** once the workspace arenas are warm.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up pass over a realistic layer, the test snapshots the allocation
//! counter, runs several full forward + backward iterations at one
//! thread, and asserts the counter did not move. (In parallel mode the
//! task dispatch itself boxes closures, so the zero-allocation property is
//! asserted on the serial path; a second test asserts the *arena* stays
//! warm — no buffer growths — under a 4-thread schedule as well.)
//!
//! This is the regression gate for the tentpole perf claim: the fused
//! conv path must never reintroduce a per-call or per-task `Vec`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use shmcaffe_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dGeometry};
use shmcaffe_tensor::{parallel, workspace};

/// System allocator wrapper that counts allocation calls.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter
// update is a relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn fill(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
        .collect()
}

struct Workload {
    geom: Conv2dGeometry,
    batch: usize,
    oc: usize,
    input: Vec<f32>,
    weights: Vec<f32>,
    bias: Vec<f32>,
    d_output: Vec<f32>,
    output: Vec<f32>,
    d_weights: Vec<f32>,
    d_bias: Vec<f32>,
    d_input: Vec<f32>,
}

impl Workload {
    fn new() -> Self {
        // Crosses both fixed-grid boundaries: kdim = 32*3*3 = 288 spans
        // two KC=256 k-blocks, and spatial = 24*24 = 576 spans two NC=512
        // column strips, so the steady state exercises every fused path.
        let geom = Conv2dGeometry::square(32, 24, 3, 1, 1);
        let batch = 2;
        let oc = 10;
        let spatial = geom.col_cols().unwrap();
        Workload {
            geom,
            batch,
            oc,
            input: fill(batch * geom.in_len(), 1),
            weights: fill(oc * geom.col_rows(), 2),
            bias: fill(oc, 3),
            d_output: fill(batch * oc * spatial, 4),
            output: vec![0.0; batch * oc * spatial],
            d_weights: vec![0.0; oc * geom.col_rows()],
            d_bias: vec![0.0; oc],
            d_input: vec![0.0; batch * geom.in_len()],
        }
    }

    fn step(&mut self) {
        conv2d_forward(
            &self.geom,
            self.batch,
            self.oc,
            &self.input,
            &self.weights,
            &self.bias,
            &mut self.output,
        );
        conv2d_backward(
            &self.geom,
            self.batch,
            self.oc,
            &self.input,
            &self.weights,
            &self.d_output,
            &mut self.d_weights,
            &mut self.d_bias,
            &mut self.d_input,
        );
    }
}

#[test]
fn steady_state_conv_fwd_bwd_allocates_nothing() {
    parallel::with_threads(1, || {
        let mut w = Workload::new();
        // Warm-up: grows the thread-local workspace arenas.
        w.step();
        w.step();

        let before = alloc_count();
        for _ in 0..5 {
            w.step();
        }
        let after = alloc_count();
        assert_eq!(
            after - before,
            0,
            "steady-state conv fwd+bwd performed {} heap allocations",
            after - before
        );
    });
}

#[test]
fn workspace_arena_reaches_quiescence_under_parallel_schedule() {
    // Which pool worker runs which task bucket is scheduler-dependent, so
    // a worker can first meet a large buffer request a few iterations in.
    // What must hold is convergence: each (thread, tag) buffer grows
    // monotonically toward the workload's fixed maximum demand, so growth
    // events die out — the arena quiesces — within a handful of steps.
    parallel::with_threads(4, || {
        let mut w = Workload::new();
        let mut quiet = 0;
        for _ in 0..40 {
            let before = workspace::growth_count();
            w.step();
            if workspace::growth_count() == before {
                quiet += 1;
                if quiet >= 3 {
                    return;
                }
            } else {
                quiet = 0;
            }
        }
        panic!("workspace arena never quiesced within 40 parallel iterations");
    });
}
