//! Seeded weight initialisation.
//!
//! Matches the fillers Caffe uses for the evaluated networks: constant,
//! Gaussian, uniform, Xavier (Glorot) and MSRA (He). All fillers draw from a
//! caller-supplied [`rand::Rng`] so distributed workers can reproduce the
//! master's initial weights from a broadcast seed, exactly as ShmCaffe's
//! rank-0 master broadcasts the initial parameters.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG suitable for reproducible weight initialisation.
///
/// # Example
///
/// ```rust
/// use shmcaffe_tensor::init::{seeded_rng, gaussian};
/// let mut a = vec![0.0; 4];
/// let mut b = vec![0.0; 4];
/// gaussian(&mut seeded_rng(7), 0.0, 0.01, &mut a);
/// gaussian(&mut seeded_rng(7), 0.0, 0.01, &mut b);
/// assert_eq!(a, b);
/// ```
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Fills `out` with samples from `N(mean, std^2)` via Box–Muller.
pub fn gaussian<R: Rng>(rng: &mut R, mean: f32, std: f32, out: &mut [f32]) {
    let mut i = 0;
    while i < out.len() {
        // Box-Muller transform produces pairs of independent normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out[i] = mean + std * r * theta.cos();
        i += 1;
        if i < out.len() {
            out[i] = mean + std * r * theta.sin();
            i += 1;
        }
    }
}

/// Fills `out` with samples from `U[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn uniform<R: Rng>(rng: &mut R, low: f32, high: f32, out: &mut [f32]) {
    assert!(low < high, "uniform requires low < high");
    for v in out.iter_mut() {
        *v = rng.gen_range(low..high);
    }
}

/// Xavier/Glorot filler: `U[-b, b]` with `b = sqrt(3 / fan_in)`.
///
/// This is Caffe's `xavier` filler default (fan-in variant).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn xavier<R: Rng>(rng: &mut R, fan_in: usize, out: &mut [f32]) {
    assert!(fan_in > 0, "xavier requires fan_in > 0");
    let bound = (3.0 / fan_in as f32).sqrt();
    uniform(rng, -bound, bound, out);
}

/// MSRA/He filler: `N(0, sqrt(2 / fan_in))`, suited for ReLU networks.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn msra<R: Rng>(rng: &mut R, fan_in: usize, out: &mut [f32]) {
    assert!(fan_in > 0, "msra requires fan_in > 0");
    let std = (2.0 / fan_in as f32).sqrt();
    gaussian(rng, 0.0, std, out);
}

/// The weight filler variants supported by the DNN substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Filler {
    /// Every weight set to the given constant.
    Constant(f32),
    /// Gaussian with the given mean and standard deviation.
    Gaussian {
        /// Mean of the distribution.
        mean: f32,
        /// Standard deviation of the distribution.
        std: f32,
    },
    /// Uniform on `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f32,
        /// Exclusive upper bound.
        high: f32,
    },
    /// Xavier/Glorot fan-in filler.
    Xavier,
    /// MSRA/He fan-in filler.
    Msra,
}

impl Filler {
    /// Applies the filler to `out`, using `fan_in` where relevant.
    pub fn fill<R: Rng>(&self, rng: &mut R, fan_in: usize, out: &mut [f32]) {
        match *self {
            Filler::Constant(c) => out.iter_mut().for_each(|v| *v = c),
            Filler::Gaussian { mean, std } => gaussian(rng, mean, std, out),
            Filler::Uniform { low, high } => uniform(rng, low, high, out),
            Filler::Xavier => xavier(rng, fan_in.max(1), out),
            Filler::Msra => msra(rng, fan_in.max(1), out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = seeded_rng(42);
        let mut buf = vec![0.0f32; 20_000];
        gaussian(&mut rng, 1.0, 2.0, &mut buf);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(1);
        let mut buf = vec![0.0f32; 1000];
        uniform(&mut rng, -0.5, 0.5, &mut buf);
        assert!(buf.iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_bound_scales_with_fan_in() {
        let mut rng = seeded_rng(2);
        let mut buf = vec![0.0f32; 1000];
        xavier(&mut rng, 300, &mut buf);
        let bound = (3.0f32 / 300.0).sqrt();
        assert!(buf.iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn msra_std_scales_with_fan_in() {
        let mut rng = seeded_rng(3);
        let mut buf = vec![0.0f32; 20_000];
        msra(&mut rng, 50, &mut buf);
        let std = (2.0f32 / 50.0).sqrt();
        let var = buf.iter().map(|v| v * v).sum::<f32>() / buf.len() as f32;
        assert!((var.sqrt() - std).abs() < 0.01);
    }

    #[test]
    fn same_seed_same_weights() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        Filler::Xavier.fill(&mut seeded_rng(9), 8, &mut a);
        Filler::Xavier.fill(&mut seeded_rng(9), 8, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_filler() {
        let mut buf = vec![0.0f32; 5];
        Filler::Constant(0.2).fill(&mut seeded_rng(0), 1, &mut buf);
        assert!(buf.iter().all(|&v| v == 0.2));
    }

    #[test]
    fn gaussian_handles_odd_lengths() {
        let mut buf = vec![0.0f32; 7];
        gaussian(&mut seeded_rng(5), 0.0, 1.0, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
    }
}
