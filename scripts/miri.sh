#!/usr/bin/env bash
# Miri pass over the shmcaffe-tensor worker pool.
#
# Scope: the workspace contains exactly three `unsafe` sites (enforced by
# `cargo run -p shmcaffe-analysis`):
#
#   1. crates/tensor/src/gemm.rs — the AVX2 recompilation of the safe
#      micro-kernel body behind `#[target_feature]`. Miri does not model
#      `target_feature` dispatch, so the AVX2 path is compiled out under
#      `cfg(miri)` and the bit-identical baseline kernel runs instead; the
#      dispatch itself carries no pointer arithmetic to check.
#   2. crates/tensor/src/parallel.rs:~180 — the `Task<'_>` -> `Job`
#      lifetime-erasing transmute that enqueues scoped jobs on the worker
#      pool. This is the site Miri validates: the soundness argument is
#      that `with_threads` never returns before `done_rx` has received one
#      report per enqueued job, so the erased borrows outlive every use.
#      The pool tests drive real cross-thread enqueue/complete cycles under
#      the borrow-tracking interpreter.
#   3. crates/tensor/tests/alloc_free.rs — the counting
#      `#[global_allocator]` backing the zero-allocation gate; it delegates
#      verbatim to `System` plus one relaxed counter increment. Test-only,
#      never linked into library or bin targets.
#
# Miri needs a nightly toolchain component; this gate degrades to a skip
# (exit 0) when it is not installed so offline/stable environments still
# pass check.sh. CI or developers can `rustup +nightly component add miri`.
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo miri --version >/dev/null 2>&1; then
    MIRI=(cargo miri)
elif rustup run nightly cargo miri --version >/dev/null 2>&1; then
    MIRI=(rustup run nightly cargo miri)
else
    echo "miri.sh: miri not installed; skipping (rustup +nightly component add miri)"
    exit 0
fi

echo "== miri: shmcaffe-tensor worker pool (baseline kernel, 2 threads) =="
SHMCAFFE_THREADS=2 MIRIFLAGS="-Zmiri-disable-isolation" \
    "${MIRI[@]}" test -p shmcaffe-tensor parallel

echo "miri.sh: passed"
