//! Collective operations over the point-to-point substrate.
//!
//! * `barrier`, `broadcast`, `reduce`, `gather` use binomial trees rooted at
//!   the designated root (MVAPICH's small-message algorithms).
//! * `allreduce` uses the ring reduce-scatter + allgather algorithm MVAPICH
//!   selects for large messages — the cost model behind MPICaffe's
//!   `MPI_Allreduce` gradient aggregation: `2·(N−1)/N · P` bytes on every
//!   link.

use shmcaffe_simnet::SimContext;

use crate::world::{Comm, MpiData, Tag};

/// Internal tag space, above anything user code should use.
const TAG_BASE: Tag = 0xFFFF_0000;
const TAG_BARRIER_UP: Tag = TAG_BASE;
const TAG_BARRIER_DOWN: Tag = TAG_BASE + 1;
const TAG_BCAST: Tag = TAG_BASE + 2;
const TAG_REDUCE: Tag = TAG_BASE + 3;
const TAG_GATHER: Tag = TAG_BASE + 4;
const TAG_RING_RS: Tag = TAG_BASE + 5;
const TAG_RING_AG: Tag = TAG_BASE + 6;

impl Comm {
    /// Blocks until every rank has entered the barrier (gather-to-0 then
    /// release, each message 8 wire bytes).
    pub fn barrier(&mut self, ctx: &SimContext) {
        let size = self.size();
        if size == 1 {
            return;
        }
        if self.rank() == 0 {
            for _ in 1..size {
                let _ = self.recv(ctx, None, TAG_BARRIER_UP);
            }
            for dst in 1..size {
                self.send(ctx, dst, TAG_BARRIER_DOWN, MpiData::U64s(vec![0]));
            }
        } else {
            self.send(ctx, 0, TAG_BARRIER_UP, MpiData::U64s(vec![0]));
            let _ = self.recv(ctx, Some(0), TAG_BARRIER_DOWN);
        }
    }

    /// Broadcasts `data` from `root` to all ranks over a binomial tree.
    /// Every rank returns the broadcast value.
    pub fn broadcast(&mut self, ctx: &SimContext, root: usize, data: Option<MpiData>) -> MpiData {
        let bytes = data.as_ref().map(|d| d.byte_len()).unwrap_or(0);
        self.broadcast_wire(ctx, root, data, bytes)
    }

    /// [`Comm::broadcast`] with an explicit wire size per hop.
    ///
    /// # Panics
    ///
    /// Panics if the caller is `root` but passed `None`, or vice versa.
    pub fn broadcast_wire(
        &mut self,
        ctx: &SimContext,
        root: usize,
        data: Option<MpiData>,
        wire_bytes: u64,
    ) -> MpiData {
        let size = self.size();
        // Work in a rotated rank space where the root is 0.
        let vrank = (self.rank() + size - root) % size;
        let value = if vrank == 0 {
            data.expect("root must supply the broadcast value")
        } else {
            assert!(data.is_none(), "non-root ranks must pass None");
            let (_, d) = self.recv(ctx, None, TAG_BCAST);
            d
        };
        // Binomial tree: after receiving, forward to vrank + 2^k children.
        let mut mask = 1usize;
        while mask < size {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 {
                let child = vrank | mask;
                if child < size {
                    let dst = (child + root) % size;
                    self.send_wire(ctx, dst, TAG_BCAST, value.clone(), wire_bytes);
                }
            }
            mask <<= 1;
        }
        value
    }

    /// Element-wise sum reduction to `root` over a binomial tree. The root
    /// returns `Some(sum)`, other ranks `None`.
    pub fn reduce(
        &mut self,
        ctx: &SimContext,
        root: usize,
        mut data: Vec<f32>,
    ) -> Option<Vec<f32>> {
        let bytes = (data.len() * 4) as u64;
        self.reduce_wire(ctx, root, std::mem::take(&mut data), bytes)
    }

    /// [`Comm::reduce`] with an explicit wire size per hop.
    pub fn reduce_wire(
        &mut self,
        ctx: &SimContext,
        root: usize,
        mut acc: Vec<f32>,
        wire_bytes: u64,
    ) -> Option<Vec<f32>> {
        let size = self.size();
        let vrank = (self.rank() + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                // Send partial sum to parent and exit.
                let dst = ((vrank & !mask) + root) % size;
                self.send_wire(ctx, dst, TAG_REDUCE, MpiData::F32s(acc), wire_bytes);
                return None;
            }
            let child = vrank | mask;
            if child < size {
                let src = (child + root) % size;
                let (_, contribution) = self.recv_f32s(ctx, Some(src), TAG_REDUCE);
                assert_eq!(contribution.len(), acc.len(), "reduce length mismatch");
                for (a, c) in acc.iter_mut().zip(contribution.iter()) {
                    *a += c;
                }
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Gathers every rank's vector at `root` (indexed by rank). The root
    /// returns `Some(vec_of_vecs)`, other ranks `None`.
    pub fn gather(
        &mut self,
        ctx: &SimContext,
        root: usize,
        data: Vec<f32>,
    ) -> Option<Vec<Vec<f32>>> {
        let size = self.size();
        if self.rank() == root {
            let mut out: Vec<Vec<f32>> = vec![Vec::new(); size];
            out[root] = data;
            for _ in 0..size - 1 {
                let (src, d) = self.recv_f32s(ctx, None, TAG_GATHER);
                out[src] = d;
            }
            Some(out)
        } else {
            self.send(ctx, root, TAG_GATHER, MpiData::F32s(data));
            None
        }
    }

    /// Ring allreduce: returns the element-wise sum across all ranks.
    /// Each rank moves `2·(N−1)/N · bytes` over its links.
    pub fn allreduce(&mut self, ctx: &SimContext, data: Vec<f32>) -> Vec<f32> {
        let bytes = (data.len() * 4) as u64;
        self.allreduce_wire(ctx, data, bytes)
    }

    /// [`Comm::allreduce`] with an explicit total wire size (the logical
    /// size of the full vector; per-step chunks are `wire_bytes / N`).
    pub fn allreduce_wire(
        &mut self,
        ctx: &SimContext,
        mut data: Vec<f32>,
        wire_bytes: u64,
    ) -> Vec<f32> {
        let size = self.size();
        if size == 1 {
            return data;
        }
        let rank = self.rank();
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        let n = data.len();
        // Chunk boundaries (chunk c = [starts[c], starts[c+1])).
        let starts: Vec<usize> = (0..=size).map(|c| c * n / size).collect();
        let chunk_wire = wire_bytes / size as u64;

        // Phase 1: reduce-scatter. After step s, each rank holds the full
        // sum of one chunk.
        for step in 0..size - 1 {
            let send_chunk = (rank + size - step) % size;
            let recv_chunk = (rank + size - step - 1) % size;
            let payload = data[starts[send_chunk]..starts[send_chunk + 1]].to_vec();
            self.send_wire(ctx, next, TAG_RING_RS, MpiData::F32s(payload), chunk_wire);
            let (_, incoming) = self.recv_f32s(ctx, Some(prev), TAG_RING_RS);
            let dst = &mut data[starts[recv_chunk]..starts[recv_chunk + 1]];
            assert_eq!(incoming.len(), dst.len(), "ring chunk mismatch");
            for (d, v) in dst.iter_mut().zip(incoming.iter()) {
                *d += v;
            }
        }
        // Phase 2: allgather the reduced chunks around the ring.
        for step in 0..size - 1 {
            let send_chunk = (rank + 1 + size - step) % size;
            let recv_chunk = (rank + size - step) % size;
            let payload = data[starts[send_chunk]..starts[send_chunk + 1]].to_vec();
            self.send_wire(ctx, next, TAG_RING_AG, MpiData::F32s(payload), chunk_wire);
            let (_, incoming) = self.recv_f32s(ctx, Some(prev), TAG_RING_AG);
            let dst = &mut data[starts[recv_chunk]..starts[recv_chunk + 1]];
            dst.copy_from_slice(&incoming);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MpiWorld;
    use parking_lot::Mutex;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;
    use std::sync::Arc;

    fn run_collective<F>(ranks: usize, nodes: usize, f: F) -> Vec<Vec<f32>>
    where
        F: Fn(&SimContext, &mut Comm) -> Vec<f32> + Send + Sync + 'static,
    {
        let world = MpiWorld::new(Fabric::new(ClusterSpec::paper_testbed(nodes)), ranks);
        let results: Arc<Mutex<Vec<Vec<f32>>>> = Arc::new(Mutex::new(vec![Vec::new(); ranks]));
        let f = Arc::new(f);
        let mut sim = Simulation::new();
        for rank in 0..ranks {
            let mut comm = world.comm(rank);
            let results = Arc::clone(&results);
            let f = Arc::clone(&f);
            sim.spawn(&format!("rank{rank}"), move |ctx| {
                let out = f(&ctx, &mut comm);
                results.lock()[rank] = out;
            });
        }
        sim.run();
        let out = results.lock().clone();
        out
    }

    #[test]
    fn barrier_synchronizes() {
        for ranks in [1, 2, 5, 8] {
            run_collective(ranks, 2, |ctx, comm| {
                // Stagger arrival; everyone must leave after the latest.
                ctx.sleep(shmcaffe_simnet::SimDuration::from_millis(comm.rank() as u64 * 5));
                comm.barrier(ctx);
                let leave_ms = ctx.now().as_millis_f64();
                assert!(leave_ms >= (comm.size() - 1) as f64 * 5.0, "left too early: {leave_ms}");
                vec![]
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for ranks in [2, 3, 8] {
            for root in 0..ranks {
                let got = run_collective(ranks, 2, move |ctx, comm| {
                    let data = (comm.rank() == root).then(|| MpiData::F32s(vec![3.5, -1.0]));
                    comm.broadcast(ctx, root, data).into_f32s()
                });
                for r in got {
                    assert_eq!(r, vec![3.5, -1.0]);
                }
            }
        }
    }

    #[test]
    fn reduce_sums_at_root() {
        for ranks in [1, 2, 6, 8] {
            let got = run_collective(ranks, 2, move |ctx, comm| {
                let mine = vec![comm.rank() as f32, 1.0];
                comm.reduce(ctx, 0, mine).unwrap_or_default()
            });
            let expected_sum: f32 = (0..ranks).map(|r| r as f32).sum();
            assert_eq!(got[0], vec![expected_sum, ranks as f32]);
            for r in got.iter().skip(1) {
                assert!(r.is_empty());
            }
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let got = run_collective(4, 1, |ctx, comm| {
            let mine = vec![comm.rank() as f32 * 10.0];
            match comm.gather(ctx, 2, mine) {
                Some(all) => all.into_iter().flatten().collect(),
                None => vec![],
            }
        });
        assert_eq!(got[2], vec![0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn allreduce_matches_sequential_sum() {
        for ranks in [1, 2, 3, 4, 7, 8] {
            let n = 23; // deliberately not divisible by ranks
            let got = run_collective(ranks, 2, move |ctx, comm| {
                let mine: Vec<f32> = (0..n).map(|i| (comm.rank() * n + i) as f32 * 0.5).collect();
                comm.allreduce(ctx, mine)
            });
            let mut expected = vec![0.0f32; n];
            for r in 0..ranks {
                for (i, e) in expected.iter_mut().enumerate() {
                    *e += (r * n + i) as f32 * 0.5;
                }
            }
            for r in &got {
                for (a, b) in r.iter().zip(expected.iter()) {
                    assert!((a - b).abs() < 1e-3, "ranks={ranks}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn allreduce_wire_time_scales_with_logical_size() {
        // 4 ranks on 4 different nodes, logical 280 MB: ring moves
        // 2*(N-1)/N * 280 MB = 420 MB per HCA at 7 GB/s => ~60 ms elapsed.
        let world = MpiWorld::with_layout(
            Fabric::new(ClusterSpec::paper_testbed(4)),
            (0..4).map(shmcaffe_simnet::topology::NodeId).collect(),
        );
        let mut sim = Simulation::new();
        for rank in 0..4 {
            let mut comm = world.comm(rank);
            sim.spawn(&format!("r{rank}"), move |ctx| {
                let out = comm.allreduce_wire(&ctx, vec![1.0; 16], 280_000_000);
                assert_eq!(out, vec![4.0; 16]);
            });
        }
        let end = sim.run();
        let ms = end.as_millis_f64();
        assert!(ms > 50.0 && ms < 80.0, "elapsed {ms} ms");
    }
}
