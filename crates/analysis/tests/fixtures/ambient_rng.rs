// Lint fixture: OS-seeded randomness. All simulation randomness must flow
// from an explicit, logged seed.
pub fn jittered(base: f64) -> f64 {
    let mut rng = rand::thread_rng();
    base * rand::Rng::gen_range(&mut rng, 0.9..1.1)
}
