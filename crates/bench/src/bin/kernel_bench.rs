//! Kernel-level throughput benchmark: GEMM, convolution, SMB accumulate.
//!
//! Measures the parallel compute backend at 1/2/4/8 logical threads (via
//! `shmcaffe_tensor::parallel::with_threads`, so one process exercises all
//! schedules) and records the results as `BENCH_kernels.json` at the repo
//! root — the performance trajectory future PRs are held against. A copy
//! of the original single-threaded blocked kernel serves as the GEMM
//! baseline.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin kernel_bench`.
//!
//! Convolution is measured on production-representative shapes — the
//! VGG16 conv3-256 body layer and an Inception-style 1x1 bottleneck —
//! against the retained materialised-im2col reference path, so the JSON
//! carries both the thread-scaling curve and a `fused_vs_materialized_1t`
//! speedup column for the fused packing path.
//!
//! `--checksum` instead trains the small CNN proxy for a fixed number of
//! seeded SGD steps and prints an FNV-1a hash of the final weights; CI
//! runs it under `SHMCAFFE_THREADS=1` and `=4` and diffs the output to
//! prove the backend's thread-count invariance end to end.
//!
//! `--smoke` runs only the fused VGG layer at 1 and 4 threads and exits
//! non-zero if the 4-thread schedule falls below a host-aware floor — the
//! cheap CI regression gate for the column-parallel dispatch.

use shmcaffe_bench::json::{write_bench_json, Json};
use shmcaffe_bench::table::Table;
use shmcaffe_dnn::data::Dataset;
use shmcaffe_dnn::data::SyntheticImages;
use shmcaffe_dnn::{LrPolicy, Solver, SolverConfig};
use shmcaffe_models::proxies;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{SmbClient, SmbServer};
use shmcaffe_tensor::conv::{
    conv2d_backward, conv2d_backward_ref, conv2d_forward, conv2d_forward_ref, Conv2dGeometry,
};
use shmcaffe_tensor::gemm::{gemm, Transpose};
use shmcaffe_tensor::parallel;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const GEMM_N: usize = 256;

/// Best (minimum) seconds for one call of `f` over `reps` timed calls,
/// after one warm-up call. Minimum-of-N rather than mean: on shared hosts
/// the distribution is best-case-plus-noise, and the minimum estimates
/// the kernel's actual cost robustly.
fn time_per_rep(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled(n: usize, scale: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * scale).sin()).collect()
}

// ---------------------------------------------------------------------------
// Baseline: the pre-parallel blocked kernel (NN case), kept verbatim so the
// GFLOP/s comparison in BENCH_kernels.json stays against a fixed reference.
// ---------------------------------------------------------------------------

const SEED_BLOCK: usize = 64;

#[allow(clippy::many_single_char_names)]
fn seed_gemm_nn(m: usize, n: usize, k: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    c[..m * n].iter_mut().for_each(|v| *v = 0.0);
    for i0 in (0..m).step_by(SEED_BLOCK) {
        let i_max = (i0 + SEED_BLOCK).min(m);
        for p0 in (0..k).step_by(SEED_BLOCK) {
            let p_max = (p0 + SEED_BLOCK).min(k);
            for i in i0..i_max {
                let c_row = &mut c[i * n..(i + 1) * n];
                for p in p0..p_max {
                    let av = alpha * a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

fn bench_gemm(table: &mut Table) -> Json {
    let (m, n, k) = (GEMM_N, GEMM_N, GEMM_N);
    let a = filled(m * k, 0.013);
    let b = filled(k * n, 0.029);
    let mut c = vec![0.0f32; m * n];
    let flops = 2.0 * (m * n * k) as f64;
    let reps = 8;

    let seed_s = time_per_rep(reps, || seed_gemm_nn(m, n, k, 1.0, &a, &b, &mut c));
    let seed_gflops = flops / seed_s / 1e9;
    table.row_owned(vec![
        format!("gemm {GEMM_N}^3 (seed kernel)"),
        "1".to_string(),
        format!("{:.2}", seed_s * 1e3),
        format!("{seed_gflops:.2} GFLOP/s"),
        String::new(),
    ]);

    let mut entries = Vec::new();
    let mut one_thread_s = f64::NAN;
    for &t in &THREAD_COUNTS {
        let s = parallel::with_threads(t, || {
            time_per_rep(reps, || {
                gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
            })
        });
        if t == 1 {
            one_thread_s = s;
        }
        let gflops = flops / s / 1e9;
        table.row_owned(vec![
            format!("gemm {GEMM_N}^3 (packed)"),
            t.to_string(),
            format!("{:.2}", s * 1e3),
            format!("{gflops:.2} GFLOP/s"),
            format!("{:.2}x vs 1T", one_thread_s / s),
        ]);
        entries.push(Json::obj(vec![
            ("threads", Json::Int(t as i64)),
            ("ms", Json::Num(s * 1e3)),
            ("gflops", Json::Num(gflops)),
            ("speedup_vs_1t", Json::Num(one_thread_s / s)),
        ]));
    }
    let new_1t_gflops = flops / one_thread_s / 1e9;
    Json::obj(vec![
        ("size", Json::Int(GEMM_N as i64)),
        ("seed_kernel_gflops", Json::Num(seed_gflops)),
        ("packed_1t_gflops", Json::Num(new_1t_gflops)),
        ("packed_vs_seed_1t", Json::Num(new_1t_gflops / seed_gflops)),
        ("threads", Json::Arr(entries)),
    ])
}

/// A convolution shape benchmarked against both the fused path and the
/// retained materialised-im2col reference (`conv2d_*_ref`).
struct ConvCase {
    label: &'static str,
    note: &'static str,
    geom: Conv2dGeometry,
    out_channels: usize,
    batch: usize,
    reps: usize,
}

/// Production-representative shapes: the dominant VGG16 body layer and an
/// Inception-style 1x1 bottleneck (GEMM-shaped: kdim == in_channels, so
/// packing overhead, not im2col arithmetic, dominates).
fn conv_cases() -> Vec<ConvCase> {
    vec![
        ConvCase {
            label: "conv vgg16 conv3-256",
            note: "in 256x56x56, kernel 3x3 s1 p1, out 256ch, batch 1",
            geom: Conv2dGeometry::square(256, 56, 3, 1, 1),
            out_channels: 256,
            batch: 1,
            reps: 2,
        },
        ConvCase {
            label: "conv inception 1x1-64",
            note: "in 192x28x28, kernel 1x1 s1 p0, out 64ch, batch 8",
            geom: Conv2dGeometry::square(192, 28, 1, 1, 0),
            out_channels: 64,
            batch: 8,
            reps: 6,
        },
    ]
}

/// Scratch buffers for one conv case, shared by fused and reference runs.
struct ConvBuffers {
    input: Vec<f32>,
    weights: Vec<f32>,
    bias: Vec<f32>,
    d_output: Vec<f32>,
    output: Vec<f32>,
    d_weights: Vec<f32>,
    d_bias: Vec<f32>,
    d_input: Vec<f32>,
}

impl ConvBuffers {
    fn new(case: &ConvCase) -> Self {
        let spatial = case.geom.col_cols().expect("valid geometry");
        let in_total = case.batch * case.geom.in_len();
        let out_total = case.batch * case.out_channels * spatial;
        let w_len = case.out_channels * case.geom.col_rows();
        ConvBuffers {
            input: filled(in_total, 0.017),
            weights: filled(w_len, 0.031),
            bias: filled(case.out_channels, 0.11),
            d_output: filled(out_total, 0.023),
            output: vec![0.0f32; out_total],
            d_weights: vec![0.0f32; w_len],
            d_bias: vec![0.0f32; case.out_channels],
            d_input: vec![0.0f32; in_total],
        }
    }
}

fn bench_conv_case(case: &ConvCase, table: &mut Table) -> Json {
    let geom = case.geom;
    let (batch, out_channels, reps) = (case.batch, case.out_channels, case.reps);
    let spatial = geom.col_cols().expect("valid geometry");
    let kdim = geom.col_rows();
    let mut b = ConvBuffers::new(case);
    // fwd gemm + dW gemm + dX gemm are all (out_channels x kdim x spatial).
    let flops = 3.0 * 2.0 * (batch * out_channels * spatial * kdim) as f64;

    // Materialised-im2col baseline (single-threaded by construction): the
    // pre-fusion path, retained as `conv2d_*_ref`. Its 1T times anchor the
    // "fused vs materialized" speedup columns.
    let mut col = vec![0.0f32; kdim * spatial];
    let (ref_fwd_s, ref_bwd_s) = parallel::with_threads(1, || {
        let fwd = time_per_rep(reps, || {
            conv2d_forward_ref(
                &geom,
                batch,
                out_channels,
                &b.input,
                &b.weights,
                &b.bias,
                &mut b.output,
                &mut col,
            );
        });
        let bwd = time_per_rep(reps, || {
            conv2d_backward_ref(
                &geom,
                batch,
                out_channels,
                &b.input,
                &b.weights,
                &b.d_output,
                &mut b.d_weights,
                &mut b.d_bias,
                &mut b.d_input,
                &mut col,
            );
        });
        (fwd, bwd)
    });
    drop(col);
    let ref_s = ref_fwd_s + ref_bwd_s;
    table.row_owned(vec![
        format!("{} (materialized ref)", case.label),
        "1".to_string(),
        format!("{:.2}", ref_s * 1e3),
        format!("fwd {:.2} / bwd {:.2} ms", ref_fwd_s * 1e3, ref_bwd_s * 1e3),
        format!("{:.2} GFLOP/s", flops / ref_s / 1e9),
    ]);

    let mut entries = Vec::new();
    let mut one_thread_s = f64::NAN;
    let mut fused_1t = (f64::NAN, f64::NAN);
    for &t in &THREAD_COUNTS {
        let (fwd_s, bwd_s) = parallel::with_threads(t, || {
            let fwd = time_per_rep(reps, || {
                conv2d_forward(
                    &geom,
                    batch,
                    out_channels,
                    &b.input,
                    &b.weights,
                    &b.bias,
                    &mut b.output,
                );
            });
            let bwd = time_per_rep(reps, || {
                conv2d_backward(
                    &geom,
                    batch,
                    out_channels,
                    &b.input,
                    &b.weights,
                    &b.d_output,
                    &mut b.d_weights,
                    &mut b.d_bias,
                    &mut b.d_input,
                );
            });
            (fwd, bwd)
        });
        let total = fwd_s + bwd_s;
        if t == 1 {
            one_thread_s = total;
            fused_1t = (fwd_s, bwd_s);
        }
        table.row_owned(vec![
            format!("{} (fused)", case.label),
            t.to_string(),
            format!("{:.2}", total * 1e3),
            format!("fwd {:.2} / bwd {:.2} ms", fwd_s * 1e3, bwd_s * 1e3),
            format!("{:.2}x vs 1T, {:.2}x vs ref", one_thread_s / total, ref_s / total),
        ]);
        entries.push(Json::obj(vec![
            ("threads", Json::Int(t as i64)),
            ("fwd_ms", Json::Num(fwd_s * 1e3)),
            ("bwd_ms", Json::Num(bwd_s * 1e3)),
            ("total_ms", Json::Num(total * 1e3)),
            ("gflops", Json::Num(flops / total / 1e9)),
            ("speedup_vs_1t", Json::Num(one_thread_s / total)),
            ("speedup_vs_materialized", Json::Num(ref_s / total)),
        ]));
    }
    Json::obj(vec![
        ("name", Json::str(case.label)),
        ("geometry", Json::str(case.note)),
        ("materialized_ref_fwd_1t_ms", Json::Num(ref_fwd_s * 1e3)),
        ("materialized_ref_bwd_1t_ms", Json::Num(ref_bwd_s * 1e3)),
        ("fused_vs_materialized_fwd_1t", Json::Num(ref_fwd_s / fused_1t.0)),
        ("fused_vs_materialized_bwd_1t", Json::Num(ref_bwd_s / fused_1t.1)),
        ("fused_vs_materialized_1t", Json::Num(ref_s / (fused_1t.0 + fused_1t.1))),
        ("threads", Json::Arr(entries)),
    ])
}

fn bench_conv(table: &mut Table) -> Json {
    let cases = conv_cases().iter().map(|c| bench_conv_case(c, table)).collect();
    Json::obj(vec![("cases", Json::Arr(cases))])
}

/// CI smoke gate: times the fused VGG16 conv3-256 layer (fwd + bwd) at one
/// and four logical threads and fails (exit 1) if the 4T schedule regresses
/// past the host-aware floor. On a multi-core host the parallel path must
/// win outright; a single-core host cannot show wall-clock speedup from
/// extra logical threads, so there the gate only bounds dispatch overhead.
fn smoke(host_threads: usize) -> i32 {
    let cases = conv_cases();
    let case = &cases[0]; // VGG16 conv3-256
    let geom = case.geom;
    let (batch, out_channels) = (case.batch, case.out_channels);
    let mut b = ConvBuffers::new(case);
    let mut step = || {
        conv2d_forward(&geom, batch, out_channels, &b.input, &b.weights, &b.bias, &mut b.output);
        conv2d_backward(
            &geom,
            batch,
            out_channels,
            &b.input,
            &b.weights,
            &b.d_output,
            &mut b.d_weights,
            &mut b.d_bias,
            &mut b.d_input,
        );
    };
    let t1 = parallel::with_threads(1, || time_per_rep(3, &mut step));
    let t4 = parallel::with_threads(4, || time_per_rep(3, &mut step));
    let speedup = t1 / t4;
    // A single-core host cannot show wall-clock parallel speedup, so the
    // floor there only bounds dispatch overhead (loosely: shared hosts
    // show multi-hundred-ms steal spikes).
    let floor = if host_threads >= 2 { 1.0 } else { 0.6 };
    println!(
        "smoke: {} fwd+bwd 1T {:.1} ms, 4T {:.1} ms, speedup {speedup:.2}x \
         (floor {floor:.2}, host cores {host_threads})",
        case.label,
        t1 * 1e3,
        t4 * 1e3,
    );
    if speedup < floor {
        eprintln!("smoke FAILED: conv 4T/1T speedup {speedup:.2}x below floor {floor:.2}x");
        1
    } else {
        println!("smoke OK");
        0
    }
}

fn bench_smb_accumulate(table: &mut Table) -> Json {
    const ELEMS: usize = 1 << 20; // 4 MiB of f32 per accumulate
    const ROUNDS: usize = 8;

    let mut entries = Vec::new();
    let mut one_thread_s = f64::NAN;
    for &t in &THREAD_COUNTS {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(1));
        let server = SmbServer::new(RdmaFabric::new(fabric)).unwrap();
        let wall = Arc::new(Mutex::new(0.0f64));
        let wall2 = Arc::clone(&wall);
        let mut sim = Simulation::new();
        sim.spawn("accum", move |ctx| {
            let client = SmbClient::new(server, NodeId(0));
            let src_key = client.create(&ctx, "src", ELEMS, None).unwrap();
            let dst_key = client.create(&ctx, "dst", ELEMS, None).unwrap();
            let src = client.alloc(&ctx, src_key).unwrap();
            let dst = client.alloc(&ctx, dst_key).unwrap();
            let data = filled(ELEMS, 0.019);
            client.write(&ctx, &src, &data).unwrap();
            // The override must live on the sim-process thread: that's
            // where the server's data-plane add executes.
            parallel::with_threads(t, || {
                client.accumulate(&ctx, &src, &dst).unwrap(); // warm-up
                let t0 = Instant::now();
                for _ in 0..ROUNDS {
                    client.accumulate(&ctx, &src, &dst).unwrap();
                }
                *wall2.lock().unwrap() = t0.elapsed().as_secs_f64() / ROUNDS as f64;
            });
        });
        sim.run();
        let s = *wall.lock().unwrap();
        if t == 1 {
            one_thread_s = s;
        }
        let gbps = (ELEMS * 4) as f64 / s / 1e9;
        table.row_owned(vec![
            format!("smb accumulate {} MiB", ELEMS * 4 / (1 << 20)),
            t.to_string(),
            format!("{:.2}", s * 1e3),
            format!("{gbps:.2} GB/s"),
            format!("{:.2}x vs 1T", one_thread_s / s),
        ]);
        entries.push(Json::obj(vec![
            ("threads", Json::Int(t as i64)),
            ("ms", Json::Num(s * 1e3)),
            ("gbps", Json::Num(gbps)),
            ("speedup_vs_1t", Json::Num(one_thread_s / s)),
        ]));
    }
    Json::obj(vec![("elems", Json::Int(ELEMS as i64)), ("threads", Json::Arr(entries))])
}

/// Trains the CNN proxy for a fixed seeded schedule and returns the FNV-1a
/// hash of the final weight bits. Identical output at any thread count is
/// the end-to-end determinism check wired into `scripts/check.sh`.
fn training_checksum() -> u64 {
    let net = proxies::small_cnn(3, 16, 4, 7).expect("geometry fits");
    let mut solver = Solver::new(
        net,
        SolverConfig {
            base_lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0005,
            policy: LrPolicy::Step { gamma: 0.1, step_size: 20 },
            clip_gradients: Some(5.0),
        },
    );
    let data = SyntheticImages::new(4, 3, 16, 64, 0.5, 20180707);
    let batch = 16;
    for step in 0..30 {
        let indices: Vec<usize> = (0..batch).map(|j| (step * batch + j) % data.len()).collect();
        let (x, labels) = data.minibatch(&indices).expect("indices in range");
        solver.step(&x, &labels).expect("shapes match");
    }
    let mut net = solver.into_net();
    let mut weights = vec![0.0f32; net.param_len()];
    net.copy_weights_to(&mut weights).expect("sized to param_len");

    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in weights {
        for byte in w.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn main() {
    if std::env::args().any(|a| a == "--checksum") {
        println!("weights_checksum=0x{:016x}", training_checksum());
        return;
    }

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke(host_threads));
    }
    println!("Kernel throughput at 1/2/4/8 logical threads (deterministic backend)");
    println!("host available_parallelism: {host_threads}\n");

    let mut table =
        Table::new("Kernel throughput", &["kernel", "threads", "ms/rep", "throughput", "speedup"]);
    let gemm_json = bench_gemm(&mut table);
    let conv_json = bench_conv(&mut table);
    let smb_json = bench_smb_accumulate(&mut table);
    table.print();

    let doc = Json::obj(vec![
        ("benchmark", Json::str("kernel_bench")),
        ("available_parallelism", Json::Int(host_threads as i64)),
        (
            "note",
            Json::str(
                "thread sweeps use with_threads() overrides; wall-clock speedups above 1x \
                 require the host to expose that many cores",
            ),
        ),
        ("gemm", gemm_json),
        ("conv", conv_json),
        ("smb_accumulate", smb_json),
        ("table", Json::from(&table)),
    ]);
    match write_bench_json("kernels", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_kernels.json: {e}"),
    }
}
