//! End-to-end: the paper's headline pairing — an Inception-architecture
//! network trained with Hybrid SGD across node groups — at proxy scale.

use std::sync::Arc;

use shmcaffe_repro::dnn::data::SyntheticImages;
use shmcaffe_repro::dnn::netspec::build_net;
use shmcaffe_repro::dnn::{LrPolicy, SolverConfig};
use shmcaffe_repro::models::proxies;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::{ShmCaffeA, ShmCaffeH};
use shmcaffe_repro::platform::trainer::RealTrainerFactory;
use shmcaffe_repro::simnet::jitter::JitterModel;
use shmcaffe_repro::simnet::topology::ClusterSpec;
use shmcaffe_repro::simnet::SimDuration;

fn image_factory(net_seed: u64) -> RealTrainerFactory {
    RealTrainerFactory::builder()
        .dataset(Arc::new(SyntheticImages::new(3, 1, 8, 240, 0.08, 17)))
        .net_builder(move |s| {
            proxies::mini_inception(1, 8, 3, s ^ net_seed).expect("geometry fits")
        })
        .solver(SolverConfig {
            base_lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0005,
            policy: LrPolicy::Fixed,
            clip_gradients: Some(5.0),
        })
        .batch(12)
        .comp_model(SimDuration::from_millis(3), JitterModel::NONE)
        .build()
}

#[test]
fn mini_inception_trains_under_hybrid_sgd() {
    let cfg = ShmCaffeConfig {
        max_iters: 60,
        progress_every: 15,
        eval_every: 60,
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let report = ShmCaffeH::new(ClusterSpec::paper_testbed(2), 2, 2, cfg)
        .run(image_factory(5))
        .expect("platform runs");
    let last = report.final_eval().expect("evaluations recorded");
    assert!(last.top1 > 0.7, "hybrid-trained mini inception should learn: top-1 {}", last.top1);
    // All four workers completed in lockstep.
    for w in &report.workers {
        assert_eq!(w.iters, 60);
    }
}

#[test]
fn netspec_network_trains_under_async_seasgd() {
    let factory = RealTrainerFactory::builder()
        .dataset(Arc::new(SyntheticImages::new(3, 1, 8, 240, 0.08, 29)))
        .net_builder(|seed| {
            build_net("spec", (1, 8, 8), "conv 6 3x3 pad 1; relu; pool 2; fc 32; relu; fc 3", seed)
                .expect("valid spec")
        })
        .solver(SolverConfig { base_lr: 0.05, ..Default::default() })
        .batch(12)
        .comp_model(SimDuration::from_millis(3), JitterModel::NONE)
        .build();
    let cfg = ShmCaffeConfig {
        max_iters: 80,
        progress_every: 20,
        eval_every: 80,
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let report =
        ShmCaffeA::new(ClusterSpec::paper_testbed(1), 4, cfg).run(factory).expect("platform runs");
    let last = report.final_eval().expect("evaluations recorded");
    assert!(last.top1 > 0.7, "spec-built net should learn: top-1 {}", last.top1);
}
