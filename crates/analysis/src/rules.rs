//! The determinism lint rules.
//!
//! Every rule is lexical (it runs on comment/string-stripped source, see
//! [`crate::scanner`]) and scoped by workspace-relative path. The rules and
//! their rationale are documented in DESIGN.md § Enforced invariants; the
//! allowlist policy lives in `analysis.toml` at the workspace root.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scanner::{strip_non_code, tokens, TokenKind};

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (e.g. `hash-collections`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.excerpt)
    }
}

/// Rule: no `HashMap`/`HashSet` in simulation or data-plane crates.
/// Iteration order of hashed collections depends on the hasher's random
/// seed, which silently breaks run-to-run determinism.
pub const RULE_HASH_COLLECTIONS: &str = "hash-collections";
/// Rule: no ambient wall-clock time sources outside the bench crate.
pub const RULE_AMBIENT_TIME: &str = "ambient-time";
/// Rule: no ambient (OS-seeded) randomness outside the bench crate.
pub const RULE_AMBIENT_RNG: &str = "ambient-rng";
/// Rule: float reductions must go through the fixed-order helpers in
/// `shmcaffe-tensor`, not ad-hoc `.sum::<f32>()` folds whose grouping an
/// iterator refactor can change.
pub const RULE_FLOAT_REDUCTION: &str = "float-reduction";
/// Rule: `unsafe` appears only in the audited tensor hot paths (and the
/// counting allocator of the allocation-free steady-state test).
pub const RULE_UNSAFE_CODE: &str = "unsafe-code";
/// Rule: every crate root carries the workspace unsafe policy attribute.
pub const RULE_UNSAFE_POLICY: &str = "unsafe-policy";
/// Rule: no `.unwrap()`/`.expect(` in the `smb`/`rdma` data plane. These
/// crates sit under fault injection — partitions, fencing rejections, and
/// crashes are *expected* there, and a panic turns a recoverable fault
/// into a dead worker. Errors must flow through `SmbError`/`RdmaError`.
/// Test modules (everything at and below the first `#[cfg(test)]`) are
/// exempt: a test asserting on a live segment may unwrap.
pub const RULE_DATA_PLANE_PANIC: &str = "data-plane-panic";
/// Rule: no OS *waiting* primitives (`Condvar`, `Barrier`,
/// `std::sync::mpsc`, `thread::park`/`park_timeout`, `crossbeam` channels)
/// in the cooperative simulation crates. Every proc runs on a real thread
/// the virtual-time scheduler parks and wakes one at a time; a proc that
/// waits on an OS primitive instead of the scheduler stalls virtual time
/// for the whole simulation and is invisible to the schedule explorer's
/// choice points. Plain `parking_lot::Mutex` around short critical sections
/// stays legal — it never waits across a scheduler step. The one audited
/// exemption is `crates/simnet/src/sched.rs` itself, which implements the
/// scheduler on a parking-lot condvar.
pub const RULE_BLOCKING_PRIMITIVE: &str = "blocking-primitive";

/// All content rule identifiers, for allowlist validation.
pub const ALL_RULES: &[&str] = &[
    RULE_HASH_COLLECTIONS,
    RULE_AMBIENT_TIME,
    RULE_AMBIENT_RNG,
    RULE_FLOAT_REDUCTION,
    RULE_UNSAFE_CODE,
    RULE_UNSAFE_POLICY,
    RULE_DATA_PLANE_PANIC,
    RULE_BLOCKING_PRIMITIVE,
];

/// The bench crate measures real hardware: wall clocks, OS entropy and
/// hashed scratch maps are its business.
const BENCH_PREFIX: &str = "crates/bench/";

/// Files allowed to contain `unsafe`: the packed-gemm micro-kernel, the
/// worker pool's scoped-task transmute and `SliceParts` disjoint-range
/// writer (documented and Miri-covered, scripts/miri.sh), and the counting
/// `#[global_allocator]` the allocation-free steady-state test installs.
const UNSAFE_ALLOWED_FILES: &[&str] = &[
    "crates/tensor/src/gemm.rs",
    "crates/tensor/src/parallel.rs",
    "crates/tensor/tests/alloc_free.rs",
];

/// Rules that match by identifier-token equality. The lexer guarantees a
/// match is a real identifier: substrings of longer names, lifetimes
/// (`'Instant`), comment and string bodies never fire, and raw identifiers
/// (`r#HashMap`) still do.
const IDENT_RULES: &[&str] = &[
    RULE_HASH_COLLECTIONS,
    RULE_AMBIENT_TIME,
    RULE_AMBIENT_RNG,
    RULE_UNSAFE_CODE,
    RULE_BLOCKING_PRIMITIVE,
];

fn banned_idents(rule: &'static str) -> &'static [&'static str] {
    match rule {
        RULE_HASH_COLLECTIONS => &["HashMap", "HashSet"],
        RULE_AMBIENT_TIME => &["Instant", "SystemTime", "UNIX_EPOCH", "chrono"],
        RULE_AMBIENT_RNG => &["thread_rng", "from_entropy", "OsRng"],
        RULE_UNSAFE_CODE => &["unsafe"],
        RULE_BLOCKING_PRIMITIVE => {
            &["Condvar", "Barrier", "mpsc", "park", "park_timeout", "crossbeam"]
        }
        _ => &[],
    }
}

/// `src/` trees of the cooperative simulation crates: everything that runs
/// procs on the virtual-time scheduler and must never block on the OS.
const BLOCKING_SCOPE: &[&str] = &[
    "crates/simnet/src/",
    "crates/smb/src/",
    "crates/rdma/src/",
    "crates/shmcaffe/src/",
    "crates/mpi/src/",
    "crates/collectives/src/",
];

/// The scheduler implementation itself: the one place real threads park.
const BLOCKING_EXEMPT_FILE: &str = "crates/simnet/src/sched.rs";

/// Substring needles for the float-reduction rule (turbofished reductions
/// over float iterators; integer reductions are exact and exempt).
const FLOAT_REDUCTIONS: &[&str] =
    &[".sum::<f32>()", ".sum::<f64>()", ".product::<f32>()", ".product::<f64>()"];

/// Substring needles for the data-plane-panic rule. `.unwrap()` is exact
/// (so `.unwrap_or(..)` and friends stay legal); `.expect(` catches every
/// message variant without matching `.expect_err(`.
const DATA_PLANE_PANICS: &[&str] = &[".unwrap()", ".expect("];

/// Crates whose `src/` trees form the fault-injected data plane.
const DATA_PLANE_PREFIXES: &[&str] = &["crates/smb/src/", "crates/rdma/src/"];

fn rule_applies(rule: &'static str, path: &str) -> bool {
    if path.starts_with(BENCH_PREFIX) {
        // Only the unsafe policy reaches into bench.
        return rule == RULE_UNSAFE_CODE || rule == RULE_UNSAFE_POLICY;
    }
    match rule {
        // The tensor crate hosts the fixed-order reduction helpers the rest
        // of the workspace is required to call.
        RULE_FLOAT_REDUCTION => !path.starts_with("crates/tensor/"),
        RULE_BLOCKING_PRIMITIVE => {
            BLOCKING_SCOPE.iter().any(|p| path.starts_with(p)) && path != BLOCKING_EXEMPT_FILE
        }
        _ => true,
    }
}

/// Scans one file's contents. `path` must be workspace-relative with
/// forward slashes; it selects which rules apply.
pub fn scan_file(path: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let code = strip_non_code(source);
    let original_lines: Vec<&str> = source.lines().collect();
    let excerpt = |lineno: usize| -> String {
        original_lines.get(lineno - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };

    // The data-plane-panic rule stops at the first `#[cfg(test)]`: this
    // workspace keeps test modules at the bottom of each source file, so
    // everything from that attribute on is test code.
    let data_plane = DATA_PLANE_PREFIXES.iter().any(|p| path.starts_with(p));
    let first_test_line =
        code.lines().position(|l| l.contains("#[cfg(test)]")).map_or(usize::MAX, |idx| idx + 1);

    // Token pass: the identifier-equality rules, at most one violation per
    // (rule, line).
    let mut flagged: Vec<(&'static str, usize)> = Vec::new();
    for tok in tokens(source) {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        for &rule in IDENT_RULES {
            if !rule_applies(rule, path) {
                continue;
            }
            if rule == RULE_UNSAFE_CODE && UNSAFE_ALLOWED_FILES.contains(&path) {
                continue;
            }
            if banned_idents(rule).contains(&tok.text.as_str())
                && !flagged.contains(&(rule, tok.line))
            {
                flagged.push((rule, tok.line));
                out.push(Violation {
                    rule,
                    path: path.to_string(),
                    line: tok.line,
                    excerpt: excerpt(tok.line),
                });
            }
        }
    }

    // Line pass: the multi-token substring rules, over comment/string
    // stripped source so look-alikes in prose never fire.
    for (idx, line) in code.lines().enumerate() {
        let lineno = idx + 1;
        if data_plane
            && lineno < first_test_line
            && DATA_PLANE_PANICS.iter().any(|pat| line.contains(pat))
        {
            out.push(Violation {
                rule: RULE_DATA_PLANE_PANIC,
                path: path.to_string(),
                line: lineno,
                excerpt: excerpt(lineno),
            });
        }
        if rule_applies(RULE_FLOAT_REDUCTION, path)
            && FLOAT_REDUCTIONS.iter().any(|pat| line.contains(pat))
        {
            out.push(Violation {
                rule: RULE_FLOAT_REDUCTION,
                path: path.to_string(),
                line: lineno,
                excerpt: excerpt(lineno),
            });
        }
    }

    if let Some(v) = check_unsafe_policy(path, &code) {
        out.push(v);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Crate roots must carry the workspace unsafe policy: `forbid(unsafe_code)`
/// everywhere, except `shmcaffe-tensor` which keeps `deny(unsafe_code)` so
/// its two audited sites can opt back in with per-site `allow`.
fn check_unsafe_policy(path: &str, code: &str) -> Option<Violation> {
    let is_crate_root = path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3);
    if !is_crate_root {
        return None;
    }
    let required = if path == "crates/tensor/src/lib.rs" {
        "#![deny(unsafe_code)]"
    } else {
        "#![forbid(unsafe_code)]"
    };
    if code.contains(required) {
        return None;
    }
    Some(Violation {
        rule: RULE_UNSAFE_POLICY,
        path: path.to_string(),
        line: 1,
        excerpt: format!("crate root is missing `{required}`"),
    })
}

/// Directories never scanned: build output, VCS metadata, and lint fixture
/// corpora (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (the workspace root), in a
/// deterministic path order.
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk or file reads.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let source = fs::read_to_string(&file)?;
        out.extend(scan_file(&rel, &source));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_in_sim_crate_fires() {
        let vs = scan_file("crates/simnet/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_HASH_COLLECTIONS);
        assert_eq!(vs[0].line, 1);
    }

    #[test]
    fn hash_map_in_bench_is_exempt() {
        let vs = scan_file("crates/bench/src/x.rs", "use std::collections::HashMap;\n");
        assert!(vs.is_empty());
    }

    #[test]
    fn hash_map_in_comment_is_ignored() {
        let vs = scan_file("crates/simnet/src/x.rs", "// BTreeMap, not HashMap: ordering\n");
        assert!(vs.is_empty());
    }

    #[test]
    fn instant_word_boundary() {
        assert!(scan_file("crates/simnet/src/x.rs", "/// Instantiates the fabric.\nfn f() {}\n")
            .is_empty());
        let vs = scan_file("crates/simnet/src/x.rs", "let t = std::time::Instant::now();\n");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_AMBIENT_TIME);
    }

    #[test]
    fn unsafe_allowed_only_in_audited_files() {
        let src = "unsafe { core::hint::unreachable_unchecked() }\n";
        assert!(scan_file("crates/tensor/src/gemm.rs", src).is_empty());
        assert!(scan_file("crates/tensor/src/parallel.rs", src).is_empty());
        assert!(scan_file("crates/tensor/tests/alloc_free.rs", src).is_empty());
        let vs = scan_file("crates/tensor/src/ops.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_UNSAFE_CODE);
    }

    #[test]
    fn forbid_attribute_does_not_trip_unsafe_rule() {
        let vs: Vec<_> = scan_file("crates/smb/src/lib.rs", "#![forbid(unsafe_code)]\n")
            .into_iter()
            .filter(|v| v.rule == RULE_UNSAFE_CODE)
            .collect();
        assert!(vs.is_empty());
    }

    #[test]
    fn float_reduction_fires_outside_tensor() {
        let src = "let m = xs.iter().sum::<f32>() / n;\n";
        let vs = scan_file("crates/dnn/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_FLOAT_REDUCTION);
        assert!(scan_file("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn integer_sum_is_fine() {
        assert!(scan_file("crates/dnn/src/x.rs", "let n = xs.iter().sum::<u64>();\n").is_empty());
    }

    #[test]
    fn unwrap_in_data_plane_fires() {
        let vs = scan_file("crates/smb/src/x.rs", "let v = map.get(&k).unwrap();\n");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_DATA_PLANE_PANIC);
        let vs = scan_file("crates/rdma/src/x.rs", "let mr = regions.get(&k).expect(\"mr\");\n");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_DATA_PLANE_PANIC);
        // Fallible combinators and expect_err stay legal.
        assert!(scan_file("crates/smb/src/x.rs", "let v = m.get(&k).unwrap_or(0);\n").is_empty());
        assert!(scan_file("crates/smb/src/x.rs", "let e = r.expect_err(\"no\");\n").is_empty());
        // Comment and string look-alikes do not fire.
        assert!(scan_file("crates/smb/src/x.rs", "// never .unwrap() here\n").is_empty());
    }

    #[test]
    fn unwrap_below_cfg_test_or_outside_data_plane_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { r().unwrap(); }\n}\n";
        assert!(scan_file("crates/smb/src/x.rs", src).is_empty());
        // Other crates and the data-plane crates' test trees are out of scope.
        assert!(scan_file("crates/dnn/src/x.rs", "x.unwrap();\n").is_empty());
        assert!(scan_file("crates/smb/tests/x.rs", "x.unwrap();\n").is_empty());
        // Code *above* the test module is still checked.
        let above = "fn f() { r().unwrap(); }\n#[cfg(test)]\nmod tests {}\n";
        let vs = scan_file("crates/smb/src/x.rs", above);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 1);
    }

    #[test]
    fn blocking_primitives_banned_outside_the_scheduler() {
        let src = "use std::sync::mpsc;\nlet b = Barrier::new(2);\nstd::thread::park();\n";
        let vs = scan_file("crates/smb/src/x.rs", src);
        assert_eq!(vs.len(), 3, "{vs:#?}");
        assert!(vs.iter().all(|v| v.rule == RULE_BLOCKING_PRIMITIVE));
        assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![1, 2, 3]);
        // The scheduler itself is the audited exemption…
        assert!(scan_file("crates/simnet/src/sched.rs", "use parking_lot::Condvar;\n").is_empty());
        // …and crates off the cooperative core (dnn's prefetcher, tensor's
        // worker pool) plus test trees may park real threads.
        assert!(scan_file("crates/dnn/src/x.rs", src).is_empty());
        assert!(scan_file("crates/tensor/src/x.rs", src).is_empty());
        assert!(scan_file("crates/simnet/tests/x.rs", src).is_empty());
    }

    #[test]
    fn lifetimes_do_not_trip_ident_rules() {
        // `'Instant` is a lifetime, not a use of std::time::Instant — the
        // old substring matcher saw a word boundary at the quote and fired.
        let src = "fn f<'Instant>(x: &'Instant str) -> &'Instant str { x }\n";
        assert!(scan_file("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_identifiers_do_trip_ident_rules() {
        // `r#HashMap` IS the identifier HashMap.
        let vs = scan_file("crates/simnet/src/x.rs", "use ext::r#HashMap;\n");
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, RULE_HASH_COLLECTIONS);
        // …while an unrelated raw identifier stays quiet.
        assert!(scan_file("crates/simnet/src/x.rs", "let r#type = 1;\n").is_empty());
    }

    #[test]
    fn one_violation_per_rule_per_line() {
        let vs = scan_file("crates/simnet/src/x.rs", "use std::sync::{Barrier, Condvar};\n");
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, RULE_BLOCKING_PRIMITIVE);
    }

    #[test]
    fn crate_root_policy_enforced() {
        let vs = scan_file("crates/mpi/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, RULE_UNSAFE_POLICY);
        assert!(scan_file("crates/mpi/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n")
            .is_empty());
        // Tensor wants deny, not forbid.
        let vs = scan_file("crates/tensor/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert_eq!(vs.len(), 1);
        assert!(scan_file("crates/tensor/src/lib.rs", "#![deny(unsafe_code)]\n").is_empty());
        // Non-root files carry no such requirement.
        assert!(scan_file("crates/mpi/src/world.rs", "pub fn f() {}\n").is_empty());
    }
}
