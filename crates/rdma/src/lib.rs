//! Verbs-style RDMA layer over the simulated InfiniBand fabric.
//!
//! The paper's SMB framework is built on RDMA: "it uses remote direct
//! memory access (RDMA), eliminating communication for data copy operations
//! between application-level buffer and kernel-level buffer" (§I), with the
//! InfiniBand remote key ("rkey") granting direct access to a remote buffer
//! (§III-B). This crate reproduces that layer:
//!
//! * [`RdmaFabric`] — per-node registered memory pools on top of
//!   [`shmcaffe_simnet::topology::Fabric`],
//! * [`MemoryRegion`] — a registered buffer identified by `(node, rkey)`,
//! * one-sided [`RdmaFabric::read`] / [`RdmaFabric::write`] that move real
//!   data between address spaces while charging virtual time to the HCA and
//!   switch resources,
//! * `*_wire` variants that decouple the *modelled* wire size from the
//!   physical payload, used by the timing experiments to simulate
//!   multi-hundred-megabyte parameter buffers with small in-memory vectors.
//!
//! Addressing is in f32 *elements* (the parameter word), the unit every
//! layer of this system traffics in; wire sizes are element count × 4 bytes.
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_simnet::{Simulation, topology::{ClusterSpec, Fabric, NodeId}};
//! use shmcaffe_rdma::RdmaFabric;
//!
//! let fabric = Fabric::new(ClusterSpec::paper_testbed(2));
//! let rdma = RdmaFabric::new(fabric);
//! let mr = rdma.register(NodeId(1), 4).unwrap();
//! let r2 = rdma.clone();
//! let mut sim = Simulation::new();
//! sim.spawn("w", move |ctx| {
//!     r2.write(&ctx, NodeId(0), &mr, 0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
//!     let mut buf = [0.0f32; 2];
//!     r2.read(&ctx, NodeId(0), &mr, 2, &mut buf).unwrap();
//!     assert_eq!(buf, [3.0, 4.0]);
//! });
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

#[cfg(feature = "race-detect")]
use shmcaffe_simnet::race::{AccessKind, RaceDetector};

use shmcaffe_simnet::fault::FaultError;
use shmcaffe_simnet::resource::TransferReport;
use shmcaffe_simnet::topology::{Fabric, NodeId};
use shmcaffe_simnet::{SimContext, SimDuration};

/// Remote access key for a registered memory region (the InfiniBand rkey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RemoteKey(pub u64);

impl fmt::Display for RemoteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey:{:#x}", self.0)
    }
}

/// A registered memory region: `(node, rkey, length-in-elements)`.
///
/// Possession of a `MemoryRegion` value is the capability to access the
/// buffer, mirroring how an rkey "enables remote machine to access directly
/// the shared memory with RDMA" (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Endpoint that hosts the physical buffer.
    pub node: NodeId,
    /// Remote access key.
    pub rkey: RemoteKey,
    /// Buffer length in f32 elements.
    pub len: usize,
}

/// State of the queue pair between a local and a remote endpoint.
///
/// Mirrors the InfiniBand QP state machine in miniature: a faulted work
/// request transitions the QP to [`QpState::Error`], after which every
/// operation on that peer pair fails fast (no wire time) until the caller
/// re-arms it via [`RdmaFabric::rearm_qp`] (Reset → Ready).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QpState {
    /// Operations are accepted.
    Ready,
    /// A work request faulted; operations fail fast until re-armed.
    Error,
    /// Mid re-arm (transient).
    Reset,
}

impl fmt::Display for QpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpState::Ready => write!(f, "Ready"),
            QpState::Error => write!(f, "Error"),
            QpState::Reset => write!(f, "Reset"),
        }
    }
}

/// Errors produced by RDMA operations. Every variant names the endpoint(s)
/// involved so callers can report which node failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// The rkey does not name a registered region on that node.
    UnknownRegion {
        /// The stale remote key.
        rkey: RemoteKey,
        /// The node the region was expected on.
        node: NodeId,
    },
    /// The access window `[offset, offset+len)` exceeds the region.
    OutOfBounds {
        /// The node hosting the region.
        node: NodeId,
        /// Requested start offset (elements).
        offset: usize,
        /// Requested length (elements).
        len: usize,
        /// Region capacity (elements).
        capacity: usize,
    },
    /// The node id does not exist on this fabric.
    BadNode(NodeId),
    /// The queue pair to the peer is not in [`QpState::Ready`]; the
    /// operation was rejected without charging wire time.
    QpNotReady {
        /// Local endpoint.
        local: NodeId,
        /// Remote endpoint.
        remote: NodeId,
        /// Observed QP state.
        state: QpState,
    },
    /// A fabric fault failed the work request; the QP is now in
    /// [`QpState::Error`].
    QpFault {
        /// Local endpoint.
        local: NodeId,
        /// Remote endpoint.
        remote: NodeId,
        /// The underlying injected fault.
        fault: FaultError,
    },
    /// The operation completed later than the caller's deadline; the QP is
    /// now in [`QpState::Error`].
    Timeout {
        /// Local endpoint.
        local: NodeId,
        /// Remote endpoint.
        remote: NodeId,
        /// How long the operation actually took.
        after: SimDuration,
    },
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::UnknownRegion { rkey, node } => {
                write!(f, "unknown memory region {rkey} on {node}")
            }
            RdmaError::OutOfBounds { node, offset, len, capacity } => {
                write!(
                    f,
                    "access [{offset}, {}) exceeds region capacity {capacity} on {node}",
                    offset + len
                )
            }
            RdmaError::BadNode(n) => write!(f, "no such fabric endpoint: {n}"),
            RdmaError::QpNotReady { local, remote, state } => {
                write!(f, "qp {local}->{remote} is {state}, not Ready")
            }
            RdmaError::QpFault { local, remote, fault } => {
                write!(f, "qp {local}->{remote} faulted: {fault}")
            }
            RdmaError::Timeout { local, remote, after } => {
                write!(f, "op on qp {local}->{remote} exceeded deadline (took {after})")
            }
        }
    }
}

impl std::error::Error for RdmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RdmaError::QpFault { fault, .. } => Some(fault),
            _ => None,
        }
    }
}

struct NodePool {
    // BTreeMap, not HashMap: diagnostics and teardown paths iterate the
    // registered regions, and iteration order must be deterministic.
    regions: Mutex<BTreeMap<u64, Vec<f32>>>,
}

struct FabricInner {
    fabric: Fabric,
    pools: Vec<NodePool>,
    next_key: Mutex<u64>,
    /// QP state per (local, remote) endpoint pair; absent means Ready.
    qp_states: Mutex<BTreeMap<(NodeId, NodeId), QpState>>,
    /// Happens-before race detector over this fabric's regions. Owned per
    /// fabric (not global) so concurrently running simulations in one test
    /// binary never observe each other's accesses.
    #[cfg(feature = "race-detect")]
    race: RaceDetector,
}

/// The RDMA-capable fabric: registered memory pools on every endpoint.
///
/// Cheap to clone (shared handle).
#[derive(Clone)]
pub struct RdmaFabric {
    inner: Arc<FabricInner>,
}

impl fmt::Debug for RdmaFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RdmaFabric").field("endpoints", &self.inner.pools.len()).finish()
    }
}

impl RdmaFabric {
    /// Wraps a fabric with per-endpoint memory pools.
    pub fn new(fabric: Fabric) -> Self {
        let pools = (0..fabric.endpoints())
            .map(|_| NodePool { regions: Mutex::new(BTreeMap::new()) })
            .collect();
        RdmaFabric {
            inner: Arc::new(FabricInner {
                fabric,
                pools,
                next_key: Mutex::new(1),
                qp_states: Mutex::new(BTreeMap::new()),
                #[cfg(feature = "race-detect")]
                race: RaceDetector::new(),
            }),
        }
    }

    /// The fabric's happens-before race detector (only with the
    /// `race-detect` feature). Higher layers record engine-serialized
    /// accesses (e.g. the SMB accumulate) through this handle; tests that
    /// deliberately seed a race disable halting and inspect its reports.
    #[cfg(feature = "race-detect")]
    pub fn race_detector(&self) -> &RaceDetector {
        &self.inner.race
    }

    /// Current QP state between two endpoints (Ready unless faulted).
    pub fn qp_state(&self, local: NodeId, remote: NodeId) -> QpState {
        self.inner.qp_states.lock().get(&(local, remote)).copied().unwrap_or(QpState::Ready)
    }

    fn set_qp(&self, local: NodeId, remote: NodeId, state: QpState) {
        self.inner.qp_states.lock().insert((local, remote), state);
    }

    /// Marks a QP as faulted. Higher layers (e.g. the SMB client, whose
    /// data path charges wire time itself) call this when the fabric's
    /// fault injector fails one of their transfers, so subsequent ops on
    /// the pair fail fast until [`RdmaFabric::rearm_qp`].
    pub fn fault_qp(&self, local: NodeId, remote: NodeId) {
        self.set_qp(local, remote, QpState::Error);
    }

    /// Re-arms a faulted QP: transitions Error → Reset, pays a small
    /// re-initialisation latency in virtual time, then lands in Ready.
    /// A no-op on an already-Ready pair.
    pub fn rearm_qp(&self, ctx: &SimContext, local: NodeId, remote: NodeId) {
        if self.qp_state(local, remote) == QpState::Ready {
            return;
        }
        self.set_qp(local, remote, QpState::Reset);
        ctx.sleep(SimDuration::from_micros(10));
        self.set_qp(local, remote, QpState::Ready);
    }

    /// Fails over a client's QP from a dead peer to a new one: the old pair
    /// is torn down ([`QpState::Error`], where it stays — the peer is gone),
    /// and a fresh pair to `new_remote` is brought up through the usual
    /// Reset → Ready transition, paying the re-initialisation latency.
    /// The SMB failover path calls this after promoting a standby server.
    pub fn reconnect_qp(
        &self,
        ctx: &SimContext,
        local: NodeId,
        old_remote: NodeId,
        new_remote: NodeId,
    ) {
        self.set_qp(local, old_remote, QpState::Error);
        self.set_qp(local, new_remote, QpState::Reset);
        ctx.sleep(SimDuration::from_micros(10));
        self.set_qp(local, new_remote, QpState::Ready);
    }

    fn check_qp(&self, local: NodeId, remote: NodeId) -> Result<(), RdmaError> {
        let state = self.qp_state(local, remote);
        if state == QpState::Ready {
            Ok(())
        } else {
            Err(RdmaError::QpNotReady { local, remote, state })
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    fn pool(&self, node: NodeId) -> Result<&NodePool, RdmaError> {
        self.inner.pools.get(node.0).ok_or(RdmaError::BadNode(node))
    }

    /// Registers a zero-initialised buffer of `len` elements on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::BadNode`] for an unknown endpoint.
    pub fn register(&self, node: NodeId, len: usize) -> Result<MemoryRegion, RdmaError> {
        self.register_with(node, vec![0.0; len])
    }

    /// Registers an existing buffer on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::BadNode`] for an unknown endpoint.
    pub fn register_with(&self, node: NodeId, data: Vec<f32>) -> Result<MemoryRegion, RdmaError> {
        let pool = self.pool(node)?;
        let key = {
            let mut next = self.inner.next_key.lock();
            let k = *next;
            *next += 1;
            k
        };
        let len = data.len();
        pool.regions.lock().insert(key, data);
        Ok(MemoryRegion { node, rkey: RemoteKey(key), len })
    }

    /// Deregisters a region, returning its final contents.
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::UnknownRegion`] if already deregistered.
    pub fn deregister(&self, mr: &MemoryRegion) -> Result<Vec<f32>, RdmaError> {
        let data = self
            .pool(mr.node)?
            .regions
            .lock()
            .remove(&mr.rkey.0)
            .ok_or(RdmaError::UnknownRegion { rkey: mr.rkey, node: mr.node })?;
        // Rkeys are never reused, so the access history cannot alias a
        // later region.
        #[cfg(feature = "race-detect")]
        self.inner.race.forget_region(mr.rkey.0);
        Ok(data)
    }

    /// Runs `f` over the region's buffer on its host node (a *local* access:
    /// no fabric time is charged). This is how server-side operations such
    /// as the SMB accumulate engine touch their own memory.
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::UnknownRegion`] for a stale region.
    pub fn with_region<R>(
        &self,
        mr: &MemoryRegion,
        f: impl FnOnce(&mut [f32]) -> R,
    ) -> Result<R, RdmaError> {
        let pool = self.pool(mr.node)?;
        let mut regions = pool.regions.lock();
        let buf = regions
            .get_mut(&mr.rkey.0)
            .ok_or(RdmaError::UnknownRegion { rkey: mr.rkey, node: mr.node })?;
        Ok(f(buf))
    }

    /// Runs `f` over two regions on the *same* node simultaneously (the SMB
    /// accumulate path: private ΔW buffer into the shared global buffer).
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::UnknownRegion`] if either region is stale, or
    /// [`RdmaError::BadNode`] if they live on different nodes.
    pub fn with_two_regions<R>(
        &self,
        src: &MemoryRegion,
        dst: &MemoryRegion,
        f: impl FnOnce(&[f32], &mut [f32]) -> R,
    ) -> Result<R, RdmaError> {
        if src.node != dst.node {
            return Err(RdmaError::BadNode(src.node));
        }
        let pool = self.pool(src.node)?;
        let mut regions = pool.regions.lock();
        // Take src out briefly to get simultaneous access without unsafe.
        let src_buf = regions
            .remove(&src.rkey.0)
            .ok_or(RdmaError::UnknownRegion { rkey: src.rkey, node: src.node })?;
        let result = match regions.get_mut(&dst.rkey.0) {
            Some(dst_buf) => Ok(f(&src_buf, dst_buf)),
            None => Err(RdmaError::UnknownRegion { rkey: dst.rkey, node: dst.node }),
        };
        regions.insert(src.rkey.0, src_buf);
        result
    }

    fn check_bounds(mr: &MemoryRegion, offset: usize, len: usize) -> Result<(), RdmaError> {
        if offset + len > mr.len {
            return Err(RdmaError::OutOfBounds { node: mr.node, offset, len, capacity: mr.len });
        }
        Ok(())
    }

    /// One-sided RDMA read: copies `out.len()` elements starting at
    /// `offset` from the remote region into `out`, charging the wire time
    /// for `out.len() * 4` bytes.
    ///
    /// # Errors
    ///
    /// Returns bounds/region errors; on error no time is charged.
    pub fn read(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        out: &mut [f32],
    ) -> Result<TransferReport, RdmaError> {
        self.read_wire(ctx, local, mr, offset, out, (out.len() * 4) as u64)
    }

    /// [`RdmaFabric::read`] with an explicit modelled wire size in bytes.
    ///
    /// # Errors
    ///
    /// Returns bounds/region errors; on error no time is charged.
    pub fn read_wire(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        out: &mut [f32],
        wire_bytes: u64,
    ) -> Result<TransferReport, RdmaError> {
        self.read_wire_paced(ctx, local, mr, offset, out, wire_bytes, None)
    }

    /// [`RdmaFabric::read_wire`] with an optional per-stream pacing limit
    /// in bytes/s (see
    /// [`shmcaffe_simnet::resource::BandwidthResource::transfer_stream`]).
    ///
    /// # Errors
    ///
    /// Returns bounds/region errors; on error no time is charged.
    #[allow(clippy::too_many_arguments)]
    pub fn read_wire_paced(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        out: &mut [f32],
        wire_bytes: u64,
        stream_bps: Option<f64>,
    ) -> Result<TransferReport, RdmaError> {
        Self::check_bounds(mr, offset, out.len())?;
        self.with_region(mr, |buf| out.copy_from_slice(&buf[offset..offset + out.len()]))?;
        ctx.footprint(mr.rkey.0, offset, out.len(), shmcaffe_simnet::FootprintKind::Read);
        #[cfg(feature = "race-detect")]
        self.inner.race.record(
            ctx,
            mr.rkey.0,
            offset,
            out.len(),
            AccessKind::Read,
            "rdma::read_wire_paced",
        );
        // Data flows remote -> local.
        Ok(self.inner.fabric.net_transfer_stream(ctx, mr.node, local, wire_bytes, stream_bps))
    }

    /// One-sided RDMA write: copies `data` into the remote region at
    /// `offset`, charging the wire time for `data.len() * 4` bytes.
    ///
    /// # Errors
    ///
    /// Returns bounds/region errors; on error no time is charged.
    pub fn write(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        data: &[f32],
    ) -> Result<TransferReport, RdmaError> {
        self.write_wire(ctx, local, mr, offset, data, (data.len() * 4) as u64)
    }

    /// [`RdmaFabric::write`] with an explicit modelled wire size in bytes.
    ///
    /// # Errors
    ///
    /// Returns bounds/region errors; on error no time is charged.
    pub fn write_wire(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        data: &[f32],
        wire_bytes: u64,
    ) -> Result<TransferReport, RdmaError> {
        self.write_wire_paced(ctx, local, mr, offset, data, wire_bytes, None)
    }

    /// [`RdmaFabric::write_wire`] with an optional per-stream pacing limit
    /// in bytes/s.
    ///
    /// # Errors
    ///
    /// Returns bounds/region errors; on error no time is charged.
    #[allow(clippy::too_many_arguments)]
    pub fn write_wire_paced(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        data: &[f32],
        wire_bytes: u64,
        stream_bps: Option<f64>,
    ) -> Result<TransferReport, RdmaError> {
        Self::check_bounds(mr, offset, data.len())?;
        // Charge wire time first (data flows local -> remote), then land the
        // bytes; the write is visible before this process yields control
        // back to the caller, so no other process can observe a torn state.
        let report =
            self.inner.fabric.net_transfer_stream(ctx, local, mr.node, wire_bytes, stream_bps);
        self.with_region(mr, |buf| buf[offset..offset + data.len()].copy_from_slice(data))?;
        ctx.footprint(mr.rkey.0, offset, data.len(), shmcaffe_simnet::FootprintKind::Write);
        #[cfg(feature = "race-detect")]
        self.inner.race.record(
            ctx,
            mr.rkey.0,
            offset,
            data.len(),
            AccessKind::Write,
            "rdma::write_wire_paced",
        );
        Ok(report)
    }

    /// Fallible [`RdmaFabric::read_wire_paced`] with QP-state and timeout
    /// semantics: the op is rejected without wire time when the QP to the
    /// region's node is not Ready; an injected fabric fault or a completion
    /// later than `timeout` transitions the QP to [`QpState::Error`] and
    /// returns the corresponding error.
    ///
    /// # Errors
    ///
    /// Region/bounds errors, [`RdmaError::QpNotReady`],
    /// [`RdmaError::QpFault`] or [`RdmaError::Timeout`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_read_wire_paced(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        out: &mut [f32],
        wire_bytes: u64,
        stream_bps: Option<f64>,
        timeout: Option<SimDuration>,
    ) -> Result<TransferReport, RdmaError> {
        self.check_qp(local, mr.node)?;
        Self::check_bounds(mr, offset, out.len())?;
        let started = ctx.now();
        let report = self
            .inner
            .fabric
            .try_net_transfer_stream(ctx, mr.node, local, wire_bytes, stream_bps)
            .map_err(|fault| {
                self.set_qp(local, mr.node, QpState::Error);
                RdmaError::QpFault { local, remote: mr.node, fault }
            })?;
        self.enforce_timeout(ctx, local, mr.node, started, timeout)?;
        // Land the payload only once the wire op succeeded.
        self.with_region(mr, |buf| out.copy_from_slice(&buf[offset..offset + out.len()]))?;
        ctx.footprint(mr.rkey.0, offset, out.len(), shmcaffe_simnet::FootprintKind::Read);
        #[cfg(feature = "race-detect")]
        self.inner.race.record(
            ctx,
            mr.rkey.0,
            offset,
            out.len(),
            AccessKind::Read,
            "rdma::try_read_wire_paced",
        );
        Ok(report)
    }

    /// Fallible [`RdmaFabric::write_wire_paced`]; see
    /// [`RdmaFabric::try_read_wire_paced`] for the QP/timeout semantics.
    /// A faulted write does not modify the remote region.
    ///
    /// # Errors
    ///
    /// Region/bounds errors, [`RdmaError::QpNotReady`],
    /// [`RdmaError::QpFault`] or [`RdmaError::Timeout`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_write_wire_paced(
        &self,
        ctx: &SimContext,
        local: NodeId,
        mr: &MemoryRegion,
        offset: usize,
        data: &[f32],
        wire_bytes: u64,
        stream_bps: Option<f64>,
        timeout: Option<SimDuration>,
    ) -> Result<TransferReport, RdmaError> {
        self.check_qp(local, mr.node)?;
        Self::check_bounds(mr, offset, data.len())?;
        let started = ctx.now();
        let report = self
            .inner
            .fabric
            .try_net_transfer_stream(ctx, local, mr.node, wire_bytes, stream_bps)
            .map_err(|fault| {
                self.set_qp(local, mr.node, QpState::Error);
                RdmaError::QpFault { local, remote: mr.node, fault }
            })?;
        self.enforce_timeout(ctx, local, mr.node, started, timeout)?;
        self.with_region(mr, |buf| buf[offset..offset + data.len()].copy_from_slice(data))?;
        ctx.footprint(mr.rkey.0, offset, data.len(), shmcaffe_simnet::FootprintKind::Write);
        #[cfg(feature = "race-detect")]
        self.inner.race.record(
            ctx,
            mr.rkey.0,
            offset,
            data.len(),
            AccessKind::Write,
            "rdma::try_write_wire_paced",
        );
        Ok(report)
    }

    fn enforce_timeout(
        &self,
        ctx: &SimContext,
        local: NodeId,
        remote: NodeId,
        started: shmcaffe_simnet::SimTime,
        timeout: Option<SimDuration>,
    ) -> Result<(), RdmaError> {
        if let Some(deadline) = timeout {
            let elapsed = ctx.now() - started;
            if elapsed > deadline {
                self.set_qp(local, remote, QpState::Error);
                return Err(RdmaError::Timeout { local, remote, after: elapsed });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_simnet::topology::ClusterSpec;
    use shmcaffe_simnet::Simulation;

    fn test_fabric() -> RdmaFabric {
        RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(2)))
    }

    #[test]
    fn register_deregister_roundtrip() {
        let rdma = test_fabric();
        let mr = rdma.register_with(NodeId(0), vec![1.0, 2.0]).unwrap();
        assert_eq!(mr.len, 2);
        let data = rdma.deregister(&mr).unwrap();
        assert_eq!(data, vec![1.0, 2.0]);
        assert_eq!(
            rdma.deregister(&mr),
            Err(RdmaError::UnknownRegion { rkey: mr.rkey, node: mr.node })
        );
    }

    #[test]
    fn rkeys_are_unique() {
        let rdma = test_fabric();
        let a = rdma.register(NodeId(0), 1).unwrap();
        let b = rdma.register(NodeId(0), 1).unwrap();
        let c = rdma.register(NodeId(1), 1).unwrap();
        assert_ne!(a.rkey, b.rkey);
        assert_ne!(b.rkey, c.rkey);
    }

    #[test]
    fn bad_node_rejected() {
        let rdma = test_fabric();
        assert_eq!(rdma.register(NodeId(99), 4).unwrap_err(), RdmaError::BadNode(NodeId(99)));
    }

    #[test]
    fn write_then_read_roundtrip_with_timing() {
        let rdma = test_fabric();
        let mem = rdma.fabric().memory_server().unwrap();
        let mr = rdma.register(mem, 8).unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let data: Vec<f32> = (0..8).map(|v| v as f32).collect();
            r.write(&ctx, NodeId(0), &mr, 0, &data).unwrap();
            let mut out = vec![0.0f32; 8];
            r.read(&ctx, NodeId(0), &mr, 0, &mut out).unwrap();
            assert_eq!(out, data);
            // 2 transfers of 32 bytes at 7 GB/s + 2 x 2 us latency.
            assert!(ctx.now().as_nanos() >= 4_000);
        });
        sim.run();
    }

    #[test]
    fn out_of_bounds_is_rejected_without_time() {
        let rdma = test_fabric();
        let mr = rdma.register(NodeId(1), 4).unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let mut out = vec![0.0f32; 3];
            let err = r.read(&ctx, NodeId(0), &mr, 2, &mut out).unwrap_err();
            assert!(matches!(err, RdmaError::OutOfBounds { .. }));
            assert_eq!(ctx.now().as_nanos(), 0, "failed op must not charge time");
        });
        sim.run();
    }

    #[test]
    fn wire_variant_charges_logical_size() {
        let rdma = test_fabric();
        let mem = rdma.fabric().memory_server().unwrap();
        let mr = rdma.register(mem, 4).unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            // Physical 16 bytes, modelled as 53.5 MB (Inception_v1 weights).
            r.write_wire(&ctx, NodeId(0), &mr, 0, &[1.0; 4], 53_500_000).unwrap();
            let ms = ctx.now().as_millis_f64();
            // 53.5 MB / 7 GB/s = 7.64 ms.
            assert!((ms - 7.64).abs() < 0.1, "took {ms} ms");
        });
        sim.run();
    }

    #[test]
    fn with_two_regions_accumulates() {
        let rdma = test_fabric();
        let src = rdma.register_with(NodeId(0), vec![1.0, 2.0]).unwrap();
        let dst = rdma.register_with(NodeId(0), vec![10.0, 20.0]).unwrap();
        rdma.with_two_regions(&src, &dst, |s, d| {
            for (dv, sv) in d.iter_mut().zip(s.iter()) {
                *dv += sv;
            }
        })
        .unwrap();
        assert_eq!(rdma.deregister(&dst).unwrap(), vec![11.0, 22.0]);
        // src must still be present after the temporary removal.
        assert_eq!(rdma.deregister(&src).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn with_two_regions_rejects_cross_node() {
        let rdma = test_fabric();
        let a = rdma.register(NodeId(0), 1).unwrap();
        let b = rdma.register(NodeId(1), 1).unwrap();
        assert!(rdma.with_two_regions(&a, &b, |_, _| ()).is_err());
    }

    #[test]
    fn faulted_qp_fails_fast_until_rearmed() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        // Link down for the first 10 ms: the first op faults the QP, the
        // second is rejected with no wire time, and after re-arm (past the
        // outage) ops succeed again.
        let plan = FaultPlan::new(3).link_down(NodeId(1), SimTime::ZERO, SimTime::from_millis(10));
        let rdma = RdmaFabric::new(Fabric::with_faults(ClusterSpec::paper_testbed(2), plan));
        let mr = rdma.register(NodeId(1), 4).unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let err = r
                .try_write_wire_paced(&ctx, NodeId(0), &mr, 0, &[1.0; 4], 16, None, None)
                .unwrap_err();
            assert!(matches!(err, RdmaError::QpFault { remote: NodeId(1), .. }));
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_some(), "QpFault must chain the fabric fault");
            assert_eq!(r.qp_state(NodeId(0), NodeId(1)), QpState::Error);

            let t_before = ctx.now();
            let err2 = r
                .try_write_wire_paced(&ctx, NodeId(0), &mr, 0, &[1.0; 4], 16, None, None)
                .unwrap_err();
            assert!(matches!(err2, RdmaError::QpNotReady { state: QpState::Error, .. }));
            assert_eq!(ctx.now(), t_before, "fail-fast must not charge time");

            ctx.sleep_until(SimTime::from_millis(10));
            r.rearm_qp(&ctx, NodeId(0), NodeId(1));
            assert_eq!(r.qp_state(NodeId(0), NodeId(1)), QpState::Ready);
            r.try_write_wire_paced(&ctx, NodeId(0), &mr, 0, &[2.0; 4], 16, None, None).unwrap();
        });
        sim.run();
        assert_eq!(rdma.deregister(&mr).unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn reconnect_qp_moves_client_to_new_peer() {
        let rdma = test_fabric();
        let mem = rdma.fabric().memory_server().unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            r.fault_qp(NodeId(0), mem);
            let t0 = ctx.now();
            r.reconnect_qp(&ctx, NodeId(0), mem, NodeId(1));
            // Old pair stays torn down; new pair is up after the re-init
            // latency.
            assert_eq!(r.qp_state(NodeId(0), mem), QpState::Error);
            assert_eq!(r.qp_state(NodeId(0), NodeId(1)), QpState::Ready);
            assert!(ctx.now() > t0, "reconnect must pay re-initialisation time");
            let mr = r.register(NodeId(1), 2).unwrap();
            r.try_write_wire_paced(&ctx, NodeId(0), &mr, 0, &[3.0; 2], 8, None, None).unwrap();
        });
        sim.run();
    }

    #[test]
    fn slow_op_times_out_and_faults_qp() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        // 1% bandwidth: 7 MB takes ~100 ms, past a 10 ms deadline.
        let plan =
            FaultPlan::new(3).link_degraded(NodeId(1), SimTime::ZERO, SimTime::from_secs(10), 0.01);
        let rdma = RdmaFabric::new(Fabric::with_faults(ClusterSpec::paper_testbed(2), plan));
        let mr = rdma.register(NodeId(1), 4).unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let mut out = [0.0f32; 4];
            let err = r
                .try_read_wire_paced(
                    &ctx,
                    NodeId(0),
                    &mr,
                    0,
                    &mut out,
                    7_000_000,
                    None,
                    Some(SimDuration::from_millis(10)),
                )
                .unwrap_err();
            assert!(matches!(err, RdmaError::Timeout { .. }));
            assert_eq!(r.qp_state(NodeId(0), NodeId(1)), QpState::Error);
        });
        sim.run();
    }

    #[test]
    fn fault_free_try_ops_match_infallible_ones() {
        let rdma = test_fabric();
        let mr = rdma.register(NodeId(1), 4).unwrap();
        let r = rdma.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            r.try_write_wire_paced(&ctx, NodeId(0), &mr, 0, &[5.0; 4], 16, None, None).unwrap();
            let mut out = [0.0f32; 4];
            r.try_read_wire_paced(
                &ctx,
                NodeId(0),
                &mr,
                0,
                &mut out,
                16,
                None,
                Some(SimDuration::from_secs(1)),
            )
            .unwrap();
            assert_eq!(out, [5.0; 4]);
            assert_eq!(r.qp_state(NodeId(0), NodeId(1)), QpState::Ready);
        });
        sim.run();
    }

    #[test]
    fn concurrent_writers_to_one_server_serialize_on_rx() {
        let rdma = test_fabric();
        let mem = rdma.fabric().memory_server().unwrap();
        let mut sim = Simulation::new();
        for i in 0..2 {
            let r = rdma.clone();
            let mr = rdma.register(mem, 4).unwrap();
            sim.spawn(&format!("w{i}"), move |ctx| {
                r.write_wire(&ctx, NodeId(i), &mr, 0, &[1.0; 4], 700_000_000).unwrap();
            });
        }
        // Each write is 0.1 s of service; the server rx serialises them.
        let end = sim.run();
        assert!((end.as_secs_f64() - 0.2).abs() < 0.01, "{}", end.as_secs_f64());
    }
}
