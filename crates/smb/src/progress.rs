//! Shared training-progress board (paper §III-E).
//!
//! "ShmCaffe workers share training progress information (∀Iter, Iter_x)
//! through the SMB shared memory buffer (control info)". Each worker owns
//! one slot of the control-info segment holding its completed-iteration
//! count and a done flag; any worker can snapshot the whole board to apply
//! a termination-alignment policy.

use shmcaffe_simnet::SimContext;

use crate::{ShmKey, SmbBuffer, SmbClient, SmbError};

/// Fields per worker slot: `[iterations, done_flag]`.
const SLOT_FIELDS: usize = 2;

/// One worker's progress as read from the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProgress {
    /// Completed training iterations.
    pub iterations: u64,
    /// Whether the worker has finished training.
    pub done: bool,
}

/// A snapshot of every worker's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Per-worker progress, indexed by rank.
    pub workers: Vec<WorkerProgress>,
}

impl ProgressSnapshot {
    /// Mean completed iterations across workers.
    pub fn mean_iterations(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.iterations as f64).sum::<f64>() / self.workers.len() as f64
    }

    /// Whether any worker has finished.
    pub fn any_done(&self) -> bool {
        self.workers.iter().any(|w| w.done)
    }

    /// Whether a specific worker has finished.
    pub fn is_done(&self, rank: usize) -> bool {
        self.workers.get(rank).is_some_and(|w| w.done)
    }
}

/// The control-info region: `n_workers` slots in one SMB segment.
///
/// # Example
///
/// See `shmcaffe::termination` for the policies built on this board.
#[derive(Debug, Clone)]
pub struct ProgressBoard {
    buf: SmbBuffer,
    n_workers: usize,
}

impl ProgressBoard {
    /// Creates the control-info segment (master side) and returns the board
    /// plus the SHM key to broadcast.
    ///
    /// # Errors
    ///
    /// Propagates SMB errors.
    pub fn create(
        client: &SmbClient,
        ctx: &SimContext,
        name: &str,
        n_workers: usize,
    ) -> Result<(Self, ShmKey), SmbError> {
        let key = client.create(ctx, name, n_workers * SLOT_FIELDS, None)?;
        let buf = client.alloc(ctx, key)?;
        Ok((ProgressBoard { buf, n_workers }, key))
    }

    /// Attaches to an existing control-info segment from a broadcast key.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] if the segment does not hold
    /// exactly `n_workers` slots.
    pub fn attach(
        client: &SmbClient,
        ctx: &SimContext,
        key: ShmKey,
        n_workers: usize,
    ) -> Result<Self, SmbError> {
        let buf = client.alloc(ctx, key)?;
        if buf.len() != n_workers * SLOT_FIELDS {
            return Err(SmbError::SizeMismatch {
                key,
                expected: n_workers * SLOT_FIELDS,
                got: buf.len(),
            });
        }
        Ok(ProgressBoard { buf, n_workers })
    }

    /// Number of worker slots.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Publishes this worker's progress into its slot.
    ///
    /// # Errors
    ///
    /// Propagates SMB errors.
    pub fn publish(
        &self,
        client: &SmbClient,
        ctx: &SimContext,
        rank: usize,
        iterations: u64,
        done: bool,
    ) -> Result<(), SmbError> {
        assert!(rank < self.n_workers, "rank out of range");
        let slot = [iterations as f32, if done { 1.0 } else { 0.0 }];
        client.write_range(ctx, &self.buf, rank * SLOT_FIELDS, &slot)
    }

    /// Reads the whole board.
    ///
    /// # Errors
    ///
    /// Propagates SMB errors.
    pub fn snapshot(
        &self,
        client: &SmbClient,
        ctx: &SimContext,
    ) -> Result<ProgressSnapshot, SmbError> {
        let mut raw = vec![0.0f32; self.n_workers * SLOT_FIELDS];
        client.read_range(ctx, &self.buf, 0, &mut raw)?;
        let workers = raw
            .chunks_exact(SLOT_FIELDS)
            .map(|slot| WorkerProgress { iterations: slot[0] as u64, done: slot[1] > 0.5 })
            .collect();
        Ok(ProgressSnapshot { workers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmbServer;
    use shmcaffe_rdma::RdmaFabric;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
    use shmcaffe_simnet::Simulation;

    #[test]
    fn publish_and_snapshot_roundtrip() {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
        let server = SmbServer::new(rdma).unwrap();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(server, NodeId(0));
            let (board, _key) = ProgressBoard::create(&client, &ctx, "ctrl", 3).unwrap();
            board.publish(&client, &ctx, 0, 100, false).unwrap();
            board.publish(&client, &ctx, 1, 250, false).unwrap();
            board.publish(&client, &ctx, 2, 50, true).unwrap();
            let snap = board.snapshot(&client, &ctx).unwrap();
            assert_eq!(snap.workers[0], WorkerProgress { iterations: 100, done: false });
            assert_eq!(snap.workers[1], WorkerProgress { iterations: 250, done: false });
            assert_eq!(snap.workers[2], WorkerProgress { iterations: 50, done: true });
            assert!((snap.mean_iterations() - 400.0 / 3.0).abs() < 1e-9);
            assert!(snap.any_done());
            assert!(snap.is_done(2) && !snap.is_done(0));
        });
        sim.run();
    }

    #[test]
    fn attach_checks_size() {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
        let server = SmbServer::new(rdma).unwrap();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(server, NodeId(0));
            let (_board, key) = ProgressBoard::create(&client, &ctx, "ctrl", 4).unwrap();
            assert!(ProgressBoard::attach(&client, &ctx, key, 4).is_ok());
            assert!(matches!(
                ProgressBoard::attach(&client, &ctx, key, 5),
                Err(SmbError::SizeMismatch { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn two_workers_see_each_other() {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(2)));
        let server = SmbServer::new(rdma).unwrap();
        let key_ch = shmcaffe_simnet::channel::SimChannel::<ShmKey>::new("key");
        let mut sim = Simulation::new();
        {
            let server = server.clone();
            let key_ch = key_ch.clone();
            sim.spawn("master", move |ctx| {
                let client = SmbClient::new(server, NodeId(0));
                let (board, key) = ProgressBoard::create(&client, &ctx, "ctrl", 2).unwrap();
                key_ch.send(&ctx, key);
                board.publish(&client, &ctx, 0, 10, false).unwrap();
                ctx.sleep(shmcaffe_simnet::SimDuration::from_millis(10));
                let snap = board.snapshot(&client, &ctx).unwrap();
                assert_eq!(snap.workers[1].iterations, 77);
            });
        }
        {
            let server = server.clone();
            sim.spawn("slave", move |ctx| {
                let client = SmbClient::new(server, NodeId(1));
                let key = key_ch.recv(&ctx);
                let board = ProgressBoard::attach(&client, &ctx, key, 2).unwrap();
                board.publish(&client, &ctx, 1, 77, false).unwrap();
            });
        }
        sim.run();
    }
}
