//! Evaluation metrics: loss and top-k accuracy over a held-out set.

use shmcaffe_tensor::softmax::{cross_entropy_loss, softmax};
use shmcaffe_tensor::Tensor;

use crate::data::Dataset;
use crate::{DnnError, Net, Phase};

/// Result of evaluating a network on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f32,
    /// Top-k accuracy in `[0, 1]` (the paper reports top-5).
    pub topk: f32,
    /// The `k` used for `topk`.
    pub k: usize,
    /// Number of evaluated samples.
    pub samples: usize,
}

impl std::fmt::Display for EvalResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loss {:.4}, top-1 {:.1}%, top-{} {:.1}% over {} samples",
            self.loss,
            self.top1 * 100.0,
            self.k,
            self.topk * 100.0,
            self.samples
        )
    }
}

/// Evaluates `net` over the whole dataset in minibatches of `batch`.
///
/// Uses [`Phase::Test`] so dropout/batch-norm behave deterministically.
///
/// # Errors
///
/// Propagates dataset and layer errors.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn evaluate<D: Dataset + ?Sized>(
    net: &mut Net,
    dataset: &D,
    batch: usize,
    k: usize,
) -> Result<EvalResult, DnnError> {
    assert!(batch > 0, "batch must be positive");
    let total = dataset.len();
    let mut loss_sum = 0.0f64;
    let mut top1_hits = 0.0f64;
    let mut topk_hits = 0.0f64;
    let mut seen = 0usize;
    let mut start = 0usize;
    while start < total {
        let end = (start + batch).min(total);
        let indices: Vec<usize> = (start..end).collect();
        let (x, labels) = dataset.minibatch(&indices)?;
        let logits = net.forward(&x, Phase::Test)?;
        let rows = labels.len();
        let classes = logits.len() / rows;
        let mut probs = Tensor::zeros(&[rows, classes]);
        softmax(rows, classes, logits.data(), probs.data_mut());
        loss_sum += cross_entropy_loss(rows, classes, probs.data(), &labels) as f64 * rows as f64;
        top1_hits += Net::accuracy(&logits, &labels, 1) as f64 * rows as f64;
        topk_hits += Net::accuracy(&logits, &labels, k) as f64 * rows as f64;
        seen += rows;
        start = end;
    }
    Ok(EvalResult {
        loss: if seen > 0 { (loss_sum / seen as f64) as f32 } else { 0.0 },
        top1: if seen > 0 { (top1_hits / seen as f64) as f32 } else { 0.0 },
        topk: if seen > 0 { (topk_hits / seen as f64) as f32 } else { 0.0 },
        k,
        samples: seen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticBlobs;
    use crate::layers::{InnerProduct, Relu};
    use crate::{Solver, SolverConfig};
    use shmcaffe_tensor::init::Filler;

    fn blob_net(seed: u64) -> Net {
        let mut net = Net::new("m");
        net.add(InnerProduct::new("fc1", 4, 16, Filler::Xavier, seed));
        net.add(Relu::new("r"));
        net.add(InnerProduct::new("fc2", 16, 3, Filler::Xavier, seed));
        net
    }

    #[test]
    fn evaluate_untrained_is_chance_level() {
        let ds = SyntheticBlobs::new(3, 4, 90, 0.2, 11);
        let mut net = blob_net(1);
        let res = evaluate(&mut net, &ds, 32, 2).unwrap();
        assert_eq!(res.samples, 90);
        assert!(res.loss > 0.5, "untrained loss should be high: {}", res.loss);
        assert!(res.top1 < 0.8);
        assert!(res.topk >= res.top1);
    }

    #[test]
    fn evaluate_trained_reaches_high_accuracy() {
        let ds = SyntheticBlobs::new(3, 4, 120, 0.2, 11);
        let net = blob_net(2);
        let mut solver = Solver::new(net, SolverConfig { base_lr: 0.1, ..Default::default() });
        for epoch in 0..30 {
            for start in (0..120).step_by(30) {
                let idx: Vec<usize> = (start..start + 30).collect();
                let (x, y) = ds.minibatch(&idx).unwrap();
                solver.step(&x, &y).unwrap();
            }
            let _ = epoch;
        }
        let mut net = solver.into_net();
        let res = evaluate(&mut net, &ds, 40, 2).unwrap();
        assert!(res.top1 > 0.9, "trained top-1 {}", res.top1);
        assert!(res.loss < 0.3, "trained loss {}", res.loss);
    }

    #[test]
    fn uneven_final_batch_is_counted() {
        let ds = SyntheticBlobs::new(2, 4, 33, 0.2, 4);
        let mut net = Net::new("m");
        net.add(InnerProduct::new("fc", 4, 2, Filler::Xavier, 0));
        let res = evaluate(&mut net, &ds, 16, 1).unwrap();
        assert_eq!(res.samples, 33);
    }

    #[test]
    fn display_is_informative() {
        let r = EvalResult { loss: 1.0, top1: 0.5, topk: 0.9, k: 5, samples: 10 };
        let s = r.to_string();
        assert!(s.contains("top-5") && s.contains("50.0%"));
    }
}
