//! Crate-level worker pool with deterministic work decomposition.
//!
//! Every parallel kernel in this workspace (gemm row panels, batch-parallel
//! convolution, elementwise ops, the SMB accumulate engine) dispatches
//! through this module. Two properties are load-bearing:
//!
//! 1. **Determinism.** Work is split at *fixed* points derived only from the
//!    problem size — never from the thread count — and every reduction
//!    combines per-chunk partials in fixed chunk order on the calling
//!    thread. The thread count therefore only decides *who* executes a
//!    chunk, never *what* a chunk computes or in which order partials are
//!    summed, so results are bit-identical at any `SHMCAFFE_THREADS`. This
//!    is what keeps the chaos test's bit-identical-rerun guarantee and the
//!    seeded convergence experiments valid under parallel execution.
//!
//! 2. **Persistence.** Workers are spawned once per process (first parallel
//!    call) and park on a crossbeam channel, so hot training loops pay no
//!    thread-spawn cost per layer. The pool size comes from the
//!    `SHMCAFFE_THREADS` environment variable, falling back to
//!    [`std::thread::available_parallelism`].
//!
//! Nested parallel regions (a batch-parallel conv task invoking a parallel
//! gemm) run inline on the worker: workers never re-dispatch, which both
//! avoids queue deadlock and keeps the decomposition identical to the
//! non-nested case.

use crossbeam::channel::{bounded, Sender};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// A unit of borrowed work executed by [`run_tasks`].
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// A `'static` job as stored in the worker channel.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: Sender<Job>,
    /// Configured logical thread count (including the calling thread).
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set inside pool workers: parallel regions entered on a worker run
    /// inline (no nested dispatch).
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped thread-count override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    std::env::var("SHMCAFFE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = env_threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        // Always keep at least one worker alive so with_threads(n > 1) can
        // exercise genuinely cross-thread schedules even on a single-core
        // host (an idle parked worker costs nothing).
        let workers = threads.saturating_sub(1).max(1);
        // Generous capacity: dispatches enqueue at most threads-1 jobs each,
        // and a full queue only ever blocks the dispatcher briefly (workers
        // drain it), never a worker — so no deadlock is possible.
        let (sender, receiver) = bounded::<Job>(4096);
        for w in 0..workers {
            let receiver = receiver.clone();
            std::thread::Builder::new()
                .name(format!("shmcaffe-worker-{w}"))
                .spawn(move || {
                    IS_WORKER.with(|f| f.set(true));
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                })
                .expect("spawn shmcaffe worker");
        }
        Pool { sender, threads }
    })
}

/// The configured logical thread count: `SHMCAFFE_THREADS` if set, else
/// [`std::thread::available_parallelism`] (minimum 1). This is the count the
/// pool was sized for, not a live measurement.
pub fn configured_threads() -> usize {
    pool().threads
}

/// The thread count parallel regions on the current thread will use:
/// a [`with_threads`] override if one is active, 1 inside a pool worker,
/// otherwise [`configured_threads`].
pub fn current_threads() -> usize {
    if IS_WORKER.with(|f| f.get()) {
        return 1;
    }
    OVERRIDE.with(|o| o.get()).unwrap_or_else(configured_threads)
}

/// Runs `f` with parallel regions decomposed for `threads` logical threads.
///
/// Because all split points are fixed, the *result* of any kernel is
/// bit-identical whatever `threads` is; this hook exists so tests can prove
/// that by executing genuinely different schedules in one process.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let threads = threads.max(1);
    OVERRIDE.with(|o| {
        let prev = o.replace(Some(threads));
        let result = f();
        o.set(prev);
        result
    })
}

/// Executes a batch of independent borrowed tasks, distributing them over
/// the pool, and returns once every task has finished.
///
/// Tasks must write disjoint data (the usual pattern is one task per
/// `chunks_mut` chunk). Scheduling order is unspecified; callers must not
/// rely on it — determinism comes from tasks being independent and from
/// reductions combining per-task outputs in fixed order *after* this
/// returns.
///
/// # Panics
///
/// Propagates (as a fresh panic) if any task panicked.
pub fn run_tasks(tasks: Vec<Task<'_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let threads = current_threads().min(n);
    if threads <= 1 {
        for task in tasks {
            task();
        }
        return;
    }

    // Round-robin the fixed task list into `threads` buckets. Bucket 0 runs
    // on the calling thread; the rest are shipped to the persistent workers.
    let mut buckets: Vec<Vec<Task<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        buckets[i % threads].push(task);
    }
    let local = buckets.remove(0);

    // Each remote bucket reports completion (and whether it panicked) on
    // this rendezvous channel; the dispatcher collects every report before
    // returning, which is what makes the lifetime erasure below sound.
    let remote = buckets.len();
    let (done_tx, done_rx) = bounded::<bool>(remote);
    let pool = pool();
    for bucket in buckets {
        let done_tx = done_tx.clone();
        let job: Task<'_> = Box::new(move || {
            let mut ok = true;
            for task in bucket {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    ok = false;
                }
            }
            let _ = done_tx.send(ok);
        });
        // SAFETY: the job borrows data with lifetime 'scope (the borrows in
        // `tasks`). We erase that lifetime to enqueue it, which is sound
        // because this function does not return until done_rx has received
        // one report per enqueued job (including the local-panic path: local
        // tasks run under catch_unwind, so the collection loop below always
        // runs before any unwind leaves this frame). Workers drop a job as
        // soon as it completes, i.e. before its report is observable.
        #[allow(unsafe_code)]
        let job: Job = unsafe { std::mem::transmute::<Task<'_>, Job>(job) };
        assert!(pool.sender.send(job).is_ok(), "worker pool channel closed");
    }

    let mut local_panic = None;
    for task in local {
        if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
            local_panic = Some(p);
        }
    }
    let mut remote_ok = true;
    for _ in 0..remote {
        remote_ok &= done_rx.recv().expect("worker bucket reports completion");
    }
    if let Some(p) = local_panic {
        std::panic::resume_unwind(p);
    }
    assert!(remote_ok, "a shmcaffe worker task panicked");
}

/// Splits `data` into fixed chunks of `chunk` elements (the last may be
/// short) and applies `f(chunk_index, chunk)` to every chunk in parallel.
///
/// The chunk grid depends only on `data.len()` and `chunk`, so the
/// decomposition — and therefore the result of any per-chunk computation —
/// is independent of the thread count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if data.len() <= chunk || current_threads() <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Task<'_>> = data
        .chunks_mut(chunk)
        .enumerate()
        .map(|(i, c)| -> Task<'_> { Box::new(move || f(i, c)) })
        .collect();
    run_tasks(tasks);
}

/// Like [`par_chunks_mut`] but walks a read-only slice in lockstep: applies
/// `f(out_chunk, x_chunk)` over matching fixed chunks of `out` and `x`.
///
/// # Panics
///
/// Panics if `chunk == 0` or the slice lengths differ.
pub fn par_zip_mut<T, U, F>(out: &mut [T], x: &[U], chunk: usize, f: F)
where
    T: Send,
    U: Sync,
    F: Fn(&mut [T], &[U]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(out.len(), x.len(), "par_zip_mut length mismatch");
    if out.len() <= chunk || current_threads() <= 1 {
        for (oc, xc) in out.chunks_mut(chunk).zip(x.chunks(chunk)) {
            f(oc, xc);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Task<'_>> = out
        .chunks_mut(chunk)
        .zip(x.chunks(chunk))
        .map(|(oc, xc)| -> Task<'_> { Box::new(move || f(oc, xc)) })
        .collect();
    run_tasks(tasks);
}

/// Three-slice variant of [`par_zip_mut`]: `f(out_chunk, a_chunk, b_chunk)`
/// over matching fixed chunks.
///
/// # Panics
///
/// Panics if `chunk == 0` or the slice lengths differ.
pub fn par_zip2_mut<T, U, V, F>(out: &mut [T], a: &[U], b: &[V], chunk: usize, f: F)
where
    T: Send,
    U: Sync,
    V: Sync,
    F: Fn(&mut [T], &[U], &[V]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(out.len(), a.len(), "par_zip2_mut length mismatch");
    assert_eq!(out.len(), b.len(), "par_zip2_mut length mismatch");
    if out.len() <= chunk || current_threads() <= 1 {
        for ((oc, ac), bc) in out.chunks_mut(chunk).zip(a.chunks(chunk)).zip(b.chunks(chunk)) {
            f(oc, ac, bc);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Task<'_>> = out
        .chunks_mut(chunk)
        .zip(a.chunks(chunk))
        .zip(b.chunks(chunk))
        .map(|((oc, ac), bc)| -> Task<'_> { Box::new(move || f(oc, ac, bc)) })
        .collect();
    run_tasks(tasks);
}

/// Two-mutable-slice variant of [`par_zip_mut`]: `f(a_chunk, b_chunk,
/// x_chunk)` over matching fixed chunks of two mutable slices and one
/// read-only slice. Used by the fused elastic-mixing kernel, which updates
/// `W_x` and produces `ΔW` in one pass over `W_g`.
///
/// # Panics
///
/// Panics if `chunk == 0` or the slice lengths differ.
pub fn par_zip_mut2<T, U, V, F>(a: &mut [T], b: &mut [U], x: &[V], chunk: usize, f: F)
where
    T: Send,
    U: Send,
    V: Sync,
    F: Fn(&mut [T], &mut [U], &[V]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(a.len(), b.len(), "par_zip_mut2 length mismatch");
    assert_eq!(a.len(), x.len(), "par_zip_mut2 length mismatch");
    if a.len() <= chunk || current_threads() <= 1 {
        for ((ac, bc), xc) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).zip(x.chunks(chunk)) {
            f(ac, bc, xc);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Task<'_>> = a
        .chunks_mut(chunk)
        .zip(b.chunks_mut(chunk))
        .zip(x.chunks(chunk))
        .map(|((ac, bc), xc)| -> Task<'_> { Box::new(move || f(ac, bc, xc)) })
        .collect();
    run_tasks(tasks);
}

/// Fixed chunk width (in f32 elements) for parallel elementwise kernels.
///
/// Chosen large enough that task overhead is negligible and small enough
/// that SEASGD-sized parameter vectors (hundreds of thousands of elements)
/// split into many chunks. Being a constant, it is part of the deterministic
/// decomposition contract.
pub const ELEMWISE_CHUNK: usize = 16_384;

/// Element counts at or below this stay on the calling thread: pool
/// dispatch costs more than it saves for small vectors (the 4 MiB SMB
/// accumulate lost ~30% at 2 threads under the old always-chunk grid).
/// Derived only from the element count — never the thread count — so the
/// chunk grid stays part of the deterministic decomposition contract.
pub const ELEMWISE_PAR_MIN: usize = 4 * ELEMWISE_CHUNK;

/// Upper bound on the number of chunks a single elementwise dispatch
/// produces; very long vectors get proportionally wider chunks so task
/// count (and per-task overhead) stays bounded.
pub const ELEMWISE_MAX_CHUNKS: usize = 32;

/// The deterministic chunk width for an elementwise kernel over `len`
/// elements: one single chunk at or below [`ELEMWISE_PAR_MIN`], otherwise
/// at least [`ELEMWISE_CHUNK`] wide and at most [`ELEMWISE_MAX_CHUNKS`]
/// chunks. A pure function of `len`, so every kernel using it decomposes —
/// and reduces — identically at any thread count.
pub fn elemwise_chunk(len: usize) -> usize {
    if len <= ELEMWISE_PAR_MIN {
        len.max(1)
    } else {
        ELEMWISE_CHUNK.max(len.div_ceil(ELEMWISE_MAX_CHUNKS))
    }
}

/// A shared handle over one mutable slice that hands out disjoint mutable
/// sub-ranges to concurrent tasks.
///
/// `split_at_mut` can only partition a slice into contiguous pieces, but
/// the packed-GEMM and fused-convolution grids write *strided* disjoint
/// ranges of one output (a column strip touches every row). This handle is
/// the crate-internal primitive for that pattern: it pins the slice borrow
/// for `'a` and lets each task reborrow its own range.
///
/// # Contract (callers)
///
/// [`SliceParts::part`] is memory-safe only if, at any instant, all live
/// sub-borrows obtained from the same handle cover pairwise-disjoint
/// ranges — exactly the `split_at_mut` guarantee, checked by the caller's
/// grid arithmetic instead of the borrow checker. Every call site in this
/// crate derives its ranges from a fixed tile grid whose tiles are disjoint
/// by construction, and tasks never outlive the dispatch that spawned
/// them. This type is deliberately `pub(crate)`: the contract is audited
/// here and in `gemm.rs`/`conv.rs`, and Miri runs the `parallel`-named
/// kernel tests over it (`scripts/miri.sh`).
pub(crate) struct SliceParts<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: a SliceParts is just a borrow of `&'a mut [T]` split across
// tasks; sending or sharing it between threads is sound whenever sending
// `&mut [T]` chunks is, i.e. for `T: Send`. Shared access (`Sync`) only
// exposes `part`, whose disjointness contract prevents aliasing.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SliceParts<'_, T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SliceParts<'_, T> {}

impl<'a, T> SliceParts<'a, T> {
    /// Wraps `data`, taking over its mutable borrow for `'a`.
    pub(crate) fn new(data: &'a mut [T]) -> Self {
        Self { ptr: data.as_mut_ptr(), len: data.len(), _marker: std::marker::PhantomData }
    }

    /// Reborrows `[start, start + len)` mutably.
    ///
    /// Bounds are checked; **disjointness of concurrently live parts is
    /// the caller's responsibility** (see the type-level contract).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub(crate) fn part(&self, start: usize, len: usize) -> &'a mut [T] {
        assert!(
            start <= self.len && len <= self.len - start,
            "SliceParts::part range {start}..{} out of bounds for length {}",
            start + len,
            self.len
        );
        // SAFETY: the range is in bounds of the original borrow (asserted
        // above), the original `&'a mut [T]` is held exclusively by this
        // handle for 'a, and the caller contract guarantees concurrently
        // live parts are pairwise disjoint — the same shape of guarantee
        // `split_at_mut` provides.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(start), len)
        }
    }
}

/// Maps fixed chunks of `x` through `f` and combines the per-chunk partials
/// **in chunk order** with `combine` — the deterministic reduction used by
/// `dot` and friends. Chunk boundaries depend only on `x.len()`.
pub fn par_reduce<T, A, F, C>(x: &[T], chunk: usize, init: A, f: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    F: Fn(&[T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    assert!(chunk > 0, "chunk size must be positive");
    if x.len() <= chunk || current_threads() <= 1 {
        return x.chunks(chunk).fold(init, |acc, c| combine(acc, f(c)));
    }
    let n_chunks = x.len().div_ceil(chunk);
    let mut partials: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
    {
        let tasks: Vec<Task<'_>> = partials
            .iter_mut()
            .zip(x.chunks(chunk))
            .map(|(slot, c)| -> Task<'_> {
                let f = &f;
                Box::new(move || *slot = Some(f(c)))
            })
            .collect();
        run_tasks(tasks);
    }
    partials.into_iter().fold(init, |acc, p| combine(acc, p.expect("chunk partial computed")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_executes_everything() {
        let mut out = vec![0usize; 100];
        {
            let tasks: Vec<Task<'_>> = out
                .chunks_mut(7)
                .enumerate()
                .map(|(i, c)| -> Task<'_> {
                    Box::new(move || c.iter_mut().for_each(|v| *v = i + 1))
                })
                .collect();
            run_tasks(tasks);
        }
        assert!(out.iter().all(|&v| v > 0));
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100usize.div_ceil(7));
    }

    #[test]
    fn par_chunks_mut_is_thread_count_invariant() {
        let base: Vec<f32> = (0..50_000).map(|i| (i as f32 * 0.37).sin()).collect();
        let run = |threads: usize| {
            let mut data = base.clone();
            with_threads(threads, || {
                par_chunks_mut(&mut data, ELEMWISE_CHUNK, |i, c| {
                    for v in c.iter_mut() {
                        *v = v.mul_add(1.5, i as f32 * 1e-6);
                    }
                });
            });
            data
        };
        let serial = run(1);
        for t in [2, 4, 7] {
            assert_eq!(serial, run(t), "threads={t}");
        }
    }

    #[test]
    fn par_reduce_combines_in_fixed_order() {
        let x: Vec<f32> = (0..40_000).map(|i| (i as f32 * 0.11).cos()).collect();
        let sum = |threads: usize| {
            with_threads(threads, || {
                par_reduce(&x, ELEMWISE_CHUNK, 0.0f32, |c| c.iter().sum::<f32>(), |a, b| a + b)
            })
        };
        let serial = sum(1);
        for t in [2, 4, 7] {
            assert_eq!(serial.to_bits(), sum(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn elemwise_chunk_is_a_pure_function_of_len() {
        assert_eq!(elemwise_chunk(0), 1);
        assert_eq!(elemwise_chunk(1), 1);
        // At or below the dispatch floor: one chunk == serial.
        assert_eq!(elemwise_chunk(ELEMWISE_PAR_MIN), ELEMWISE_PAR_MIN);
        // Just above: back to the fixed fine-grained width.
        assert_eq!(elemwise_chunk(ELEMWISE_PAR_MIN + 1), ELEMWISE_CHUNK);
        // Very large: chunk widens so the task count stays bounded.
        let big = 64 * ELEMWISE_CHUNK;
        let chunk = elemwise_chunk(big);
        assert!(big.div_ceil(chunk) <= ELEMWISE_MAX_CHUNKS);
        // Thread-count independence: the override must not change the grid.
        let base = elemwise_chunk(ELEMWISE_PAR_MIN + 123);
        for t in [1usize, 2, 8] {
            assert_eq!(with_threads(t, || elemwise_chunk(ELEMWISE_PAR_MIN + 123)), base);
        }
    }

    #[test]
    fn slice_parts_disjoint_strided_writes() {
        // Write a strided pattern (every task owns one column of a 2-D
        // view) — the access shape split_at_mut cannot express.
        let rows = 8;
        let cols = 6;
        let mut data = vec![0usize; rows * cols];
        {
            let parts = SliceParts::new(&mut data);
            let parts = &parts;
            let tasks: Vec<Task<'_>> = (0..cols)
                .map(|j| -> Task<'_> {
                    Box::new(move || {
                        for i in 0..rows {
                            parts.part(i * cols + j, 1)[0] = i * cols + j + 1;
                        }
                    })
                })
                .collect();
            run_tasks(tasks);
        }
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k + 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_parts_bounds_checked() {
        let mut data = [0.0f32; 4];
        let parts = SliceParts::new(&mut data);
        let _ = parts.part(3, 2);
    }

    #[test]
    fn task_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let tasks: Vec<Task<'_>> = (0..8)
                    .map(|i| -> Task<'_> {
                        Box::new(move || {
                            if i == 5 {
                                panic!("boom");
                            }
                        })
                    })
                    .collect();
                run_tasks(tasks);
            });
        });
        assert!(result.is_err());
    }
}
