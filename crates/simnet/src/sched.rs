//! The cooperative virtual-time scheduler.
//!
//! Exactly one simulated process runs at any instant: the one whose wake-up
//! time is globally minimal (ties broken by process id). Because every
//! state transition happens under a single lock and the running process is
//! unique, resource reservations and message sends occur in non-decreasing
//! virtual-time order, which makes the whole simulation deterministic for a
//! given program — independent of OS thread scheduling.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::explore::{ChoiceKind, ChoiceRecord, SchedEvent, StepRecord};
use crate::trace::TraceEntry;
use crate::{SimDuration, SimTime};

/// Identifies a simulated process within one [`Simulation`].
pub(crate) type Pid = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Ready to run at the contained virtual time.
    Runnable(SimTime),
    /// Currently executing on its OS thread.
    Running,
    /// Waiting for an external wake (channel message).
    Blocked,
    /// Completed (or panicked).
    Finished,
}

struct ProcSlot {
    name: String,
    clock: SimTime,
    status: Status,
    /// True while the process is parked in [`Core::block_until`]: it is
    /// recorded as `Runnable(deadline)` (so the deadlock detector never
    /// counts it as blocked) but an earlier [`Core::wake`] may pull the
    /// grant forward.
    timed_wait: bool,
    /// This process's vector clock (one component per pid), advanced along
    /// synchronization edges for the happens-before race detector.
    #[cfg(feature = "race-detect")]
    vclock: Vec<u64>,
}

struct SchedState {
    procs: Vec<ProcSlot>,
    unfinished: usize,
    /// True once `run()` has performed the initial dispatch.
    started: bool,
    panic_message: Option<String>,
}

/// Recording/forcing state for one explored run (see [`crate::explore`]).
///
/// Empty and inert unless [`Core::set_explore`] armed it: the default
/// schedule takes the fast path (`exploring` is false) and records nothing,
/// so exploration support costs the normal simulator one relaxed atomic
/// load per choice point.
#[derive(Default)]
struct ExploreState {
    /// Choices forced by the driver; beyond this prefix the defaults apply.
    forced: Vec<TraceEntry>,
    /// Index of the next choice point (into `forced` while it lasts).
    cursor: usize,
    /// Every choice point reached this run, with its resolution.
    choices: Vec<ChoiceRecord>,
    /// One record per scheduler grant, accumulating the granted process's
    /// shared-state events until the next grant.
    steps: Vec<StepRecord>,
    /// Set when a forced choice did not match the choice point actually
    /// reached — the model is nondeterministic or the trace is stale.
    diverged: Option<String>,
}

pub(crate) struct Core {
    state: Mutex<SchedState>,
    cv: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Fast-path flag mirroring "explore state armed".
    exploring: AtomicBool,
    explore: Mutex<ExploreState>,
    /// Model-state fingerprint hook, sampled by the explorer after a run
    /// completes (see [`Simulation::set_state_probe`]).
    probe: Mutex<Option<Box<dyn Fn() -> u64 + Send>>>,
}

impl Core {
    fn new() -> Arc<Self> {
        Arc::new(Core {
            state: Mutex::new(SchedState {
                procs: Vec::new(),
                unfinished: 0,
                started: false,
                panic_message: None,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            exploring: AtomicBool::new(false),
            explore: Mutex::new(ExploreState::default()),
            probe: Mutex::new(None),
        })
    }

    /// Arms choice recording for one run, forcing the given prefix.
    pub(crate) fn set_explore(&self, forced: Vec<TraceEntry>) {
        let mut ex = self.explore.lock();
        *ex = ExploreState { forced, ..ExploreState::default() };
        self.exploring.store(true, Ordering::Relaxed);
    }

    /// Takes the recorded choices/steps after a run (leaving recording off).
    pub(crate) fn take_explore(&self) -> (Vec<ChoiceRecord>, Vec<StepRecord>, Option<String>) {
        self.exploring.store(false, Ordering::Relaxed);
        let mut ex = self.explore.lock();
        let st = std::mem::take(&mut *ex);
        (st.choices, st.steps, st.diverged)
    }

    pub(crate) fn is_exploring(&self) -> bool {
        self.exploring.load(Ordering::Relaxed)
    }

    pub(crate) fn set_probe(&self, f: Box<dyn Fn() -> u64 + Send>) {
        *self.probe.lock() = Some(f);
    }

    /// Samples the model-state probe (0 when none was registered).
    pub(crate) fn probe_value(&self) -> u64 {
        self.probe.lock().as_ref().map_or(0, |f| f())
    }

    /// FNV-1a fingerprint of the terminal scheduler state (per-process
    /// clocks); combined with the model probe for state-space dedup.
    pub(crate) fn sched_hash(&self) -> u64 {
        let state = self.state.lock();
        let mut h = crate::explore::Fnv::new();
        for p in &state.procs {
            h.write_u64(p.clock.as_nanos());
            h.write_u64(match p.status {
                Status::Runnable(at) => 1 ^ at.as_nanos().rotate_left(8),
                Status::Running => 2,
                Status::Blocked => 3,
                Status::Finished => 4,
            });
        }
        h.finish()
    }

    /// Resolves the forced choice at `cursor` (validating it against the
    /// choice point actually reached) or falls back to `default`.
    fn forced_or_default(
        ex: &mut ExploreState,
        kind: ChoiceKind,
        arity: usize,
        default: usize,
    ) -> usize {
        let i = ex.cursor;
        ex.cursor += 1;
        match ex.forced.get(i) {
            None => default,
            Some(f) => {
                if f.kind != kind || f.arity as usize != arity || (f.chosen as usize) >= arity {
                    ex.diverged.get_or_insert_with(|| {
                        format!(
                            "schedule diverged at choice {i}: trace has {:?}({}#{}) but \
                             execution reached {:?}({})",
                            f.kind, f.arity, f.chosen, kind, arity
                        )
                    });
                    default
                } else {
                    f.chosen as usize
                }
            }
        }
    }

    /// Non-dispatch choice point (message wake/delivery order). Returns
    /// `default` unless exploration is armed and the point is a real branch
    /// (`arity > 1`); branch points with a single alternative are never
    /// recorded so traces stay dense.
    pub(crate) fn choose(&self, kind: ChoiceKind, arity: usize, default: usize) -> usize {
        if arity <= 1 || !self.exploring.load(Ordering::Relaxed) {
            return default;
        }
        let mut ex = self.explore.lock();
        let chosen = Self::forced_or_default(&mut ex, kind, arity, default);
        let step = ex.steps.len().saturating_sub(1);
        ex.choices.push(ChoiceRecord {
            kind,
            arity: arity as u16,
            chosen: chosen as u16,
            default: default as u16,
            candidates: Vec::new(),
            step,
        });
        chosen
    }

    /// Equal-time dispatch tie: picks which of `cands` (ascending pid, all
    /// runnable at the minimal wake time) runs next, and opens its step.
    fn pick_tie(&self, cands: &[Pid]) -> Pid {
        let mut ex = self.explore.lock();
        let chosen = if cands.len() > 1 {
            let c = Self::forced_or_default(&mut ex, ChoiceKind::Tie, cands.len(), 0);
            let step = ex.steps.len();
            ex.choices.push(ChoiceRecord {
                kind: ChoiceKind::Tie,
                arity: cands.len() as u16,
                chosen: c as u16,
                default: 0,
                candidates: cands.to_vec(),
                step,
            });
            c
        } else {
            0
        };
        let pid = cands[chosen];
        ex.steps.push(StepRecord { pid, events: Vec::new() });
        pid
    }

    /// Appends a shared-state event to the currently running step.
    pub(crate) fn note_event(&self, ev: SchedEvent) {
        if !self.exploring.load(Ordering::Relaxed) {
            return;
        }
        let mut ex = self.explore.lock();
        if let Some(step) = ex.steps.last_mut() {
            step.events.push(ev);
        }
    }

    /// Picks the next process to run. Must be called with the state lock held
    /// and no process currently `Running`.
    ///
    /// Once a panic or deadlock is recorded, no further grants are made; all
    /// parked threads are woken so they can unwind (their wait loops panic
    /// when they observe the recorded failure).
    fn dispatch(&self, state: &mut SchedState) {
        if state.panic_message.is_some() {
            self.cv.notify_all();
            return;
        }
        let next = state
            .procs
            .iter()
            .enumerate()
            .filter_map(|(pid, p)| match p.status {
                Status::Runnable(at) => Some((at, pid)),
                _ => None,
            })
            .min();
        match next {
            Some((at, pid)) => {
                // Equal-time ties are a schedule choice point: under
                // exploration the chooser may pick any process runnable at
                // `at`; the default (index 0 = minimal pid) reproduces the
                // deterministic schedule bit-for-bit.
                let pid = if self.exploring.load(Ordering::Relaxed) {
                    let cands: Vec<Pid> = state
                        .procs
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| matches!(p.status, Status::Runnable(t) if t == at))
                        .map(|(q, _)| q)
                        .collect();
                    self.pick_tie(&cands)
                } else {
                    pid
                };
                let slot = &mut state.procs[pid];
                slot.status = Status::Running;
                slot.clock = slot.clock.max(at);
                slot.timed_wait = false;
                self.cv.notify_all();
            }
            None => {
                if state.unfinished > 0 {
                    let blocked: Vec<&str> = state
                        .procs
                        .iter()
                        .filter(|p| p.status == Status::Blocked)
                        .map(|p| p.name.as_str())
                        .collect();
                    state.panic_message.get_or_insert_with(|| {
                        format!("simulation deadlock: blocked processes {blocked:?}")
                    });
                }
                // All done (or deadlocked); wake `run()` and parked threads.
                self.cv.notify_all();
            }
        }
    }

    /// Blocks the calling OS thread until `pid` is granted `Running`.
    ///
    /// # Panics
    ///
    /// Panics (to unwind the simulated process) if the simulation aborted.
    fn wait_for_grant(&self, pid: Pid) {
        let mut state = self.state.lock();
        while state.procs[pid].status != Status::Running {
            if state.panic_message.is_some() {
                panic!("simulation aborted");
            }
            self.cv.wait(&mut state);
        }
    }

    fn yield_until(&self, pid: Pid, wake_at: SimTime) {
        let mut state = self.state.lock();
        debug_assert_eq!(state.procs[pid].status, Status::Running);
        let at = state.procs[pid].clock.max(wake_at);
        state.procs[pid].status = Status::Runnable(at);
        self.dispatch(&mut state);
        while state.procs[pid].status != Status::Running {
            if state.panic_message.is_some() {
                panic!("simulation aborted");
            }
            self.cv.wait(&mut state);
        }
    }

    /// Parks the process until another process calls [`Core::wake`].
    pub(crate) fn block(&self, pid: Pid) {
        let mut state = self.state.lock();
        debug_assert_eq!(state.procs[pid].status, Status::Running);
        state.procs[pid].status = Status::Blocked;
        self.dispatch(&mut state);
        while state.procs[pid].status != Status::Running {
            if state.panic_message.is_some() {
                panic!("simulation aborted");
            }
            self.cv.wait(&mut state);
        }
    }

    /// Parks the process until another process calls [`Core::wake`] or the
    /// virtual clock reaches `deadline`, whichever comes first.
    ///
    /// Unlike [`Core::block`], a timed waiter is never counted as blocked by
    /// the deadlock detector: it is parked as `Runnable(deadline)` so the
    /// simulation always makes progress even if the wake never arrives.
    pub(crate) fn block_until(&self, pid: Pid, deadline: SimTime) {
        let mut state = self.state.lock();
        debug_assert_eq!(state.procs[pid].status, Status::Running);
        let slot = &mut state.procs[pid];
        slot.status = Status::Runnable(slot.clock.max(deadline));
        slot.timed_wait = true;
        self.dispatch(&mut state);
        while state.procs[pid].status != Status::Running {
            if state.panic_message.is_some() {
                panic!("simulation aborted");
            }
            self.cv.wait(&mut state);
        }
    }

    /// Makes a blocked process runnable no earlier than `at`.
    ///
    /// Called by the (unique) running process, so `at >=` every other
    /// process's grantable time and ordering is preserved.
    pub(crate) fn wake(&self, pid: Pid, at: SimTime) {
        let mut state = self.state.lock();
        let slot = &mut state.procs[pid];
        match slot.status {
            Status::Blocked => {
                slot.status = Status::Runnable(slot.clock.max(at));
            }
            // A timed waiter parked at its deadline may be pulled earlier by
            // a wake (but never pushed later).
            Status::Runnable(deadline) if slot.timed_wait => {
                let woken = slot.clock.max(at);
                if woken < deadline {
                    slot.status = Status::Runnable(woken);
                }
            }
            Status::Finished => {}
            // The waker runs exclusively, so the target cannot be Running;
            // an already-Runnable target keeps its earlier wake time.
            _ => {}
        }
    }

    fn finish(&self, pid: Pid, panic_msg: Option<String>) {
        let mut state = self.state.lock();
        state.procs[pid].status = Status::Finished;
        state.unfinished -= 1;
        if let Some(msg) = panic_msg {
            state.panic_message.get_or_insert(msg);
        }
        self.dispatch(&mut state);
    }

    fn register(&self, name: &str, initial_clock: SimTime) -> Pid {
        let mut state = self.state.lock();
        let pid = state.procs.len();
        state.procs.push(ProcSlot {
            name: name.to_string(),
            clock: initial_clock,
            status: Status::Runnable(initial_clock),
            timed_wait: false,
            #[cfg(feature = "race-detect")]
            vclock: Vec::new(),
        });
        state.unfinished += 1;
        pid
    }

    /// Increments `pid`'s own clock component and returns a snapshot — the
    /// stamp carried by a synchronization edge's source.
    #[cfg(feature = "race-detect")]
    pub(crate) fn vc_stamp(&self, pid: Pid) -> crate::race::VectorClock {
        let mut state = self.state.lock();
        let slot = &mut state.procs[pid];
        if slot.vclock.len() <= pid {
            slot.vclock.resize(pid + 1, 0);
        }
        slot.vclock[pid] += 1;
        crate::race::VectorClock::from_components(slot.vclock.clone())
    }

    /// Joins `other` into `pid`'s clock (elementwise max) and then
    /// increments `pid`'s own component — a message-receive edge.
    #[cfg(feature = "race-detect")]
    pub(crate) fn vc_join(&self, pid: Pid, other: &crate::race::VectorClock) {
        let mut state = self.state.lock();
        let slot = &mut state.procs[pid];
        let incoming = other.components();
        let needed = incoming.len().max(pid + 1);
        if slot.vclock.len() < needed {
            slot.vclock.resize(needed, 0);
        }
        for (own, &theirs) in slot.vclock.iter_mut().zip(incoming.iter()) {
            *own = (*own).max(theirs);
        }
        slot.vclock[pid] += 1;
    }

    /// Seeds a freshly registered child's clock from its parent — the
    /// spawn edge (everything the parent did happens-before the child).
    #[cfg(feature = "race-detect")]
    pub(crate) fn vc_seed_child(&self, parent: Pid, child: Pid) {
        let mut state = self.state.lock();
        let parent_clock = {
            let slot = &mut state.procs[parent];
            if slot.vclock.len() <= parent {
                slot.vclock.resize(parent + 1, 0);
            }
            slot.vclock[parent] += 1;
            slot.vclock.clone()
        };
        state.procs[child].vclock = parent_clock;
    }

    fn start_thread<F>(self: &Arc<Self>, pid: Pid, name: String, f: F)
    where
        F: FnOnce(SimContext) + Send + 'static,
    {
        let core = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                core.wait_for_grant(pid);
                let ctx = SimContext { core: Arc::clone(&core), pid };
                let result = catch_unwind(AssertUnwindSafe(|| f(ctx)));
                let panic_msg = result.err().map(|e| {
                    e.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "process panicked".to_string())
                });
                core.finish(pid, panic_msg);
            })
            .expect("failed to spawn simulation thread");
        self.handles.lock().push(handle);
    }
}

/// A deterministic virtual-time simulation.
///
/// Spawn processes with [`Simulation::spawn`], then execute them to
/// completion with [`Simulation::run`]. See the crate docs for an example.
pub struct Simulation {
    core: Arc<Core>,
    #[allow(clippy::type_complexity)]
    pending: Vec<(Pid, String, Box<dyn FnOnce(SimContext) + Send + 'static>)>,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Simulation { core: Core::new(), pending: Vec::new() }
    }

    /// Registers a simulated process starting at virtual time zero.
    ///
    /// The closure runs on its own OS thread but executes only while the
    /// scheduler grants it the (unique) running slot.
    pub fn spawn<F>(&mut self, name: &str, f: F)
    where
        F: FnOnce(SimContext) + Send + 'static,
    {
        let pid = self.core.register(name, SimTime::ZERO);
        self.pending.push((pid, name.to_string(), Box::new(f)));
    }

    /// Runs all processes to completion and returns the final virtual time
    /// (the maximum clock over all processes).
    ///
    /// # Panics
    ///
    /// Panics if any process panicked or the simulation deadlocked; the
    /// original panic message is propagated.
    pub fn run(self) -> SimTime {
        match self.run_result() {
            Ok(t) => t,
            Err(msg) => panic!("simulation failed: {msg}"),
        }
    }

    /// Like [`Simulation::run`] but reports a process panic or deadlock as
    /// an `Err` carrying the original message instead of panicking — the
    /// entry point used by the schedule explorer, which must survive
    /// counterexample runs.
    pub fn run_result(mut self) -> Result<SimTime, String> {
        for (pid, name, f) in self.pending.drain(..) {
            self.core.start_thread(pid, name, f);
        }
        {
            let mut state = self.core.state.lock();
            if !state.started {
                state.started = true;
                self.core.dispatch(&mut state);
            }
            while state.unfinished > 0 && state.panic_message.is_none() {
                self.core.cv.wait(&mut state);
            }
        }
        // Join every thread (they all exit once finished or poisoned).
        let handles = std::mem::take(&mut *self.core.handles.lock());
        for h in handles {
            let _ = h.join();
        }
        let state = self.core.state.lock();
        if let Some(msg) = &state.panic_message {
            return Err(msg.clone());
        }
        Ok(state.procs.iter().map(|p| p.clock).max().unwrap_or(SimTime::ZERO))
    }

    /// Registers a model-state fingerprint sampled by the schedule explorer
    /// after each run (FNV hash of whatever shared state the model cares
    /// about, e.g. an SMB server's `state_hash`); together with the scheduler
    /// fingerprint it powers state-space dedup. Unused outside exploration.
    pub fn set_state_probe<F: Fn() -> u64 + Send + 'static>(&mut self, f: F) {
        self.core.set_probe(Box::new(f));
    }

    pub(crate) fn core(&self) -> &Arc<Core> {
        &self.core
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation").field("pending", &self.pending.len()).finish()
    }
}

/// Handle given to each simulated process for interacting with virtual time.
///
/// A `SimContext` must only be used from the process it was handed to.
///
/// **Do not hold an OS lock across a virtual-time block.** Only one
/// process runs at a time, so a process that parks (via `sleep`, a channel
/// `recv`, or a resource transfer) while holding a real `Mutex` guard will
/// deadlock the scheduler as soon as another process contends on that
/// mutex. Acquire real locks only for short critical sections that contain
/// no virtual-time operations.
#[derive(Clone)]
pub struct SimContext {
    pub(crate) core: Arc<Core>,
    pub(crate) pid: Pid,
}

impl SimContext {
    /// Current virtual time of this process.
    pub fn now(&self) -> SimTime {
        self.core.state.lock().procs[self.pid].clock
    }

    /// Name of this process.
    pub fn name(&self) -> String {
        self.core.state.lock().procs[self.pid].name.clone()
    }

    /// Process id, unique within the simulation.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Advances virtual time by `dur`, yielding to earlier processes.
    pub fn sleep(&self, dur: SimDuration) {
        let until = self.now() + dur;
        self.core.yield_until(self.pid, until);
    }

    /// Advances virtual time to `at` (no-op if already later), yielding.
    pub fn sleep_until(&self, at: SimTime) {
        self.core.yield_until(self.pid, at);
    }

    /// Yields without advancing time, letting same-time processes interleave
    /// deterministically.
    pub fn yield_now(&self) {
        self.core.yield_until(self.pid, SimTime::ZERO);
    }

    /// Spawns a new simulated process starting at the caller's current time.
    pub fn spawn<F>(&self, name: &str, f: F)
    where
        F: FnOnce(SimContext) + Send + 'static,
    {
        let pid = self.core.register(name, self.now());
        #[cfg(feature = "race-detect")]
        self.core.vc_seed_child(self.pid, pid);
        self.core.start_thread(pid, name.to_string(), f);
    }

    /// Declares a shared-state access for the schedule explorer's
    /// independence relation (see [`crate::explore`]): two steps whose
    /// footprints touch disjoint `(region, offset..offset+len)` ranges — or
    /// only read overlapping ones — commute, so the explorer never re-runs
    /// their reorderings. A no-op outside exploration; models with shared
    /// state not covered by instrumented channels/RDMA ops should call this
    /// (or disable independence pruning).
    pub fn footprint(
        &self,
        region: u64,
        offset: usize,
        len: usize,
        kind: crate::explore::FootprintKind,
    ) {
        self.core.note_event(SchedEvent::Access { region, offset, len, kind });
    }

    /// Ticks this process's vector clock and returns a snapshot — the
    /// stamp attached at the source of a synchronization edge (channel
    /// send, lease heartbeat) or taken at an instrumented data access.
    #[cfg(feature = "race-detect")]
    pub fn vc_stamp(&self) -> crate::race::VectorClock {
        self.core.vc_stamp(self.pid)
    }

    /// Joins a received stamp into this process's vector clock — the sink
    /// of a synchronization edge (channel recv, lease eviction).
    #[cfg(feature = "race-detect")]
    pub fn vc_join(&self, stamp: &crate::race::VectorClock) {
        self.core.vc_join(self.pid, stamp)
    }
}

impl std::fmt::Debug for SimContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimContext").field("pid", &self.pid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    #[test]
    fn empty_simulation_finishes_at_zero() {
        assert_eq!(Simulation::new().run(), SimTime::ZERO);
    }

    #[test]
    fn single_process_advances_time() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.sleep(SimDuration::from_millis(5));
            assert_eq!(ctx.now().as_millis_f64(), 5.0);
        });
        assert_eq!(sim.run().as_millis_f64(), 5.0);
    }

    #[test]
    fn processes_interleave_in_time_order() {
        let log: Arc<PMutex<Vec<(String, u64)>>> = Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for (name, step) in [("a", 3u64), ("b", 5u64)] {
            let log = Arc::clone(&log);
            sim.spawn(name, move |ctx| {
                for _ in 0..3 {
                    ctx.sleep(SimDuration::from_millis(step));
                    log.lock().push((name.to_string(), ctx.now().as_nanos() / 1_000_000));
                }
            });
        }
        sim.run();
        let got = log.lock().clone();
        // Events must be sorted by time: a@3, b@5, a@6, a@9, b@10, b@15.
        let times: Vec<u64> = got.iter().map(|(_, t)| *t).collect();
        assert_eq!(times, vec![3, 5, 6, 9, 10, 15]);
    }

    #[test]
    fn ties_break_by_spawn_order_deterministically() {
        let run_once = || {
            let log: Arc<PMutex<Vec<String>>> = Arc::new(PMutex::new(Vec::new()));
            let mut sim = Simulation::new();
            for name in ["x", "y", "z"] {
                let log = Arc::clone(&log);
                sim.spawn(name, move |ctx| {
                    ctx.sleep(SimDuration::from_millis(1));
                    log.lock().push(name.to_string());
                });
            }
            sim.run();
            let result = log.lock().clone();
            result
        };
        let a = run_once();
        for _ in 0..5 {
            assert_eq!(run_once(), a);
        }
        assert_eq!(a, vec!["x", "y", "z"]);
    }

    #[test]
    fn dynamic_spawn_starts_at_parent_time() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |ctx| {
            ctx.sleep(SimDuration::from_millis(10));
            let t0 = ctx.now();
            ctx.spawn("child", move |cctx| {
                assert_eq!(cctx.now(), t0);
                cctx.sleep(SimDuration::from_millis(1));
            });
        });
        assert_eq!(sim.run().as_millis_f64(), 11.0);
    }

    #[test]
    #[should_panic(expected = "simulation failed")]
    fn process_panic_propagates() {
        let mut sim = Simulation::new();
        sim.spawn("bad", |_| panic!("boom"));
        sim.run();
    }

    #[test]
    fn yield_now_does_not_advance_time() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            let t = ctx.now();
            ctx.yield_now();
            assert_eq!(ctx.now(), t);
        });
        sim.run();
    }

    // --- timed-wait pull-forward invariants (`block_until` vs `wake`) ---
    //
    // The comment on `Core::wake` documents that a timed waiter parked at
    // its deadline may be pulled earlier by a wake but never pushed later,
    // and that a wake racing ahead of the park is dropped (the deadline
    // still fires). These are the seeded lost-wakeup regressions for that
    // contract.

    #[test]
    fn wake_pulls_timed_wait_forward() {
        let mut sim = Simulation::new();
        sim.spawn("waiter", |ctx| {
            let deadline = ctx.now() + SimDuration::from_millis(100);
            ctx.core.block_until(ctx.pid, deadline);
            // Woken by the 5 ms signal, not the 100 ms deadline.
            assert_eq!(ctx.now().as_millis_f64(), 5.0);
        });
        sim.spawn("waker", |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            ctx.core.wake(0, ctx.now());
        });
        assert_eq!(sim.run().as_millis_f64(), 5.0);
    }

    #[test]
    fn early_wake_before_park_is_dropped_not_lost_forever() {
        let mut sim = Simulation::new();
        // The waker is pid 0, so at the t=0 tie it runs *before* the waiter
        // has parked: the wake targets a plain Runnable process and must be
        // dropped (not queued). The seeded lost wakeup is harmless only
        // because the timed wait still fires at its deadline.
        sim.spawn("waker", |ctx| {
            ctx.core.wake(1, ctx.now());
        });
        sim.spawn("waiter", |ctx| {
            let deadline = ctx.now() + SimDuration::from_millis(10);
            ctx.core.block_until(ctx.pid, deadline);
            assert_eq!(ctx.now().as_millis_f64(), 10.0);
        });
        assert_eq!(sim.run().as_millis_f64(), 10.0);
    }

    #[test]
    fn wake_never_pushes_a_timed_wait_later() {
        let mut sim = Simulation::new();
        sim.spawn("waiter", |ctx| {
            let deadline = ctx.now() + SimDuration::from_millis(10);
            ctx.core.block_until(ctx.pid, deadline);
            assert_eq!(ctx.now().as_millis_f64(), 10.0);
        });
        sim.spawn("waker", |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            // A wake targeted past the deadline must not postpone the grant.
            ctx.core.wake(0, SimTime::ZERO + SimDuration::from_millis(50));
        });
        assert_eq!(sim.run().as_millis_f64(), 10.0);
    }

    #[test]
    fn many_processes_complete() {
        let counter = Arc::new(PMutex::new(0usize));
        let mut sim = Simulation::new();
        for i in 0..32 {
            let counter = Arc::clone(&counter);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.sleep(SimDuration::from_micros(i as u64 + 1));
                }
                *counter.lock() += 1;
            });
        }
        sim.run();
        assert_eq!(*counter.lock(), 32);
    }
}
