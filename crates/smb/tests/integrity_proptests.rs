//! Property and exhaustive tests of the CRC-guarded page grid: every
//! single-bit flip, every seeded double-bit flip, and every torn-write
//! prefix is detected, and detection poisons exactly the affected pages.

use parking_lot::Mutex;
use proptest::prelude::*;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{SmbClient, SmbError, SmbServer, SmbServerConfig};
use std::sync::Arc;

fn paged_server(page_elems: usize) -> SmbServer {
    let cfg = SmbServerConfig { page_elems, ..SmbServerConfig::default() };
    SmbServer::with_config(RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1))), cfg)
        .unwrap()
}

/// The pages of an `n`-element segment overlapping `[offset, offset+len)` —
/// the oracle the tests check poisoning against.
fn pages_in(pe: usize, n: usize, offset: usize, len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    (offset / pe..((offset + len - 1) / pe + 1).min(n.div_ceil(pe))).collect()
}

/// Representative (page_elems, segment_elems) shapes: aligned, unaligned,
/// page > segment, single-element pages.
const SHAPES: [(usize, usize); 5] = [(4, 13), (8, 8), (3, 10), (16, 5), (1, 6)];

/// Exhaustive: every single-bit flip of every element is detected by the
/// next read, which names the exact page, and only that page is poisoned.
#[test]
fn every_single_bit_flip_is_detected() {
    for (pe, n) in SHAPES {
        let srv = paged_server(pe);
        let s = srv.clone();
        let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let f2 = Arc::clone(&failures);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            let mut case = 0usize;
            for elem in 0..n {
                for bit in 0..32u32 {
                    let key = client.create(&ctx, &format!("b{case}"), n, None).unwrap();
                    case += 1;
                    let buf = client.alloc(&ctx, key).unwrap();
                    let payload: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
                    client.write(&ctx, &buf, &payload).unwrap();
                    s.inject_bit_flip(key, elem, bit).unwrap();
                    let mut out = vec![0.0f32; n];
                    match client.read(&ctx, &buf, &mut out) {
                        Err(SmbError::Corrupted { page, .. }) if page == elem / pe => {}
                        other => f2
                            .lock()
                            .push(format!("pe={pe} n={n} elem={elem} bit={bit}: {other:?}")),
                    }
                    if s.poisoned_pages(key) != vec![elem / pe] {
                        f2.lock().push(format!(
                            "pe={pe} n={n} elem={elem} bit={bit}: poisoned {:?}",
                            s.poisoned_pages(key)
                        ));
                    }
                }
            }
        });
        sim.run();
        let fails = failures.lock();
        assert!(fails.is_empty(), "undetected flips: {:?}", &fails[..fails.len().min(5)]);
    }
}

/// Exhaustive: every torn prefix of a full-buffer write is detected by the
/// scrubber, which poisons exactly the pages past the delivered prefix; the
/// intact delivery (`prefix == n`) stays clean.
#[test]
fn every_torn_write_prefix_is_detected() {
    for (pe, n) in SHAPES {
        let srv = paged_server(pe);
        let s = srv.clone();
        let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let f2 = Arc::clone(&failures);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let intended: Vec<f32> = base.iter().map(|v| v + 1.0).collect();
            for prefix in 0..=n {
                let key = client.create(&ctx, &format!("b{prefix}"), n, None).unwrap();
                let buf = client.alloc(&ctx, key).unwrap();
                client.write(&ctx, &buf, &base).unwrap();
                s.inject_torn_write(&ctx, key, 0, &intended, prefix).unwrap();
                let newly = s.scrub_pass(&ctx);
                let expect = pages_in(pe, n, prefix, n - prefix);
                if s.poisoned_pages(key) != expect || newly != expect.len() {
                    f2.lock().push(format!(
                        "pe={pe} n={n} prefix={prefix}: poisoned {:?} (newly {newly}), want {expect:?}",
                        s.poisoned_pages(key)
                    ));
                }
            }
        });
        sim.run();
        let fails = failures.lock();
        assert!(fails.is_empty(), "torn prefixes misdetected: {:?}", &fails[..fails.len().min(5)]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded double-bit flip (two distinct (element, bit) positions)
    /// is detected: CRC32C's Hamming distance exceeds 2 at page scale, so
    /// the scrubber poisons exactly the pages holding flipped elements.
    #[test]
    fn double_bit_flips_are_detected(
        pe in 1usize..24,
        n in 1usize..96,
        a in 0usize..10_000,
        bit_a in 0u32..32,
        b in 0usize..10_000,
        bit_b in 0u32..32,
    ) {
        let (ea, eb) = (a % n, b % n);
        prop_assume!((ea, bit_a) != (eb, bit_b));
        let srv = paged_server(pe);
        let s = srv.clone();
        let poisoned: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let p2 = Arc::clone(&poisoned);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            let key = client.create(&ctx, "b", n, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let payload: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 3.0).collect();
            client.write(&ctx, &buf, &payload).unwrap();
            s.inject_bit_flip(key, ea, bit_a).unwrap();
            s.inject_bit_flip(key, eb, bit_b).unwrap();
            s.scrub_pass(&ctx);
            *p2.lock() = s.poisoned_pages(key);
        });
        sim.run();
        let mut expect = vec![ea / pe, eb / pe];
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(poisoned.lock().clone(), expect);
    }

    /// Any torn prefix of any sub-range write is detected: the scrubber
    /// poisons exactly the pages covering the undelivered tail.
    #[test]
    fn torn_range_writes_are_detected(
        pe in 1usize..16,
        n in 4usize..64,
        off in 0usize..10_000,
        len in 0usize..10_000,
        prefix in 0usize..10_000,
    ) {
        let off = off % n;
        let len = 1 + len % (n - off);
        let prefix = prefix % len; // strictly torn: prefix < len
        let srv = paged_server(pe);
        let s = srv.clone();
        let poisoned: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let p2 = Arc::clone(&poisoned);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            let key = client.create(&ctx, "b", n, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let base: Vec<f32> = (0..n).map(|i| i as f32).collect();
            client.write(&ctx, &buf, &base).unwrap();
            let intended: Vec<f32> = base[off..off + len].iter().map(|v| v + 1.0).collect();
            s.inject_torn_write(&ctx, key, off, &intended, prefix).unwrap();
            s.scrub_pass(&ctx);
            *p2.lock() = s.poisoned_pages(key);
        });
        sim.run();
        prop_assert_eq!(poisoned.lock().clone(), pages_in(pe, n, off + prefix, len - prefix));
    }
}
