//! Software CRC32C (Castagnoli) for the SMB integrity layer.
//!
//! The paper's RDS/verbs stack gets end-to-end payload protection for free
//! from InfiniBand's hardware ICRC; the simulated fabric has no such layer,
//! so the SMB server guards segment pages with a software CRC instead (see
//! `server.rs`). CRC32C is the conventional choice for storage/network
//! scrubbing (iSCSI, ext4, btrfs): it detects all 1- and 2-bit errors and
//! every burst up to 32 bits, which covers the fault model's seeded
//! bit-flips and torn-write prefixes.
//!
//! Checksums are computed over the f32 payload's `to_bits()` little-endian
//! bytes, so they are bit-exact across platforms and independent of any
//! float formatting.

/// CRC32C (Castagnoli) generator polynomial, reflected representation.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            k += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[inline]
fn step(crc: u32, byte: u8) -> u32 {
    (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize]
}

/// CRC32C of a byte slice (init `!0`, final xor `!0` — the standard
/// Castagnoli convention, so `crc32c(b"123456789") == 0xE306_9283`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = step(crc, b);
    }
    !crc
}

/// CRC32C of an f32 slice, streamed over each element's `to_bits()`
/// little-endian bytes without intermediate allocation. This is the page
/// checksum of the SMB integrity grid: defined on the *bit pattern*, so
/// `-0.0` vs `0.0` and NaN payloads all checksum distinctly.
pub fn crc32c_f32(data: &[f32]) -> u32 {
    let mut crc = !0u32;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            crc = step(crc, b);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The canonical CRC32C check vector (RFC 3720 appendix B.4 uses the
        // same polynomial): "123456789" -> 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn f32_variant_matches_byte_variant() {
        let data = [1.0f32, -2.5, 0.0, f32::MIN_POSITIVE, 1.0e20];
        let mut bytes = Vec::new();
        for v in &data {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(crc32c_f32(&data), crc32c(&bytes));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0.25f32; 64];
        let clean = crc32c_f32(&data);
        for elem in [0usize, 17, 63] {
            for bit in [0u32, 15, 31] {
                let mut flipped = data.clone();
                flipped[elem] = f32::from_bits(flipped[elem].to_bits() ^ (1 << bit));
                assert_ne!(crc32c_f32(&flipped), clean, "flip at {elem}:{bit} undetected");
            }
        }
    }

    #[test]
    fn distinguishes_signed_zero_and_nan_payloads() {
        assert_ne!(crc32c_f32(&[0.0]), crc32c_f32(&[-0.0]));
        let nan_a = f32::from_bits(0x7FC0_0001);
        let nan_b = f32::from_bits(0x7FC0_0002);
        assert_ne!(crc32c_f32(&[nan_a]), crc32c_f32(&[nan_b]));
    }
}
