//! Fixture tests: one per banned pattern, proving each rule fires on a
//! minimal offender and stays quiet on comment/string look-alikes, plus the
//! allowlist suppression path and a self-check that the real workspace is
//! clean under the checked-in `analysis.toml`.

use shmcaffe_analysis::{parse_allowlist, rules, scan_file};

/// Scans a fixture as if it lived at `path` inside the workspace.
fn scan_fixture(path: &str, source: &str) -> Vec<rules::Violation> {
    scan_file(path, source)
}

#[test]
fn hash_iteration_fixture_fires() {
    let vs =
        scan_fixture("crates/simnet/src/fixture.rs", include_str!("fixtures/hash_iteration.rs"));
    assert!(
        vs.iter().any(|v| v.rule == rules::RULE_HASH_COLLECTIONS),
        "expected hash-collections, got {vs:#?}"
    );
    assert!(vs.iter().all(|v| v.rule == rules::RULE_HASH_COLLECTIONS));
    // Both the import and the construction site are flagged.
    assert!(vs.len() >= 2);
}

#[test]
fn ambient_time_fixture_fires() {
    let vs = scan_fixture("crates/smb/src/fixture.rs", include_str!("fixtures/ambient_time.rs"));
    assert!(!vs.is_empty());
    assert!(vs.iter().all(|v| v.rule == rules::RULE_AMBIENT_TIME), "{vs:#?}");
}

#[test]
fn ambient_rng_fixture_fires() {
    let vs =
        scan_fixture("crates/shmcaffe/src/fixture.rs", include_str!("fixtures/ambient_rng.rs"));
    assert_eq!(vs.len(), 1, "{vs:#?}");
    assert_eq!(vs[0].rule, rules::RULE_AMBIENT_RNG);
    assert!(vs[0].excerpt.contains("thread_rng"));
}

#[test]
fn float_reduction_fixture_fires() {
    let vs = scan_fixture("crates/dnn/src/fixture.rs", include_str!("fixtures/float_reduction.rs"));
    assert_eq!(vs.len(), 1, "{vs:#?}");
    assert_eq!(vs[0].rule, rules::RULE_FLOAT_REDUCTION);
}

#[test]
fn unsafe_fixture_fires_outside_audited_files() {
    let src = include_str!("fixtures/unsafe_code.rs");
    let vs = scan_fixture("crates/rdma/src/fixture.rs", src);
    assert_eq!(vs.len(), 1, "{vs:#?}");
    assert_eq!(vs[0].rule, rules::RULE_UNSAFE_CODE);
    // The same content inside the audited gemm file is accepted.
    assert!(scan_fixture("crates/tensor/src/gemm.rs", src).is_empty());
}

#[test]
fn data_plane_panic_fixture_fires_in_smb_and_rdma_only() {
    let src = include_str!("fixtures/data_plane_panic.rs");
    for path in ["crates/smb/src/fixture.rs", "crates/rdma/src/fixture.rs"] {
        let vs = scan_fixture(path, src);
        assert_eq!(vs.len(), 2, "{path}: {vs:#?}");
        assert!(vs.iter().all(|v| v.rule == rules::RULE_DATA_PLANE_PANIC));
        assert!(vs.iter().any(|v| v.excerpt.contains(".unwrap()")));
        assert!(vs.iter().any(|v| v.excerpt.contains(".expect(")));
    }
    // The same content outside the data plane, or in a data-plane crate's
    // integration-test tree, is out of scope.
    assert!(scan_fixture("crates/shmcaffe/src/fixture.rs", src).is_empty());
    assert!(scan_fixture("crates/smb/tests/fixture.rs", src).is_empty());
}

#[test]
fn blocking_primitive_fixture_fires_outside_the_scheduler() {
    let src = include_str!("fixtures/blocking_primitive.rs");
    let vs = scan_fixture("crates/simnet/src/fixture.rs", src);
    assert!(vs.len() >= 5, "{vs:#?}");
    assert!(vs.iter().all(|v| v.rule == rules::RULE_BLOCKING_PRIMITIVE), "{vs:#?}");
    // The comment/string look-alikes at the bottom of the fixture stay quiet.
    assert!(vs.iter().all(|v| !v.excerpt.contains("DOC")), "{vs:#?}");
    // The scheduler implementation itself is the one audited exemption…
    assert!(scan_fixture("crates/simnet/src/sched.rs", src).is_empty());
    // …and crates off the cooperative core plus test trees may park threads.
    assert!(scan_fixture("crates/dnn/src/fixture.rs", src).is_empty());
    assert!(scan_fixture("crates/smb/tests/fixture.rs", src).is_empty());
}

#[test]
fn clean_fixture_stays_clean() {
    let vs =
        scan_fixture("crates/simnet/src/fixture.rs", include_str!("fixtures/clean_comments.rs"));
    assert!(vs.is_empty(), "false positives: {vs:#?}");
}

#[test]
fn bench_crate_is_exempt_from_ambient_rules() {
    let vs = scan_fixture("crates/bench/src/fixture.rs", include_str!("fixtures/ambient_time.rs"));
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn suppression_requires_matching_entry_with_justification() {
    let vs = scan_fixture("crates/dnn/src/fixture.rs", include_str!("fixtures/float_reduction.rs"));
    let entries = parse_allowlist(
        r#"
[[allow]]
rule = "float-reduction"
path = "crates/dnn/src/fixture.rs"
contains = ".sum::<f32>()"
justification = "fixture: mean over a fixed-order slice"
"#,
    )
    .unwrap();
    let (rest, used) = shmcaffe_analysis::allowlist::apply(vs.clone(), &entries);
    assert!(rest.is_empty());
    assert_eq!(used, vec![true]);

    // A justification-free entry is rejected at parse time.
    let err = parse_allowlist(
        "[[allow]]\nrule = \"float-reduction\"\npath = \"crates/dnn/src/fixture.rs\"\n",
    )
    .unwrap_err();
    assert!(err.contains("justification"), "{err}");

    // An entry for a different path does not suppress.
    let entries = parse_allowlist(
        r#"
[[allow]]
rule = "float-reduction"
path = "crates/dnn/src/other.rs"
justification = "elsewhere"
"#,
    )
    .unwrap();
    let (rest, used) = shmcaffe_analysis::allowlist::apply(vs, &entries);
    assert_eq!(rest.len(), 1);
    assert_eq!(used, vec![false]);
}

/// The real workspace, under the checked-in allowlist, is clean — and every
/// allowlist entry is actually in use.
#[test]
fn workspace_is_clean_under_checked_in_allowlist() {
    let root =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let report = shmcaffe_analysis::run(&root).unwrap();
    assert!(
        report.is_clean(),
        "violations: {:#?}\nallow errors: {:#?}",
        report.violations,
        report.allow_errors
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries: {:#?}",
        report.unused_allows
    );
    assert!(!report.used_allows.is_empty(), "expected the allowlist to be exercised");
}
