//! Fig. 7 — Read/Write bandwidth of a single SMB server.
//!
//! "Each process allocates the shared memory buffer of 1 GB and conducts
//! Read/Write (each 50% mixed) after the shared memory allocation ...
//! the aggregated bandwidth of the Read/Write traffic workload increases
//! up to 6.7 GB/s ... utilization of the hardware bandwidth reaches up to
//! 96%" (paper §IV-B).
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin fig07_smb_bandwidth`.

use parking_lot::Mutex;
use shmcaffe_bench::json::{emit_figure, Json};
use shmcaffe_bench::table::Table;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::Simulation;
use shmcaffe_smb::{SmbClient, SmbServer};
use std::sync::Arc;

const BUFFER_BYTES: u64 = 1_000_000_000;
const ROUNDS: usize = 10; // the paper repeats the experiment 10 times

/// Measures the aggregate R/W bandwidth with `procs` client processes.
fn aggregate_bandwidth(procs: usize) -> f64 {
    // Spread processes over enough 4-slot nodes.
    let nodes = procs.div_ceil(4).max(1);
    let fabric = Fabric::new(ClusterSpec::paper_testbed(nodes));
    let rdma = RdmaFabric::new(fabric);
    let server = SmbServer::new(rdma).unwrap();
    let total_bytes = Arc::new(Mutex::new(0u64));

    let mut sim = Simulation::new();
    for p in 0..procs {
        let server = server.clone();
        let total_bytes = Arc::clone(&total_bytes);
        let node = NodeId(p / 4);
        sim.spawn(&format!("proc{p}"), move |ctx| {
            let client = SmbClient::new(server, node);
            // Physically small buffer, logically 1 GB.
            let key = client
                .create(&ctx, &format!("buf{p}"), 1024, Some(BUFFER_BYTES))
                .expect("unique names");
            let buf = client.alloc(&ctx, key).expect("just created");
            let mut scratch = vec![0.0f32; 1024];
            let mut moved = 0u64;
            for round in 0..ROUNDS {
                // 50/50 read/write mix.
                if (p + round) % 2 == 0 {
                    client.read(&ctx, &buf, &mut scratch).expect("live buffer");
                } else {
                    client.write(&ctx, &buf, &scratch).expect("live buffer");
                }
                moved += BUFFER_BYTES;
            }
            *total_bytes.lock() += moved;
        });
    }
    let end = sim.run();
    let moved = *total_bytes.lock();
    moved as f64 / end.as_secs_f64()
}

fn main() {
    println!("Fig. 7 reproduction: SMB server aggregate Read/Write bandwidth");
    println!("(1 GB logical buffers per process, 50/50 R/W, {ROUNDS} rounds)\n");
    let mut table = Table::new(
        "Fig 7: Read/Write bandwidth in a SMB server",
        &["processes", "aggregate GB/s", "HCA utilization"],
    );
    let hca_bw = 7.0; // GB/s, FDR
    let mut peak: f64 = 0.0;
    for procs in [2usize, 4, 8, 16, 24, 32] {
        let bw = aggregate_bandwidth(procs) / 1e9;
        peak = peak.max(bw);
        table.row_owned(vec![
            procs.to_string(),
            format!("{bw:.2}"),
            format!("{:.0}%", bw / hca_bw * 100.0),
        ]);
    }
    emit_figure(
        "fig07_smb_bandwidth",
        &table,
        vec![
            ("peak_gbps", Json::Num(peak)),
            ("hca_gbps", Json::Num(hca_bw)),
            ("paper_peak_gbps", Json::Num(6.7)),
            // No fault plan: the run is deterministic without a seed.
            ("fault_seed", Json::Null),
        ],
    );
    println!("peak aggregate: {peak:.2} GB/s ({:.0}% of the 7 GB/s HCA)", peak / hca_bw * 100.0);
    println!("paper: saturates at 6.7 GB/s (96%)");
}
