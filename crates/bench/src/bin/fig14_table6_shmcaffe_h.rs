//! Fig. 14 + Table VI — ShmCaffe-H computation and communication per
//! iteration across the S×A configurations of Table III.
//!
//! Configurations (S = synchronous GPUs per group, A = async groups):
//! 4 (S4, one group = pure intra-node SSGD), 4 (S2×A2), 8 (S4×A2),
//! 8 (S2×A4), 16 (S4×A4). Anchor: Inception-ResNet-v2's communication
//! ratio at 16 GPUs falls from ~65% (A) to ~30.7% (H) because the SMB
//! volume shrinks to 1/4.
//!
//! Run with
//! `cargo run --release -p shmcaffe-bench --bin fig14_table6_shmcaffe_h`.

use shmcaffe_bench::experiments::{measure_hybrid, Breakdown, DEFAULT_MEASURE_ITERS};
use shmcaffe_bench::table::{ms, pct, Table};
use shmcaffe_models::CnnModel;

fn main() {
    // (label, groups, group_size)
    let configs: [(&str, usize, usize); 5] = [
        ("4 (S4)", 1, 4),
        ("4 (S2xA2)", 2, 2),
        ("8 (S4xA2)", 2, 4),
        ("8 (S2xA4)", 4, 2),
        ("16 (S4xA4)", 4, 4),
    ];
    println!("Table VI / Fig 14 reproduction: ShmCaffe-H per-iteration breakdown\n");

    for model in CnnModel::ALL {
        let mut table =
            Table::new(&format!("{model}"), &["config", "comp (ms)", "comm (ms)", "comm ratio"]);
        for (label, groups, group_size) in configs {
            let report = measure_hybrid(model, groups, group_size, DEFAULT_MEASURE_ITERS, 42)
                .expect("platform runs");
            let b = Breakdown::from_report(label, &report);
            table.row_owned(vec![
                label.to_string(),
                ms(b.comp_ms),
                ms(b.comm_ms),
                pct(b.comm_ratio()),
            ]);
        }
        table.print();
    }
    println!("paper anchors: comm ratios generally below ~30% (except VGG16);");
    println!("Incept_resnet_v2 @16 GPUs drops from ~65% (A) to ~30.7% (H).");
}
